//! NFS file-handle table: opaque 32-byte handles ↔ virtual paths.
//!
//! Handles carry a 64-bit id and a generation tag. When a path is removed
//! and its id later reused, the generation differs and stale handles are
//! answered with `NFSERR_STALE`, as a correct NFS server must.
//!
//! ## Striping
//!
//! The table is two sharded maps: path → id cells (class `core.fhtable`,
//! rank 110, keyed by path hash) and id → (path, generation) cells
//! (class `core.fhtable.ids`, rank 111, keyed by id). Handle resolution —
//! the per-request hot path (every NFS op resolves at least one handle) —
//! touches exactly one id cell; allocation and rename touch one or two
//! path cells plus one id cell. Cells are only ever nested path → id
//! (matching the 110 → 111 rank order), and multi-cell locks within the
//! path class are taken in ascending cell order. Ids are allocated from a
//! global atomic and never reused, so the id counter needs no lock; the
//! generation tag is likewise a global atomic whose bump inside `forget`
//! happens under the forgotten path's cell, making recreate-after-forget
//! observe the new generation.

use nest_proto::nfs::FileHandle;
use nest_storage::VPath;
use parking_lot::{shard_hash, ShardedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default stripe count for the handle table (matching the storage
/// layer's default).
pub const DEFAULT_FHTABLE_SHARDS: usize = 8;

/// The handle table.
#[derive(Debug)]
pub struct FhTable {
    /// Monotonic id allocator; ids are never reused.
    next_id: AtomicU64,
    /// Generation tag for newly allocated handles; bumped on every
    /// `forget` so recreated paths get distinguishable handles.
    generation: AtomicU64,
    by_path: ShardedMutex<HashMap<VPath, u64>>,
    by_id: ShardedMutex<HashMap<u64, (VPath, u64)>>,
}

impl Default for FhTable {
    fn default() -> Self {
        Self::with_shards(DEFAULT_FHTABLE_SHARDS)
    }
}

impl FhTable {
    /// Creates a table whose id 1 is the root directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table with an explicit stripe count (`1` = the
    /// single-mutex ablation); id 1 is the root directory.
    pub fn with_shards(shards: usize) -> Self {
        let table = Self {
            next_id: AtomicU64::new(2),
            generation: AtomicU64::new(1),
            by_path: ShardedMutex::new("core.fhtable", 110, shards, |_| HashMap::new()),
            by_id: ShardedMutex::new("core.fhtable.ids", 111, shards, |_| HashMap::new()),
        };
        table
            .by_path
            .lock(shard_hash(&VPath::root()))
            .insert(VPath::root(), 1);
        table.by_id.lock(1).insert(1, (VPath::root(), 1));
        table
    }

    /// The root handle (what MOUNT returns).
    pub fn root(&self) -> FileHandle {
        FileHandle::from_id(1, 1)
    }

    /// Returns (allocating if needed) the handle for a path.
    pub fn handle_for(&self, path: &VPath) -> FileHandle {
        let mut paths = self.by_path.lock(shard_hash(path));
        if let Some(&id) = paths.get(path) {
            // Nested path → id (rank 110 → 111), never the reverse.
            let generation = self.by_id.lock(id).get(&id).map_or(0, |e| e.1);
            return FileHandle::from_id(id, generation);
        }
        // Same-path allocators serialize on this path cell, so exactly
        // one of them allocates; the id is globally fresh either way.
        // nestlint: allow(atomic-ordering): monotonic id tick, no sync rides on it
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let generation = self.generation.load(Ordering::Acquire);
        paths.insert(path.clone(), id);
        self.by_id.lock(id).insert(id, (path.clone(), generation));
        FileHandle::from_id(id, generation)
    }

    /// Resolves a handle to its path; `None` for unknown or stale
    /// handles. Touches only the handle's id cell — the hot path.
    pub fn resolve(&self, fh: &FileHandle) -> Option<VPath> {
        let ids = self.by_id.lock(fh.id());
        let (path, generation) = ids.get(&fh.id())?;
        if *generation != fh.generation() {
            return None;
        }
        Some(path.clone())
    }

    /// Forgets a path (on remove/rmdir); its handles become stale.
    pub fn forget(&self, path: &VPath) {
        let mut paths = self.by_path.lock(shard_hash(path));
        if let Some(id) = paths.remove(path) {
            self.by_id.lock(id).remove(&id);
        }
        // Bump the generation so a recreated file at the same path gets a
        // distinguishable handle even if ids were ever reused. Done under
        // the path cell: a recreate serializes behind this lock and must
        // observe the new generation.
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Re-keys a path (on rename), keeping the same handle valid.
    pub fn rename(&self, from: &VPath, to: &VPath) {
        let from_idx = self.by_path.shard_for(shard_hash(from));
        let to_idx = self.by_path.shard_for(shard_hash(to));
        // Both path cells, ascending cell order (same-class nesting).
        let (mut a, mut b) = if from_idx == to_idx {
            (self.by_path.lock_idx(from_idx), None)
        } else {
            let lo = self.by_path.lock_idx(from_idx.min(to_idx));
            let hi = self.by_path.lock_idx(from_idx.max(to_idx));
            if from_idx < to_idx {
                (lo, Some(hi))
            } else {
                (hi, Some(lo))
            }
        };
        let from_cell = &mut a;
        if let Some(id) = from_cell.remove(from) {
            match &mut b {
                Some(to_cell) => to_cell.insert(to.clone(), id),
                None => from_cell.insert(to.clone(), id),
            };
            if let Some(entry) = self.by_id.lock(id).get_mut(&id) {
                entry.0 = to.clone();
            }
        }
    }

    /// The 32-bit file id NFS attributes report for a path.
    pub fn fileid(&self, path: &VPath) -> u32 {
        (self.handle_for(path).id() & 0xFFFF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn root_is_stable() {
        let t = FhTable::new();
        assert_eq!(t.root(), t.handle_for(&VPath::root()));
        assert_eq!(t.resolve(&t.root()), Some(VPath::root()));
    }

    #[test]
    fn same_path_same_handle() {
        let t = FhTable::new();
        let a = t.handle_for(&vp("/f"));
        let b = t.handle_for(&vp("/f"));
        assert_eq!(a, b);
        let c = t.handle_for(&vp("/g"));
        assert_ne!(a, c);
    }

    #[test]
    fn forget_makes_handles_stale() {
        let t = FhTable::new();
        let fh = t.handle_for(&vp("/f"));
        t.forget(&vp("/f"));
        assert_eq!(t.resolve(&fh), None);
        // A recreated file gets a fresh handle that resolves.
        let fh2 = t.handle_for(&vp("/f"));
        assert_ne!(fh, fh2);
        assert_eq!(t.resolve(&fh2), Some(vp("/f")));
    }

    #[test]
    fn rename_keeps_handle_valid() {
        let t = FhTable::new();
        let fh = t.handle_for(&vp("/old"));
        t.rename(&vp("/old"), &vp("/new"));
        assert_eq!(t.resolve(&fh), Some(vp("/new")));
        assert_eq!(t.handle_for(&vp("/new")), fh);
    }

    #[test]
    fn fileid_is_stable() {
        let t = FhTable::new();
        assert_eq!(t.fileid(&vp("/x")), t.fileid(&vp("/x")));
        assert_ne!(t.fileid(&vp("/x")), t.fileid(&vp("/y")));
    }

    #[test]
    fn sharded_table_semantics_match_single_cell() {
        // The full protocol — allocate, resolve, cross-cell rename,
        // forget-staleness — must behave identically at any stripe count.
        for shards in [1, 4] {
            let t = FhTable::with_shards(shards);
            let handles: Vec<_> = (0..32)
                .map(|i| t.handle_for(&vp(&format!("/f{}", i))))
                .collect();
            for (i, fh) in handles.iter().enumerate() {
                assert_eq!(t.resolve(fh), Some(vp(&format!("/f{}", i))));
            }
            // Renames that land in a different path cell keep handles
            // valid; ids never move cells (keyed by id, not path).
            for i in 0..32 {
                t.rename(&vp(&format!("/f{}", i)), &vp(&format!("/g{}", i)));
            }
            for (i, fh) in handles.iter().enumerate() {
                assert_eq!(t.resolve(fh), Some(vp(&format!("/g{}", i))));
            }
            t.forget(&vp("/g0"));
            assert_eq!(t.resolve(&handles[0]), None);
            assert_eq!(t.resolve(&handles[1]), Some(vp("/g1")));
        }
    }

    #[test]
    fn concurrent_allocation_yields_unique_ids() {
        use std::sync::Arc;
        let t = Arc::new(FhTable::with_shards(4));
        let mut joins = Vec::new();
        for thread in 0..8 {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                (0..64)
                    .map(|i| t.handle_for(&vp(&format!("/t{}/f{}", thread, i))).id())
                    .collect::<Vec<_>>()
            }));
        }
        let mut ids: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate handle ids allocated");
    }
}
