//! `nestd` — run a NeST appliance from the command line.
//!
//! ```sh
//! nestd --root /srv/nest --capacity 10G \
//!       --chirp 5893 --http 8080 --ftp 5894 --gridftp 2811 --nfs 5899 \
//!       --sched stride --tickets chirp=200,nfs=200,http=100 \
//!       --gridmap /etc/nest/grid-mapfile --ca-secret 0xDEADBEEF
//! ```
//!
//! With no arguments, serves an in-memory appliance on ephemeral ports and
//! prints where everything is listening — the "plug it in and it toasts"
//! appliance experience.

use nest_core::config::{BackendKind, NestConfig};
use nest_core::server::NestServer;
use nest_proto::gsi::{GridMap, SimCa};
use nest_transfer::manager::{ModelSelection, SchedPolicy};
use nest_transfer::ModelKind;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: nestd [options]
  --name <name>            appliance name for published ads (default: nest)
  --root <dir>             serve a host directory (default: in-memory)
  --capacity <bytes|K|M|G> space under lot management (default: 1G)
  --no-lots                disable lot enforcement
  --chirp/--http/--ftp/--gridftp/--nfs <port>
                           listening ports (default: ephemeral; 'off' disables)
  --sched <fcfs|stride|cache-aware>   transfer scheduling policy
  --tickets a=100,b=200    stride tickets per class
  --non-work-conserving    stride idles for the favored class
  --per-user               schedule per user instead of per protocol
  --model <adaptive|events|threads|processes>
  --gridmap <file>         grid-mapfile for simulated-GSI authentication
  --ca-secret <hex>        trusted CA secret (with --gridmap)
  --default-lot user=SIZE[,SECS]      grant a lot at startup (repeatable)
  --help"
    );
    exit(2)
}

fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1u64 << 10),
        'M' | 'm' => (&s[..s.len() - 1], 1u64 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n.saturating_mul(mult))
}

fn parse_port(s: &str) -> Option<Option<u16>> {
    if s.eq_ignore_ascii_case("off") {
        return Some(None);
    }
    s.parse::<u16>().ok().map(Some)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = NestConfig::ephemeral("nest");
    let mut tickets: Vec<(String, u32)> = Vec::new();
    let mut sched = "fcfs".to_owned();
    let mut work_conserving = true;
    let mut gridmap_path: Option<String> = None;
    let mut ca_secret: u64 = 0x6E65_7374; // "nest"
    let mut default_lots: Vec<(String, u64, u64)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--name" => config.name = val().to_owned(),
            "--root" => config.backend = BackendKind::LocalFs(val().into()),
            "--capacity" => {
                config.capacity = parse_size(val()).unwrap_or_else(|| usage());
            }
            "--no-lots" => config.enforce_lots = false,
            "--chirp" => config.ports.chirp = parse_port(val()).unwrap_or_else(|| usage()),
            "--http" => config.ports.http = parse_port(val()).unwrap_or_else(|| usage()),
            "--ftp" => config.ports.ftp = parse_port(val()).unwrap_or_else(|| usage()),
            "--gridftp" => config.ports.gridftp = parse_port(val()).unwrap_or_else(|| usage()),
            "--nfs" => config.ports.nfs = parse_port(val()).unwrap_or_else(|| usage()),
            "--sched" => sched = val().to_owned(),
            "--non-work-conserving" => work_conserving = false,
            "--per-user" => config.sched_class = nest_core::config::SchedClass::User,
            "--tickets" => {
                for pair in val().split(',') {
                    let Some((class, t)) = pair.split_once('=') else {
                        usage()
                    };
                    let Ok(t) = t.parse() else { usage() };
                    tickets.push((class.to_owned(), t));
                }
            }
            "--model" => {
                config.model = match val() {
                    "adaptive" => ModelSelection::Adaptive(vec![
                        ModelKind::Threads,
                        ModelKind::Processes,
                        ModelKind::Events,
                    ]),
                    "events" => ModelSelection::Fixed(ModelKind::Events),
                    "threads" => ModelSelection::Fixed(ModelKind::Threads),
                    "processes" => ModelSelection::Fixed(ModelKind::Processes),
                    _ => usage(),
                };
            }
            "--gridmap" => gridmap_path = Some(val().to_owned()),
            "--ca-secret" => {
                let v = val();
                let v = v.strip_prefix("0x").unwrap_or(v);
                ca_secret = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--default-lot" => {
                let spec = val();
                let Some((user, rest)) = spec.split_once('=') else {
                    usage()
                };
                let (size, secs) = match rest.split_once(',') {
                    Some((s, d)) => (
                        parse_size(s).unwrap_or_else(|| usage()),
                        d.parse().unwrap_or_else(|_| usage()),
                    ),
                    None => (parse_size(rest).unwrap_or_else(|| usage()), 86_400),
                };
                default_lots.push((user.to_owned(), size, secs));
            }
            other => {
                eprintln!("unknown option {:?}", other);
                usage();
            }
        }
    }

    config.sched = match sched.as_str() {
        "fcfs" => SchedPolicy::Fcfs,
        "stride" => SchedPolicy::Proportional {
            tickets: tickets.clone(),
            work_conserving,
        },
        "cache-aware" => SchedPolicy::CacheAware,
        _ => usage(),
    };

    if let Some(path) = gridmap_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read gridmap {:?}: {}", path, e);
            exit(1);
        });
        let ca = SimCa::new("nestd-ca", ca_secret);
        config.gsi = Some(nest_proto::gsi::GsiAuthenticator::new(
            ca,
            GridMap::parse(&text),
        ));
    }

    // nestd assembles the config field by field from flags; validate the
    // combination the same way the builder would before starting.
    if let Err(e) = config.validate() {
        eprintln!("invalid configuration: {}", e);
        exit(2);
    }

    let server = NestServer::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start: {}", e);
        exit(1);
    });
    for (user, size, secs) in default_lots {
        match server.grant_default_lot(&user, size, secs) {
            Ok(id) => println!(
                "granted lot {} to {} ({} bytes, {} s)",
                id, user, size, secs
            ),
            Err(e) => eprintln!("default lot for {} failed: {}", user, e),
        }
    }

    println!("NeST appliance running:");
    for (proto, addr) in [
        ("chirp", server.chirp_addr),
        ("http", server.http_addr),
        ("ftp", server.ftp_addr),
        ("gridftp", server.gridftp_addr),
        ("nfs", server.nfs_addr),
    ] {
        match addr {
            Some(a) => println!("  {:8} {}", proto, a),
            None => println!("  {:8} (disabled)", proto),
        }
    }
    println!("press Ctrl-C to stop");

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
