//! # nest-s3front
//!
//! An S3-compatible protocol front for NeST, implemented **entirely
//! outside** `nest-core`'s handler tree: this crate sees only the public
//! [`ProtocolFront`] API, the dispatcher's common request interface, and
//! the wire codec in `nest_proto::s3`. It is the existence proof for the
//! paper's flexibility claim — "new protocols can be easily added into
//! NeST" (§3) — demonstrated with a protocol invented four years *after*
//! the paper.
//!
//! The mapping onto the common interface:
//!
//! | S3 operation                  | Common request                        |
//! |-------------------------------|---------------------------------------|
//! | `PUT /{bucket}`               | `Mkdir`                               |
//! | `DELETE /{bucket}`            | `Rmdir`                               |
//! | `GET /` (ListBuckets)         | `ListDir` at `/` with delimiter `/`   |
//! | `GET /{bucket}?list-type=2`   | `ListDir` with prefix/delimiter       |
//! | `GET /{bucket}/{key}`         | admitted `Get` (transfer manager)     |
//! | `HEAD /{bucket}/{key}`        | `Stat`                                |
//! | `PUT /{bucket}/{key}`         | admitted `Put` (transfer manager)     |
//! | `DELETE /{bucket}/{key}`      | `Delete`                              |
//!
//! A bucket is a top-level directory of the virtual namespace, so bucket
//! writes are charged to the same lots as every other protocol's, and a
//! `DELETE` through S3 releases lot charge visible over Chirp.
//!
//! Authentication is per-request: an `Authorization: NEST4-FNV1A ...`
//! header carrying a simulated-GSI credential maps the subject through
//! the appliance's grid-mapfile; requests without the header run as the
//! anonymous principal, like NeST's HTTP front.

use nest_core::dispatcher::{Dispatcher, LimitedStreamSource};
use nest_core::front::ProtocolFront;
use nest_core::session::{Await, OverloadReply, SessionCtx};
use nest_proto::http::{render_response_head, HttpMethod, HttpRequestHead, HttpResponseHead};
use nest_proto::request::{ports, NestError, NestRequest, NestResponse};
use nest_proto::s3::{
    error_for, parse_auth_header, render_error_xml, render_list_all_buckets,
    render_list_bucket_result, S3Listing, S3Object, SLOWDOWN_REPLY,
};
use nest_storage::Principal;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Arc;

const PROTOCOL: &str = "s3";

/// The S3 front: a pure plugin over the dispatcher's public API.
pub struct S3Front {
    dispatcher: Arc<Dispatcher>,
}

impl S3Front {
    /// An S3 front over the appliance's dispatcher.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        Self { dispatcher }
    }
}

impl ProtocolFront for S3Front {
    fn name(&self) -> &'static str {
        PROTOCOL
    }
    fn default_port(&self) -> Option<u16> {
        Some(ports::S3)
    }
    fn overload_reply(&self) -> OverloadReply {
        // S3's documented throttle: 503 + a SlowDown error document.
        OverloadReply::Raw(SLOWDOWN_REPLY)
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        handle_conn(&self.dispatcher, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        let (status, code, message) = error_for(e);
        render_reply(
            status,
            reason_for(status),
            &render_error_xml(code, message, "/"),
        )
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        409 => "Conflict",
        411 => "Length Required",
        500 => "Internal Server Error",
        _ => "Error",
    }
}

/// Renders a complete response: head with Content-Length plus XML body.
fn render_reply(status: u16, reason: &str, body: &str) -> Vec<u8> {
    let mut head = HttpResponseHead::with_length(status, reason, body.len() as u64);
    head.headers
        .insert("content-type".into(), "application/xml".into());
    let mut out = render_response_head(&head).into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

fn send_error(
    stream: &mut TcpStream,
    e: NestError,
    resource: &str,
    is_bucket_op: bool,
) -> io::Result<()> {
    let (status, code, message) = error_for(e);
    // The object-vs-bucket distinction S3 clients key on.
    let code = if code == "NoSuchKey" && is_bucket_op {
        "NoSuchBucket"
    } else {
        code
    };
    let body = render_error_xml(code, message, resource);
    stream.write_all(&render_reply(status, reason_for(status), &body))
}

/// Splits a request path into (bucket, key). `/b/k/x` → `("b", "k/x")`.
fn split_bucket_key(path: &str) -> (&str, &str) {
    let trimmed = path.trim_start_matches('/');
    match trimmed.split_once('/') {
        Some((b, k)) => (b, k),
        None => (trimmed, ""),
    }
}

fn handle_conn(
    dispatcher: &Arc<Dispatcher>,
    mut stream: TcpStream,
    ctx: &SessionCtx,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(head) = HttpRequestHead::read(&mut stream)? else {
            return Ok(());
        };
        // Per-request authentication, as S3 does (each request is signed).
        let who = match head.headers.get("authorization") {
            None => Principal::anonymous(),
            Some(value) => match parse_auth_header(value)
                .and_then(|cred| dispatcher.authenticate(&cred).ok())
            {
                Some(p) => p,
                None => {
                    // Drain any PUT body so the connection stays in sync.
                    if let Some(len) = head.content_length() {
                        drain(&mut stream, len)?;
                    }
                    send_error(&mut stream, NestError::Denied, &head.path, false)?;
                    stream.flush()?;
                    continue;
                }
            },
        };
        serve_request(dispatcher, &mut stream, &who, &head)?;
        stream.flush()?;
    }
}

fn serve_request(
    dispatcher: &Arc<Dispatcher>,
    stream: &mut TcpStream,
    who: &Principal,
    head: &HttpRequestHead,
) -> io::Result<()> {
    let (bucket, key) = split_bucket_key(&head.path);
    match (head.method, bucket, key) {
        // -- service level ------------------------------------------------
        (HttpMethod::Get, "", _) => list_buckets(dispatcher, stream, who),
        // -- bucket level -------------------------------------------------
        (HttpMethod::Put, bucket, "") => {
            let resp = dispatcher.execute_sync(
                who,
                PROTOCOL,
                &NestRequest::Mkdir {
                    path: format!("/{bucket}"),
                },
            );
            match resp {
                NestResponse::Ok => stream.write_all(&render_reply(200, "OK", "")),
                NestResponse::Error(e) => send_error(stream, e, &head.path, true),
                _ => send_error(stream, NestError::Internal, &head.path, true),
            }
        }
        (HttpMethod::Delete, bucket, "") => {
            let resp = dispatcher.execute_sync(
                who,
                PROTOCOL,
                &NestRequest::Rmdir {
                    path: format!("/{bucket}"),
                },
            );
            match resp {
                NestResponse::Ok => stream.write_all(&render_reply(204, "No Content", "")),
                NestResponse::Error(e) => send_error(stream, e, &head.path, true),
                _ => send_error(stream, NestError::Internal, &head.path, true),
            }
        }
        (HttpMethod::Get, bucket, "") => list_objects(dispatcher, stream, who, head, bucket),
        // -- object level -------------------------------------------------
        (HttpMethod::Get, _, _) => match dispatcher.admit_get(who, PROTOCOL, &head.path) {
            // A directory is not an object; S3 has no GET-on-prefix.
            Err(NestError::Invalid) => send_error(stream, NestError::NotFound, &head.path, false),
            Err(e) => send_error(stream, e, &head.path, false),
            Ok((vpath, size, cached)) => {
                // Header + first chunk leave in one writev; the rest of
                // the body takes the sendfile fast path when the source
                // can lend a raw file window.
                let resp = HttpResponseHead::with_length(200, "OK", size);
                let head = render_response_head(&resp).into_bytes();
                let sink = dispatcher.socket_sink(stream.try_clone()?, head);
                dispatcher
                    .transfer_get(who, PROTOCOL, &vpath, size, cached, sink)
                    .map(drop)
            }
        },
        (HttpMethod::Head, _, _) => {
            let resp = dispatcher.execute_sync(
                who,
                PROTOCOL,
                &NestRequest::Stat {
                    path: head.path.clone(),
                },
            );
            match resp {
                NestResponse::OkSize(size) => {
                    let resp = HttpResponseHead::with_length(200, "OK", size);
                    stream.write_all(render_response_head(&resp).as_bytes())
                }
                // HEAD carries no body, so error replies are bare heads.
                NestResponse::Error(e) => {
                    let (status, _, _) = error_for(e);
                    let resp = HttpResponseHead::with_length(status, reason_for(status), 0);
                    stream.write_all(render_response_head(&resp).as_bytes())
                }
                _ => {
                    let resp = HttpResponseHead::with_length(500, "Internal Server Error", 0);
                    stream.write_all(render_response_head(&resp).as_bytes())
                }
            }
        }
        (HttpMethod::Put, bucket, key) => put_object(dispatcher, stream, who, head, bucket, key),
        (HttpMethod::Delete, _, _) => {
            let resp = dispatcher.execute_sync(
                who,
                PROTOCOL,
                &NestRequest::Delete {
                    path: head.path.clone(),
                },
            );
            match resp {
                NestResponse::Ok => stream.write_all(&render_reply(204, "No Content", "")),
                NestResponse::Error(e) => send_error(stream, e, &head.path, false),
                _ => send_error(stream, NestError::Internal, &head.path, false),
            }
        }
    }
}

/// `GET /`: every top-level directory is a bucket.
fn list_buckets(
    dispatcher: &Arc<Dispatcher>,
    stream: &mut TcpStream,
    who: &Principal,
) -> io::Result<()> {
    let resp = dispatcher.execute_sync(
        who,
        PROTOCOL,
        &NestRequest::ListDir {
            path: "/".into(),
            prefix: Some(String::new()),
            delimiter: Some("/".into()),
        },
    );
    match resp {
        NestResponse::OkText(lines) => {
            let buckets: Vec<String> = parse_listing_lines(&lines)
                .common_prefixes
                .iter()
                .map(|p| p.trim_end_matches('/').to_owned())
                .collect();
            let body = render_list_all_buckets(&buckets);
            stream.write_all(&render_reply(200, "OK", &body))
        }
        NestResponse::Error(e) => send_error(stream, e, "/", true),
        _ => send_error(stream, NestError::Internal, "/", true),
    }
}

/// One row of a merged listing page: object or rolled-up prefix, ordered
/// by a single lexicographic sort key so pagination cuts one total order
/// (and `max-keys` counts both kinds, per ListObjectsV2).
enum ListRow {
    Obj(S3Object),
    Pre(String),
}

impl ListRow {
    fn sort_key(&self) -> &str {
        match self {
            ListRow::Obj(o) => &o.key,
            ListRow::Pre(p) => p,
        }
    }
}

/// `GET /{bucket}?list-type=2&prefix=&delimiter=&max-keys=` with V2
/// pagination: `continuation-token` (opaque, from a previous truncated
/// page; overrides `start-after`) resumes the walk, and a truncated reply
/// carries `NextContinuationToken`.
fn list_objects(
    dispatcher: &Arc<Dispatcher>,
    stream: &mut TcpStream,
    who: &Principal,
    head: &HttpRequestHead,
    bucket: &str,
) -> io::Result<()> {
    let prefix = head.query.get("prefix").cloned().unwrap_or_default();
    let delimiter = head.query.get("delimiter").cloned();
    // Strict max-keys: anything that is not a non-negative integer is an
    // InvalidArgument, not silently the default page size.
    let max_keys: usize = match head.query.get("max-keys") {
        None => 1000,
        Some(v) => match v.parse::<i64>() {
            Ok(n) if n >= 0 => n as usize,
            _ => {
                let body = render_error_xml(
                    "InvalidArgument",
                    "max-keys must be a non-negative integer.",
                    &head.path,
                );
                return stream.write_all(&render_reply(400, "Bad Request", &body));
            }
        },
    };
    // The resume point: a continuation token is the hex-coded sort key of
    // the previous page's last row; start-after is a client-chosen key.
    // The token wins when both are present, as on real S3.
    let marker: Option<String> = match head.query.get("continuation-token") {
        Some(tok) => match hex_decode(tok) {
            Some(key) => Some(key),
            None => {
                let body = render_error_xml(
                    "InvalidArgument",
                    "The continuation token provided is incorrect.",
                    &head.path,
                );
                return stream.write_all(&render_reply(400, "Bad Request", &body));
            }
        },
        None => head.query.get("start-after").cloned(),
    };
    let resp = dispatcher.execute_sync(
        who,
        PROTOCOL,
        &NestRequest::ListDir {
            path: format!("/{bucket}"),
            prefix: Some(prefix.clone()),
            delimiter: delimiter.clone(),
        },
    );
    match resp {
        NestResponse::OkText(lines) => {
            let listing = parse_listing_lines(&lines);
            let mut rows: Vec<ListRow> = listing
                .objects
                .into_iter()
                .map(ListRow::Obj)
                .chain(listing.common_prefixes.into_iter().map(ListRow::Pre))
                .collect();
            rows.sort_by(|a, b| a.sort_key().cmp(b.sort_key()));
            if let Some(m) = &marker {
                // Strictly after the marker: the marker row itself was
                // already delivered on the previous page.
                rows.retain(|r| r.sort_key() > m.as_str());
            }
            let truncated = rows.len() > max_keys;
            let next_token = if truncated {
                // The cursor is the last row this page emits; an empty
                // page (max-keys=0) re-issues the incoming marker so the
                // client can still make progress once it raises max-keys.
                let last = match max_keys {
                    0 => marker.clone().unwrap_or_default(),
                    n => rows[n - 1].sort_key().to_owned(),
                };
                Some(hex_encode(&last))
            } else {
                None
            };
            rows.truncate(max_keys);
            let mut page = S3Listing::default();
            for row in rows {
                match row {
                    ListRow::Obj(o) => page.objects.push(o),
                    ListRow::Pre(p) => page.common_prefixes.push(p),
                }
            }
            let body = render_list_bucket_result(
                bucket,
                &prefix,
                delimiter.as_deref(),
                &page,
                truncated,
                max_keys,
                next_token.as_deref(),
            );
            stream.write_all(&render_reply(200, "OK", &body))
        }
        NestResponse::Error(e) => send_error(stream, e, &head.path, true),
        _ => send_error(stream, NestError::Internal, &head.path, true),
    }
}

/// Hex-codes a sort key into an opaque continuation token (keys may hold
/// any character; the token must survive a URL query string untouched).
fn hex_encode(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() * 2);
    for b in s.bytes() {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes a continuation token back into its sort key; `None` for
/// tokens this server never issued.
fn hex_decode(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        out.push(u8::from_str_radix(s.get(i..i + 2)?, 16).ok()?);
    }
    String::from_utf8(out).ok()
}

/// Decodes the dispatcher's protocol-independent object-listing lines:
/// `K <size> <key>` per object, `P <prefix>` per common prefix.
fn parse_listing_lines(lines: &[String]) -> S3Listing {
    let mut listing = S3Listing::default();
    for line in lines {
        if let Some(rest) = line.strip_prefix("K ") {
            if let Some((size, key)) = rest.split_once(' ') {
                listing.objects.push(S3Object {
                    key: key.to_owned(),
                    size: size.parse().unwrap_or(0),
                });
            }
        } else if let Some(p) = line.strip_prefix("P ") {
            listing.common_prefixes.push(p.to_owned());
        }
    }
    listing
}

/// `PUT /{bucket}/{key}`: admitted through the storage manager, streamed
/// through the transfer manager, charged to the bucket's lot.
fn put_object(
    dispatcher: &Arc<Dispatcher>,
    stream: &mut TcpStream,
    who: &Principal,
    head: &HttpRequestHead,
    bucket: &str,
    key: &str,
) -> io::Result<()> {
    let Some(length) = head.content_length() else {
        let body = render_error_xml(
            "MissingContentLength",
            "You must provide the Content-Length HTTP header.",
            &head.path,
        );
        return stream.write_all(&render_reply(411, "Length Required", &body));
    };
    // The bucket must already exist (S3 semantics: NoSuchBucket).
    if let NestResponse::Error(e) = dispatcher.execute_sync(
        who,
        PROTOCOL,
        &NestRequest::Stat {
            path: format!("/{bucket}"),
        },
    ) {
        drain(stream, length)?;
        let e = if e == NestError::NotFound || e == NestError::Invalid {
            NestError::NotFound
        } else {
            e
        };
        return send_error(stream, e, &format!("/{bucket}"), true);
    }
    // S3 keys may contain '/' with no explicit Mkdir; materialize the
    // intermediate directories, ignoring ones that already exist.
    let mut dir = format!("/{bucket}");
    let mut segments: Vec<&str> = key.split('/').collect();
    segments.pop(); // last segment is the object itself
    for seg in segments {
        dir.push('/');
        dir.push_str(seg);
        match dispatcher.execute_sync(who, PROTOCOL, &NestRequest::Mkdir { path: dir.clone() }) {
            NestResponse::Ok | NestResponse::Error(NestError::Exists) => {}
            NestResponse::Error(e) => {
                drain(stream, length)?;
                return send_error(stream, e, &head.path, false);
            }
            _ => {
                drain(stream, length)?;
                return send_error(stream, NestError::Internal, &head.path, false);
            }
        }
    }
    match dispatcher.admit_put(who, PROTOCOL, &head.path, Some(length)) {
        Err(e) => {
            drain(stream, length)?;
            send_error(stream, e, &head.path, false)
        }
        Ok(vpath) => {
            let source = Box::new(LimitedStreamSource::new(stream.try_clone()?, length));
            match dispatcher.transfer_put(who, PROTOCOL, &vpath, source, Some(length)) {
                Ok(_) => stream.write_all(&render_reply(200, "OK", "")),
                Err(e) if e.kind() == io::ErrorKind::StorageFull => {
                    send_error(stream, NestError::NoSpace, &head.path, false)?;
                    // The body may be half-read; the connection is dead.
                    Err(io::Error::other("put aborted: storage full"))
                }
                Err(e) => Err(e),
            }
        }
    }
}

fn drain(stream: &mut TcpStream, length: u64) -> io::Result<()> {
    nest_proto::wire::copy_exact(stream, &mut io::sink(), length, 64 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_key_split() {
        assert_eq!(split_bucket_key("/"), ("", ""));
        assert_eq!(split_bucket_key("/b"), ("b", ""));
        assert_eq!(split_bucket_key("/b/k"), ("b", "k"));
        assert_eq!(split_bucket_key("/b/k/x y"), ("b", "k/x y"));
    }

    #[test]
    fn listing_lines_decode() {
        let lines = vec![
            "K 7 logs/app.log".into(),
            "K 3 a key with spaces".into(),
            "P logs/2026/".into(),
        ];
        let l = parse_listing_lines(&lines);
        assert_eq!(l.objects.len(), 2);
        assert_eq!(l.objects[1].key, "a key with spaces");
        assert_eq!(l.objects[1].size, 3);
        assert_eq!(l.common_prefixes, vec!["logs/2026/".to_owned()]);
    }

    #[test]
    fn continuation_tokens_roundtrip_any_key() {
        for key in [
            "plain",
            "a key with spaces",
            "nested/deep/key",
            "",
            "k&<>'\"",
        ] {
            let tok = hex_encode(key);
            assert!(tok.bytes().all(|b| b.is_ascii_hexdigit()));
            assert_eq!(hex_decode(&tok).as_deref(), Some(key));
        }
        // Tokens this server never issued are rejected, not misdecoded.
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None);
    }

    #[test]
    fn front_declares_the_s3_dialect() {
        // Construction requires a dispatcher; the dialect constants do not.
        assert_eq!(PROTOCOL, "s3");
        let (status, code, _) = error_for(NestError::NoSpace);
        assert_eq!((status, code), (403, "QuotaExceeded"));
        assert!(SLOWDOWN_REPLY.starts_with(b"HTTP/1.1 503"));
    }
}
