//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of the proptest API the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `boxed`, and `prop_recursive`
//! * [`strategy::Just`], [`strategy::Union`] (backing `prop_oneof!`),
//!   integer/float range strategies, tuple strategies, and a simplified
//!   regex-pattern strategy for `&'static str`
//! * [`arbitrary::any`] / [`arbitrary::Arbitrary`] for primitives
//! * [`collection::vec`] and [`option::of`]
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros
//!
//! Differences from real proptest, by design: no shrinking, no persisted
//! failure seeds, and a fixed deterministic RNG seeded from the test's
//! module path + name so failures reproduce across runs. Generated string
//! values for `\PC` are drawn from printable ASCII.

pub mod test_runner {
    //! Config and the deterministic RNG used to drive generation.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure value carried by `Result`-returning property helpers.
    ///
    /// The shim's `prop_assert*` macros panic rather than returning this,
    /// but helpers written against real proptest declare
    /// `Result<(), TestCaseError>` signatures and use `?`, so the type and
    /// the `Result` plumbing are preserved.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "test case failed: {}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 generator; one per property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from the test's full name so each
        /// property gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then one mix round.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: mix(h ^ 0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix(self.state)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators built on it.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy behind a cheap-to-clone handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the recursive cases. `depth`
        /// bounds nesting; the size/branch hints are accepted for API
        /// compatibility but unused (depth alone bounds growth here).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Each level chooses 50/50 between bottoming out at a leaf
                // and recursing one level deeper, which keeps expected
                // tree sizes small while still reaching `depth`.
                let recursed = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), recursed]).boxed();
            }
            strat
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, cheaply cloneable strategy handle.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among several strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "empty Union");
            Self { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty => $max:expr),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = $max as i128;
                    let span = (hi - lo) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(
        u8 => u8::MAX, u16 => u16::MAX, u32 => u32::MAX, u64 => u64::MAX,
        usize => usize::MAX, i8 => i8::MAX, i16 => i16::MAX, i32 => i32::MAX,
        i64 => i64::MAX, isize => isize::MAX,
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    // ---- string pattern strategy ------------------------------------

    /// One regex atom: a set of candidate chars plus a repeat range.
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize, // inclusive
    }

    fn printable_ascii() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    /// Parses the simplified regex subset used by the workspace's tests:
    /// char classes `[..]` (ranges + literals, trailing `-` literal),
    /// `\PC` (non-control, approximated as printable ASCII), literal
    /// chars, each optionally followed by `{n}` or `{m,n}`.
    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {:?}", pat);
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {:?}", pat);
                    i += 1; // consume ']'
                    set
                }
                '\\' => {
                    // Only `\PC` (non-control) is supported.
                    assert!(
                        i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C',
                        "unsupported escape in {:?}",
                        pat
                    );
                    i += 3;
                    printable_ascii()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repeat suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in {:?}", pat))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat min"),
                        n.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let n = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len())]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over the whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text well-formed everywhere.
            char::from(0x20 + (rng.next_u64() % 0x5F) as u8)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: `usize`, `a..b`, or `a..=b`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` with probability 1/2, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `fn name(arg in strategy, ..) { body }` items. Each becomes
/// a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bind each strategy once, reusing the argument's own name so
            // the per-case value bindings below can shadow it.
            $(let $arg = $strat;)+
            for __pt_case in 0..__pt_config.cases {
                let _ = __pt_case;
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __pt_rng);)+
                // The body runs in a Result-returning closure so `?` works
                // against helpers declared as Result<(), TestCaseError>.
                let __pt_outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    { $body }
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = __pt_outcome {
                    panic!("{}", e);
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Everything a property-test file needs, in one import.

    /// Alias so `prop::collection::vec` / `prop::option::of` resolve.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(5i64..=7), &mut rng);
            assert!((5..=7).contains(&w));
            let x = Strategy::generate(&(1u16..), &mut rng);
            assert!(x >= 1);
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&"\\PC{0,16}", &mut rng);
            assert!(t.len() <= 16);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = Strategy::generate(&"[ -~]{0,10}", &mut rng);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            Just(0u8),
            (1u8..10).prop_map(|v| v),
            any::<u8>().prop_map(|v| v / 2),
        ];
        for _ in 0..200 {
            let _ = Strategy::generate(&strat, &mut rng);
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("recursion");
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, config applies, asserts work.
        #[test]
        fn macro_smoke(a in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 100);
            prop_assert!(v.len() < 8, "len {}", v.len());
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }
    }
}
