//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! API subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with [`BenchmarkGroup::throughput`]),
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a fixed-iteration wall-clock
//! timing loop printed to stdout — because the workspace's benches are run
//! for relative numbers, not statistical rigor. The bench harness still
//! compiles and runs end to end, which is what tier-1 needs.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Warm-up pass, then a fixed measurement pass.
    let mut warm = Bencher {
        iters: 10,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.as_nanos().max(1) / 10;
    // Aim for ~50ms of measurement, clamped to a sane iteration count.
    let iters = (50_000_000 / per_iter).clamp(10, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbs = n as f64 / ns * 1e9 / (1024.0 * 1024.0);
            println!("{id:<40} {ns:>12.1} ns/iter {mbs:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns * 1e9;
            println!("{id:<40} {ns:>12.1} ns/iter {eps:>10.0} elem/s");
        }
        None => println!("{id:<40} {ns:>12.1} ns/iter"),
    }
}

/// Top-level benchmark driver (a trimmed-down `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate figures.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("xor", |b| b.iter(|| black_box(7u64) ^ black_box(9)));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        quick(&mut c);
    }
}
