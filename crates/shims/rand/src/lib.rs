//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! small surface the workspace uses: [`random`], [`thread_rng`], and an
//! [`Rng`] trait with `gen`/`gen_range`/`gen_bool`. The generator is a
//! SplitMix64/xorshift-style PRNG seeded from the system clock and a
//! per-thread counter — statistically fine for capability nonces, jitter
//! and tests; **not** cryptographically secure.

use std::cell::Cell;
use std::ops::Range;
use std::time::{SystemTime, UNIX_EPOCH};

/// Types that can be produced by [`random`] / [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn draw(rng: &mut ThreadRng) -> Self;
}

/// Types usable as `gen_range` bounds.
pub trait SampleRange: Sized {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample(range: Range<Self>, rng: &mut ThreadRng) -> Self;
}

/// The random-number-generator trait (subset).
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized;

    /// A value uniform in `[range.start, range.end)`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized;

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized;
}

/// A per-thread PRNG handle.
pub struct ThreadRng {
    state: u64,
}

impl ThreadRng {
    fn mix(mut z: u64) -> u64 {
        // SplitMix64 finalizer.
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl Drop for ThreadRng {
    fn drop(&mut self) {
        // Persist the advanced state so successive thread_rng() handles on
        // the same thread do not repeat sequences.
        THREAD_STATE.with(|s| s.set(self.state));
    }
}

thread_local! {
    static THREAD_STATE: Cell<u64> = Cell::new(initial_seed());
}

fn initial_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    // Mix in a per-thread address so simultaneous threads diverge.
    let tid = &nanos as *const _ as u64;
    ThreadRng::mix(nanos ^ tid.rotate_left(32))
}

/// Returns the calling thread's RNG handle.
pub fn thread_rng() -> ThreadRng {
    ThreadRng {
        state: THREAD_STATE.with(|s| s.get()),
    }
}

/// A uniformly distributed random value (like `rand::random`).
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut ThreadRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange for $t {
            fn sample(range: Range<Self>, rng: &mut ThreadRng) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                let r = ((rng.next_u64() as u128) % span) as $t;
                range.start.wrapping_add(r)
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut ThreadRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut ThreadRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut ThreadRng) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl SampleRange for f64 {
    fn sample(range: Range<Self>, rng: &mut ThreadRng) -> Self {
        let unit: f64 = f64::draw(rng);
        range.start + unit * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_values_vary() {
        let a: u64 = random();
        let b: u64 = random();
        let c: u64 = random();
        assert!(a != b || b != c, "constant RNG output");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = thread_rng();
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn successive_handles_continue_sequence() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
