//! Model-checking hook points for the deterministic interleaving
//! explorer (`nest-model`).
//!
//! Under the `model` cargo feature, every sync operation on a shim
//! [`crate::Mutex`] / [`crate::RwLock`] / [`crate::Condvar`] first asks
//! this module whether the *current thread* is a task of an active model
//! run. If it is, the operation is routed to the installed [`ModelHooks`]
//! — the cooperative scheduler in `crates/model` — instead of blocking on
//! the underlying `std::sync` primitive. The scheduler serializes task
//! execution (exactly one task runs at a time) and only lets an
//! acquisition proceed when it has granted ownership, so the follow-up
//! `std` `try_lock` in the shim is guaranteed to succeed without
//! blocking: the `std` lock degenerates to a storage cell for the guard
//! and the *model* owns the blocking semantics.
//!
//! Hooks are **thread-local**: threads that were not spawned through
//! `nest_model::thread::spawn` (including every thread of a normal test
//! or production process, even in a `--features model` build) see no
//! hooks and take the ordinary `std`-backed path. Concurrently running
//! explorations in different test threads therefore cannot interfere.
//!
//! The trait is deliberately address-based (`usize` keys): the shim knows
//! nothing about tasks or schedules, and the scheduler knows nothing
//! about guard types. Lock-class names ride along purely for failure
//! reports.

use std::cell::RefCell;
use std::sync::Arc;

/// The scheduler side of the model protocol, implemented by
/// `nest-model`'s per-task context.
///
/// Every method is called on a task thread of an active run. Blocking
/// methods (`mutex_lock`, `rw_lock`, `condvar_wait`) return only when the
/// scheduler has granted the operation; they may unwind (via
/// `resume_unwind`) to tear the task down when the run is aborted.
pub trait ModelHooks: Send + Sync {
    /// Blocks (in model time) until the mutex at `addr` is granted.
    fn mutex_lock(&self, addr: usize, name: Option<&'static str>);
    /// Non-blocking acquisition attempt; `true` means granted.
    fn mutex_try_lock(&self, addr: usize, name: Option<&'static str>) -> bool;
    /// Releases the mutex at `addr` (never blocks, never yields).
    fn mutex_unlock(&self, addr: usize);
    /// Blocks until the rwlock at `addr` is granted in the given mode.
    fn rw_lock(&self, addr: usize, name: Option<&'static str>, exclusive: bool);
    /// Releases an rwlock hold of the given mode.
    fn rw_unlock(&self, addr: usize, exclusive: bool);
    /// Atomically releases `mutex`, waits on the condvar at `cv`, and
    /// reacquires `mutex` before returning. `timed` waits may be woken by
    /// the scheduler without a notify; the return value is `true` iff the
    /// wait ended by timeout.
    fn condvar_wait(
        &self,
        cv: usize,
        name: Option<&'static str>,
        mutex: usize,
        timed: bool,
    ) -> bool;
    /// Wakes one (`all == false`) or every waiter of the condvar at `cv`.
    fn condvar_notify(&self, cv: usize, name: Option<&'static str>, all: bool);
}

thread_local! {
    static HOOKS: RefCell<Option<Arc<dyn ModelHooks>>> = const { RefCell::new(None) };
}

/// Installs `hooks` as the current thread's model context. Called by the
/// model runtime when a task thread starts.
pub fn install(hooks: Arc<dyn ModelHooks>) {
    HOOKS.with(|h| *h.borrow_mut() = Some(hooks));
}

/// Removes the current thread's model context (task teardown).
pub fn uninstall() {
    HOOKS.with(|h| *h.borrow_mut() = None);
}

/// Whether the current thread is a task of an active model run.
pub fn active() -> bool {
    HOOKS.with(|h| h.borrow().is_some())
}

/// Runs `f` with the current thread's hooks, if installed.
///
/// The `Arc` is cloned out before `f` runs so the hook implementation may
/// itself be re-entered (it never is today, but a scheduler must not be
/// constrained by an outstanding `RefCell` borrow while it parks).
pub(crate) fn with<R>(f: impl FnOnce(&dyn ModelHooks) -> R) -> Option<R> {
    let hooks = HOOKS.with(|h| h.borrow().clone());
    hooks.map(|h| f(&*h))
}
