//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny API-compatible subset of `parking_lot` implemented over
//! `std::sync`. Semantics match what the rest of the workspace relies on:
//!
//! * [`Mutex::lock`] / [`RwLock::read`] / [`RwLock::write`] return guards
//!   directly (no `Result`); a poisoned `std` lock is recovered rather than
//!   propagated, matching `parking_lot`'s poison-free behavior.
//! * [`Condvar::wait_for`] takes `&mut MutexGuard` like `parking_lot`,
//!   rather than consuming the guard like `std`.
//!
//! Only the types the workspace uses are provided. This is intentionally
//! minimal — it is a build shim, not a performance claim.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_for can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
