//! Workspace-local stand-in for the `parking_lot` crate — and the
//! workspace's concurrency lab.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny API-compatible subset of `parking_lot` implemented over
//! `std::sync`. Semantics match what the rest of the workspace relies on:
//!
//! * [`Mutex::lock`] / [`RwLock::read`] / [`RwLock::write`] return guards
//!   directly (no `Result`); a poisoned `std` lock is recovered rather than
//!   propagated, matching `parking_lot`'s poison-free behavior. Every
//!   guard-(re)acquisition path funnels through the same [`recover`]
//!   helpers so poison handling cannot drift between `lock`, `try_lock`,
//!   `read`, `write`, `get_mut`, `into_inner`, and the condvar waits.
//! * [`Condvar::wait_for`] takes `&mut MutexGuard` like `parking_lot`,
//!   rather than consuming the guard like `std`.
//!
//! Because *every* lock in the workspace flows through this shim, it is
//! also the injection point for the `nest-check` analysis layer:
//!
//! * **Named lock classes** — [`Mutex::named`] / [`RwLock::named`] /
//!   [`Condvar::named`] attach a static name and documentation rank
//!   (DESIGN.md §11). A name identifies a lock *class* (lockdep-style),
//!   not an instance; all instances of a class share one statistics cell.
//! * **Contention statistics** (always on for named locks) — per-class
//!   `acquires / contended / wait_ns / hold_ns`, exported via
//!   [`lockstats::snapshot`] and bridged into the `nest-obs` registry.
//! * **Lock-order (deadlock-potential) detection** (runtime-gated, see
//!   [`lock_order`]) — an Eraser-style acquisition-order graph that panics
//!   with both acquisition backtraces on the first cycle-forming edge,
//!   *before* the acquisition blocks, so a constructed AB/BA pair reports
//!   instead of deadlocking.
//!
//! Only the types the workspace uses are provided. This is intentionally
//! minimal — it is a build shim, not a performance claim.

#[path = "order.rs"]
pub mod lock_order;
pub mod lockstats;
#[cfg(feature = "model")]
pub mod model;
pub mod shard;

pub use shard::{shard_hash, ShardedMutex};

use lock_order::Mode;
use lockstats::LockStats;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The single poison-recovery policy for blocking acquisitions and
/// condvar reacquisitions: a poisoned `std` lock yields its guard (or
/// value) as if the poisoning panic never happened. Every path that can
/// hand out a guard goes through this or [`recover_try`].
fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

/// Poison-recovery for non-blocking acquisitions: `WouldBlock` maps to
/// `None`, poison recovers exactly like [`recover`].
fn recover_try<G>(r: Result<G, sync::TryLockError<G>>) -> Option<G> {
    match r {
        Ok(g) => Some(g),
        Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(sync::TryLockError::WouldBlock) => None,
    }
}

/// Per-guard tracking state for a named lock: which class to charge and
/// when the current hold segment began.
struct Tracked {
    stats: &'static LockStats,
    since: Instant,
}

impl Tracked {
    fn new(stats: &'static LockStats) -> Self {
        Self {
            stats,
            since: Instant::now(),
        }
    }

    /// Closes the current hold segment (condvar wait or guard drop).
    fn close(&self) {
        self.stats.note_hold(self.since.elapsed().as_nanos() as u64);
        lock_order::note_released(self.stats);
    }
}

/// Shared identity for named lock classes: the `(name, rank)` given at the
/// construction site plus the lazily resolved `'static` stats cell.
#[derive(Default, Debug)]
struct ClassRef {
    name: Option<(&'static str, u16)>,
    cell: OnceLock<&'static LockStats>,
}

impl ClassRef {
    const fn unnamed() -> Self {
        Self {
            name: None,
            cell: OnceLock::new(),
        }
    }

    const fn named(name: &'static str, rank: u16) -> Self {
        Self {
            name: Some((name, rank)),
            cell: OnceLock::new(),
        }
    }

    fn stats(&self) -> Option<&'static LockStats> {
        let (name, rank) = self.name?;
        Some(self.cell.get_or_init(|| lockstats::cell_for(name, rank)))
    }

    /// The class name alone (failure-report labeling under the model).
    #[cfg(feature = "model")]
    fn class_name(&self) -> Option<&'static str> {
        self.name.map(|(n, _)| n)
    }
}

/// The identity key a sync object contributes to the model protocol: its
/// address. Stable for the object's lifetime, which spans any one model
/// run; schedules are keyed by task decisions, not addresses, so reuse
/// across runs is harmless.
#[cfg(feature = "model")]
fn model_addr<T: ?Sized>(obj: &T) -> usize {
    obj as *const T as *const () as usize
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    class: ClassRef,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    // Option so Condvar::wait_for can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
    /// Under the model: the owning lock, so drop and condvar waits can
    /// report releases/reacquisitions to the scheduler.
    #[cfg(feature = "model")]
    model: Option<&'a Mutex<T>>,
}

impl<T> Mutex<T> {
    /// Creates a new (anonymous) mutex.
    pub const fn new(value: T) -> Self {
        Self {
            class: ClassRef::unnamed(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex belonging to the named lock class `name` with
    /// documentation rank `rank` (DESIGN.md §11). Named locks record
    /// acquisition statistics in all builds and participate in lock-order
    /// detection when [`lock_order::is_enabled`].
    pub const fn named(name: &'static str, rank: u16, value: T) -> Self {
        Self {
            class: ClassRef::named(name, rank),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        if model::active() {
            model::with(|h| h.mutex_lock(model_addr(self), self.class.class_name()));
            // The scheduler granted exclusive ownership; the std lock is
            // only a storage cell here and cannot be contended.
            let inner = recover_try(self.inner.try_lock())
                .expect("model scheduler grants exclusive mutex ownership");
            return MutexGuard {
                track: None,
                inner: Some(inner),
                model: Some(self),
            };
        }
        let stats = self.class.stats();
        let inner = match stats {
            None => recover(self.inner.lock()),
            Some(s) => {
                // Check ordering BEFORE we can block: a cycle-forming
                // acquisition must panic, not deadlock.
                lock_order::check_acquire(s, Mode::Exclusive);
                let g = match recover_try(self.inner.try_lock()) {
                    Some(g) => g,
                    None => {
                        s.note_contended();
                        let start = Instant::now();
                        let g = recover(self.inner.lock());
                        s.note_wait(start.elapsed().as_nanos() as u64);
                        g
                    }
                };
                s.note_acquire();
                lock_order::note_acquired(s, Mode::Exclusive);
                g
            }
        };
        MutexGuard {
            track: stats.map(Tracked::new),
            inner: Some(inner),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Attempts to acquire the lock without blocking. A failed attempt on
    /// a named lock counts as contention; a successful one pushes a held
    /// entry (it can be the *held* side of a deadlock) but records no
    /// order edge, since `try_lock` never blocks.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if model::active() {
            let granted =
                model::with(|h| h.mutex_try_lock(model_addr(self), self.class.class_name()));
            if granted != Some(true) {
                return None;
            }
            let inner = recover_try(self.inner.try_lock())
                .expect("model scheduler grants exclusive mutex ownership");
            return Some(MutexGuard {
                track: None,
                inner: Some(inner),
                model: Some(self),
            });
        }
        let stats = self.class.stats();
        match recover_try(self.inner.try_lock()) {
            Some(g) => {
                if let Some(s) = stats {
                    s.note_acquire();
                    lock_order::note_acquired(s, Mode::Exclusive);
                }
                Some(MutexGuard {
                    track: stats.map(Tracked::new),
                    inner: Some(g),
                    #[cfg(feature = "model")]
                    model: None,
                })
            }
            None => {
                if let Some(s) = stats {
                    s.note_contended();
                }
                None
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.track.take() {
            t.close();
        }
        #[cfg(feature = "model")]
        if let Some(m) = self.model.take() {
            // Free the std storage cell first, then hand ownership back
            // to the scheduler: the next task it grants must find the
            // std lock uncontended.
            self.inner = None;
            model::with(|h| h.mutex_unlock(model_addr(m)));
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    class: ClassRef,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    /// Under the model: the owning lock, for the release hook on drop.
    #[cfg(feature = "model")]
    model: Option<&'a RwLock<T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    /// Under the model: the owning lock, for the release hook on drop.
    #[cfg(feature = "model")]
    model: Option<&'a RwLock<T>>,
}

impl<T> RwLock<T> {
    /// Creates a new (anonymous) reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            class: ClassRef::unnamed(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock belonging to the named class `name`
    /// with documentation rank `rank` (DESIGN.md §11).
    pub const fn named(name: &'static str, rank: u16, value: T) -> Self {
        Self {
            class: ClassRef::named(name, rank),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        if model::active() {
            model::with(|h| h.rw_lock(model_addr(self), self.class.class_name(), false));
            let inner = recover_try(self.inner.try_read())
                .expect("model scheduler grants shared rwlock ownership");
            return RwLockReadGuard {
                track: None,
                inner: Some(inner),
                model: Some(self),
            };
        }
        let stats = self.class.stats();
        let inner = match stats {
            None => recover(self.inner.read()),
            Some(s) => {
                lock_order::check_acquire(s, Mode::Shared);
                let g = match recover_try(self.inner.try_read()) {
                    Some(g) => g,
                    None => {
                        s.note_contended();
                        let start = Instant::now();
                        let g = recover(self.inner.read());
                        s.note_wait(start.elapsed().as_nanos() as u64);
                        g
                    }
                };
                s.note_acquire();
                lock_order::note_acquired(s, Mode::Shared);
                g
            }
        };
        RwLockReadGuard {
            track: stats.map(Tracked::new),
            inner: Some(inner),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        if model::active() {
            model::with(|h| h.rw_lock(model_addr(self), self.class.class_name(), true));
            let inner = recover_try(self.inner.try_write())
                .expect("model scheduler grants exclusive rwlock ownership");
            return RwLockWriteGuard {
                track: None,
                inner: Some(inner),
                model: Some(self),
            };
        }
        let stats = self.class.stats();
        let inner = match stats {
            None => recover(self.inner.write()),
            Some(s) => {
                lock_order::check_acquire(s, Mode::Exclusive);
                let g = match recover_try(self.inner.try_write()) {
                    Some(g) => g,
                    None => {
                        s.note_contended();
                        let start = Instant::now();
                        let g = recover(self.inner.write());
                        s.note_wait(start.elapsed().as_nanos() as u64);
                        g
                    }
                };
                s.note_acquire();
                lock_order::note_acquired(s, Mode::Exclusive);
                g
            }
        };
        RwLockWriteGuard {
            track: stats.map(Tracked::new),
            inner: Some(inner),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.track.take() {
            t.close();
        }
        #[cfg(feature = "model")]
        if let Some(l) = self.model.take() {
            self.inner = None;
            model::with(|h| h.rw_unlock(model_addr(l), false));
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.track.take() {
            t.close();
        }
        #[cfg(feature = "model")]
        if let Some(l) = self.model.take() {
            self.inner = None;
            model::with(|h| h.rw_unlock(model_addr(l), true));
        }
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
///
/// A *named* condvar records each completed wait as an acquisition of its
/// own class (`acquires` = waits, `wait_ns` = time blocked in the wait),
/// so spool-style wakeup loops show up in the stats table.
#[derive(Default)]
pub struct Condvar {
    class: ClassRef,
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new (anonymous) condition variable.
    pub const fn new() -> Self {
        Self {
            class: ClassRef::unnamed(),
            inner: sync::Condvar::new(),
        }
    }

    /// Creates a condition variable belonging to the named class `name`
    /// with documentation rank `rank` (DESIGN.md §11).
    pub const fn named(name: &'static str, rank: u16) -> Self {
        Self {
            class: ClassRef::named(name, rank),
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if model::active() {
            model::with(|h| h.condvar_notify(model_addr(self), self.class.class_name(), false));
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if model::active() {
            model::with(|h| h.condvar_notify(model_addr(self), self.class.class_name(), true));
            return;
        }
        self.inner.notify_all();
    }

    /// Bookkeeping before the guard's mutex is released into a wait:
    /// closes the current hold segment and pops the held-lock entry.
    fn before_wait<T>(guard: &mut MutexGuard<'_, T>) {
        if let Some(t) = guard.track.as_ref() {
            t.close();
        }
    }

    /// Bookkeeping after the mutex is reacquired on wakeup: re-checks
    /// acquisition order against anything else still held, counts the
    /// reacquisition, and opens a fresh hold segment.
    fn after_wait<T>(&self, guard: &mut MutexGuard<'_, T>, waited: Duration) {
        if let Some(s) = self.class.stats() {
            s.note_acquire();
            s.note_wait(waited.as_nanos() as u64);
        }
        if let Some(t) = guard.track.as_mut() {
            lock_order::check_acquire(t.stats, Mode::Exclusive);
            t.stats.note_acquire();
            lock_order::note_acquired(t.stats, Mode::Exclusive);
            t.since = Instant::now();
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "model")]
        if let Some(m) = guard.model {
            self.model_wait(guard, m, false);
            return;
        }
        let std_guard = guard.inner.take().expect("guard present");
        Self::before_wait(guard);
        let start = Instant::now();
        let std_guard = recover(self.inner.wait(std_guard));
        self.after_wait(guard, start.elapsed());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "model")]
        if let Some(m) = guard.model {
            // Model time has no clock: the scheduler explores both the
            // notified and the timed-out wakeup as distinct schedules, so
            // the concrete Duration is irrelevant.
            let _ = timeout;
            let timed_out = self.model_wait(guard, m, true);
            return WaitTimeoutResult { timed_out };
        }
        let std_guard = guard.inner.take().expect("guard present");
        Self::before_wait(guard);
        let start = Instant::now();
        let (std_guard, result) = recover(self.inner.wait_timeout(std_guard, timeout));
        self.after_wait(guard, start.elapsed());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// The model-side wait protocol: release the std storage cell, hand
    /// the atomic release-wait-reacquire to the scheduler, then repopulate
    /// the guard (the scheduler reacquired mutex ownership on our behalf
    /// before waking us). Returns whether the wait timed out.
    #[cfg(feature = "model")]
    fn model_wait<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        m: &'a Mutex<T>,
        timed: bool,
    ) -> bool {
        guard.inner = None;
        let timed_out = model::with(|h| {
            h.condvar_wait(
                model_addr(self),
                self.class.class_name(),
                model_addr(m),
                timed,
            )
        })
        .expect("model guard implies installed hooks");
        let inner = recover_try(m.inner.try_lock())
            .expect("model scheduler reacquires the mutex before wakeup");
        guard.inner = Some(inner);
        timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn named_mutex_counts_acquires_and_contention() {
        let m = Arc::new(Mutex::named("test.shim.counting", 1, 0u64));
        // Uncontended acquisitions.
        for _ in 0..3 {
            *m.lock() += 1;
        }
        // Force a contended acquisition: hold the lock while another
        // thread blocks on it.
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = thread::spawn(move || {
            *m2.lock() += 1;
        });
        // Give the thread time to hit the try_lock fast path and block.
        thread::sleep(Duration::from_millis(30));
        drop(g);
        t.join().unwrap();
        let snap = lockstats::snapshot();
        let row = snap
            .iter()
            .find(|s| s.name == "test.shim.counting")
            .expect("class registered");
        assert!(row.acquires >= 5, "acquires = {}", row.acquires);
        assert!(row.contended >= 1, "contended = {}", row.contended);
        assert!(row.wait_ns > 0, "wait_ns = {}", row.wait_ns);
        assert!(row.hold_ns > 0, "hold_ns = {}", row.hold_ns);
        assert_eq!(row.rank, 1);
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn named_instances_share_one_class() {
        let a = Mutex::named("test.shim.shared-class", 2, ());
        let b = Mutex::named("test.shim.shared-class", 7, ());
        drop(a.lock());
        drop(b.lock());
        let snap = lockstats::snapshot();
        let rows: Vec<_> = snap
            .iter()
            .filter(|s| s.name == "test.shim.shared-class")
            .collect();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].acquires >= 2);
        // First registration's rank wins.
        assert_eq!(rows[0].rank, 2);
    }

    #[test]
    fn poisoned_mutex_recovers_on_every_path() {
        let m = Arc::new(Mutex::named("test.shim.poison", 3, 41u32));
        let m2 = Arc::clone(&m);
        // Poison the underlying std lock via a panicking thread.
        let t = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        });
        assert!(t.join().is_err());
        // lock() recovers.
        {
            let mut g = m.lock();
            *g += 1;
        }
        // try_lock() recovers.
        assert_eq!(*m.try_lock().expect("uncontended"), 42);
        // get_mut() and into_inner() recover.
        let mut m = Arc::try_unwrap(m).ok().expect("sole owner");
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 43);
    }

    #[test]
    fn poisoned_rwlock_recovers_on_every_path() {
        let l = Arc::new(RwLock::named("test.shim.poison-rw", 4, 10u32));
        let l2 = Arc::clone(&l);
        let t = thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        });
        assert!(t.join().is_err());
        assert_eq!(*l.read(), 10);
        *l.write() += 1;
        let mut l = Arc::try_unwrap(l).ok().expect("sole owner");
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 12);
    }

    #[test]
    fn condvar_wait_recovers_poison_like_lock() {
        // A thread panics (poisoning the mutex) while the main thread is
        // parked in wait_for: the reacquisition path must recover the
        // guard exactly like Mutex::lock does.
        let pair = Arc::new((
            Mutex::named("test.shim.poison-cv", 5, false),
            Condvar::new(),
        ));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            // Wait until the main thread is (very likely) parked.
            thread::sleep(Duration::from_millis(30));
            let _g = m.lock();
            cv.notify_all();
            panic!("poison while a waiter is parked");
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        // Tolerate spurious wakeups; exit on notify or timeout.
        while Instant::now() < deadline {
            let r = cv.wait_for(&mut g, Duration::from_millis(100));
            if r.timed_out() {
                continue;
            }
            break;
        }
        // The guard is usable after reacquiring a poisoned lock.
        *g = true;
        drop(g);
        assert!(t.join().is_err());
        assert!(*m.lock());
    }
}
