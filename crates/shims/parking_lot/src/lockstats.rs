//! Per-named-lock acquisition statistics.
//!
//! Every named lock ([`crate::Mutex::named`] / [`crate::RwLock::named`])
//! shares one statistics cell per *name* — a name identifies a lock
//! *class* (à la Linux lockdep), not an instance, so `storage.lot` is one
//! row no matter how many appliances a test process spins up. Cells are
//! leaked `'static` allocations: the set of distinct names is small and
//! fixed at compile time, and a `'static` borrow lets each lock instance
//! cache its cell in a `OnceLock` and update it with plain relaxed
//! atomics — the steady-state cost of being named is two `Instant::now()`
//! calls and a handful of uncontended atomic adds per acquisition.
//!
//! The table itself is guarded by a `std::sync::Mutex`, **not** a shim
//! lock, so the statistics layer can never recurse into itself.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The shared statistics cell for one lock class.
#[derive(Debug)]
pub struct LockStats {
    /// The static name given at the construction site.
    pub name: &'static str,
    /// Documentation rank from the canonical lock-rank table (DESIGN.md
    /// §11); lower ranks are acquired first on any rank-consistent path.
    pub rank: u16,
    /// Dense node id used by the lock-order graph.
    pub(crate) id: u32,
    pub(crate) acquires: AtomicU64,
    pub(crate) contended: AtomicU64,
    pub(crate) wait_ns: AtomicU64,
    pub(crate) hold_ns: AtomicU64,
}

impl LockStats {
    pub(crate) fn note_contended(&self) {
        self.contended.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_wait(&self, ns: u64) {
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
    }
    pub(crate) fn note_acquire(&self) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_hold(&self, ns: u64) {
        self.hold_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one lock class's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStatSnapshot {
    /// Lock-class name.
    pub name: &'static str,
    /// Rank from the canonical table (first registration wins).
    pub rank: u16,
    /// Total acquisitions (lock / read / write / condvar reacquire).
    pub acquires: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total nanoseconds spent blocked waiting to acquire.
    pub wait_ns: u64,
    /// Total nanoseconds the lock was held (per-guard, summed).
    pub hold_ns: u64,
}

static TABLE: OnceLock<Mutex<BTreeMap<&'static str, &'static LockStats>>> = OnceLock::new();
static NEXT_ID: AtomicU32 = AtomicU32::new(0);

fn table() -> &'static Mutex<BTreeMap<&'static str, &'static LockStats>> {
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Resolves (registering on first use) the shared cell for `name`.
/// The first registration's `rank` wins; later constructions of the same
/// class reuse the cell regardless of the rank they pass.
pub(crate) fn cell_for(name: &'static str, rank: u16) -> &'static LockStats {
    let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(cell) = t.get(name) {
        return cell;
    }
    let cell: &'static LockStats = Box::leak(Box::new(LockStats {
        name,
        rank,
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        acquires: AtomicU64::new(0),
        contended: AtomicU64::new(0),
        wait_ns: AtomicU64::new(0),
        hold_ns: AtomicU64::new(0),
    }));
    t.insert(name, cell);
    cell
}

/// A consistent, name-sorted snapshot of every registered lock class.
pub fn snapshot() -> Vec<LockStatSnapshot> {
    let t = table().lock().unwrap_or_else(PoisonError::into_inner);
    t.values()
        .map(|c| LockStatSnapshot {
            name: c.name,
            rank: c.rank,
            acquires: c.acquires.load(Ordering::Relaxed),
            contended: c.contended.load(Ordering::Relaxed),
            wait_ns: c.wait_ns.load(Ordering::Relaxed),
            hold_ns: c.hold_ns.load(Ordering::Relaxed),
        })
        .collect()
}

/// The lock class with the highest contended count (ties broken by name),
/// or `None` when no class has ever contended. Feeds the discovery
/// ClassAd's `LockContentionTop` attribute.
pub fn most_contended() -> Option<LockStatSnapshot> {
    snapshot()
        .into_iter()
        .filter(|s| s.contended > 0)
        .max_by(|a, b| a.contended.cmp(&b.contended).then(b.name.cmp(a.name)))
}
