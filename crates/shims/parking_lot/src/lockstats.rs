//! Per-named-lock acquisition statistics.
//!
//! Every named lock ([`crate::Mutex::named`] / [`crate::RwLock::named`])
//! shares one statistics cell per *name* — a name identifies a lock
//! *class* (à la Linux lockdep), not an instance, so `storage.lot` is one
//! row no matter how many appliances a test process spins up. Cells are
//! leaked `'static` allocations: the set of distinct names is small and
//! fixed at compile time, and a `'static` borrow lets each lock instance
//! cache its cell in a `OnceLock` and update it with plain relaxed
//! atomics — the steady-state cost of being named is two `Instant::now()`
//! calls and a handful of uncontended atomic adds per acquisition.
//!
//! The table itself is guarded by a `std::sync::Mutex`, **not** a shim
//! lock, so the statistics layer can never recurse into itself.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The shared statistics cell for one lock class.
#[derive(Debug)]
pub struct LockStats {
    /// The static name given at the construction site.
    pub name: &'static str,
    /// Documentation rank from the canonical lock-rank table (DESIGN.md
    /// §11); lower ranks are acquired first on any rank-consistent path.
    pub rank: u16,
    /// Dense node id used by the lock-order graph.
    pub(crate) id: u32,
    pub(crate) acquires: AtomicU64,
    pub(crate) contended: AtomicU64,
    pub(crate) wait_ns: AtomicU64,
    pub(crate) hold_ns: AtomicU64,
}

impl LockStats {
    pub(crate) fn note_contended(&self) {
        self.contended.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_wait(&self, ns: u64) {
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
    }
    pub(crate) fn note_acquire(&self) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_hold(&self, ns: u64) {
        self.hold_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one lock class's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStatSnapshot {
    /// Lock-class name.
    pub name: &'static str,
    /// Rank from the canonical table (first registration wins).
    pub rank: u16,
    /// Total acquisitions (lock / read / write / condvar reacquire).
    pub acquires: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total nanoseconds spent blocked waiting to acquire.
    pub wait_ns: u64,
    /// Total nanoseconds the lock was held (per-guard, summed).
    pub hold_ns: u64,
}

static TABLE: OnceLock<Mutex<BTreeMap<&'static str, &'static LockStats>>> = OnceLock::new();
static NEXT_ID: AtomicU32 = AtomicU32::new(0);

fn table() -> &'static Mutex<BTreeMap<&'static str, &'static LockStats>> {
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Resolves (registering on first use) the shared cell for `name`.
/// The first registration's `rank` wins; later constructions of the same
/// class reuse the cell regardless of the rank they pass.
pub(crate) fn cell_for(name: &'static str, rank: u16) -> &'static LockStats {
    let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(cell) = t.get(name) {
        return cell;
    }
    let cell: &'static LockStats = Box::leak(Box::new(LockStats {
        name,
        rank,
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        acquires: AtomicU64::new(0),
        contended: AtomicU64::new(0),
        wait_ns: AtomicU64::new(0),
        hold_ns: AtomicU64::new(0),
    }));
    t.insert(name, cell);
    cell
}

/// A consistent, name-sorted snapshot of every registered lock class.
pub fn snapshot() -> Vec<LockStatSnapshot> {
    let t = table().lock().unwrap_or_else(PoisonError::into_inner);
    t.values()
        .map(|c| LockStatSnapshot {
            name: c.name,
            rank: c.rank,
            acquires: c.acquires.load(Ordering::Relaxed),
            contended: c.contended.load(Ordering::Relaxed),
            wait_ns: c.wait_ns.load(Ordering::Relaxed),
            hold_ns: c.hold_ns.load(Ordering::Relaxed),
        })
        .collect()
}

/// True for lock classes that only exist inside test or model-checker
/// harnesses — they never run in production, so contention surfaces must
/// not report them.
fn harness_class(name: &str) -> bool {
    name.starts_with("test.") || name.starts_with("model.")
}

/// The production lock class with the most total blocked time (`wait_ns`;
/// ties broken by contended count, then name), or `None` when no class
/// has ever contended. Raw contended counts overweight cheap fast-path
/// bounces, so the ranking key is time lost, not bounce count.
/// `test.*`/`model.*` harness classes are excluded. Feeds the discovery
/// ClassAd's `LockContentionTop` attribute.
pub fn most_contended() -> Option<LockStatSnapshot> {
    snapshot()
        .into_iter()
        .filter(|s| s.contended > 0 && !harness_class(s.name))
        .max_by(|a, b| {
            a.wait_ns
                .cmp(&b.wait_ns)
                .then(a.contended.cmp(&b.contended))
                .then(b.name.cmp(a.name))
        })
}

/// The `n` most-contended production lock classes ranked by `wait_ns`
/// descending (the same ranking and harness-class exclusion as
/// [`most_contended`]). The scale lab snapshots this before and after a
/// measured window to build its contention profile.
pub fn top_contended(n: usize) -> Vec<LockStatSnapshot> {
    let mut rows: Vec<_> = snapshot()
        .into_iter()
        .filter(|s| s.contended > 0 && !harness_class(s.name))
        .collect();
    rows.sort_by(|a, b| {
        b.wait_ns
            .cmp(&a.wait_ns)
            .then(b.contended.cmp(&a.contended))
            .then(a.name.cmp(b.name))
    });
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_contended_ranks_by_wait_not_bounce_count() {
        // Many cheap bounces on one class, fewer but far costlier blocks
        // on another: the ranking must pick the class that lost the most
        // time. (Names avoid the excluded `test.`/`model.` prefixes; this
        // crate's own test binary is the only reader of these rows.)
        let bouncy = cell_for("zz.lockstats.bouncy", 1);
        for _ in 0..1000 {
            bouncy.note_contended();
            bouncy.note_wait(10);
        }
        let waity = cell_for("zz.lockstats.waity", 2);
        waity.note_contended();
        waity.note_wait(1_000_000_000);
        let top = most_contended().expect("contended classes exist");
        assert_eq!(top.name, "zz.lockstats.waity");
        let ranked = top_contended(2);
        assert_eq!(ranked[0].name, "zz.lockstats.waity");
        assert_eq!(ranked[1].name, "zz.lockstats.bouncy");
    }

    #[test]
    fn harness_classes_never_surface() {
        let t = cell_for("test.lockstats.loud", 3);
        let m = cell_for("model.lockstats.loud", 4);
        for c in [t, m] {
            c.note_contended();
            c.note_wait(u64::MAX / 4);
        }
        if let Some(top) = most_contended() {
            assert!(!harness_class(top.name), "harness class leaked: {}", top.name);
        }
        for row in top_contended(usize::MAX) {
            assert!(!harness_class(row.name), "harness class leaked: {}", row.name);
        }
    }
}
