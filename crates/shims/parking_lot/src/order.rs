//! Eraser-style lock-order (deadlock-potential) detection.
//!
//! Every *named* lock acquisition, while detection is enabled, records
//! directed edges `held → acquiring` in a global acquisition-order graph
//! keyed by lock *class* (name). The first edge that closes a cycle —
//! i.e. the first time two classes are ever taken in both orders, on any
//! threads, at any time — panics immediately with **both** acquisition
//! backtraces: the current one and the one recorded when the opposing
//! edge was first seen. This is happened-in-wrong-order detection, not
//! sampling: the AB/BA pair is reported even if the two threads never
//! actually interleave into a deadlock.
//!
//! Enablement is runtime-cheap (one relaxed atomic load per acquisition
//! when off) and comes from any of:
//! * the `lock-order` cargo feature (on by default in that build),
//! * the `NEST_LOCK_ORDER` environment variable (read once),
//! * [`enable`] called programmatically (tests).
//!
//! Conservative choices:
//! * Same-class nesting is ignored: a name identifies a class, and two
//!   *instances* of one class cannot be distinguished here, so
//!   read-read recursion (and deliberate instance-ordered designs) are
//!   not false positives.
//! * `try_lock` acquisitions push a held entry (they can be the *held*
//!   side of a deadlock) but record no inbound edge (they never block).
//! * All internal state uses `std::sync` primitives, never shim locks.

use crate::lockstats::LockStats;
use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// How a lock is being (or was) acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// `Mutex::lock` / `RwLock::write`.
    Exclusive,
    /// `RwLock::read`.
    Shared,
}

static ENABLED: AtomicBool = AtomicBool::new(cfg!(feature = "lock-order"));
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

fn env_enabled() -> bool {
    *ENV_ENABLED.get_or_init(|| {
        std::env::var("NEST_LOCK_ORDER")
            .map(|v| !v.is_empty() && v != "0" && v.to_ascii_lowercase() != "false")
            .unwrap_or(false)
    })
}

/// Whether lock-order detection is currently active.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns detection on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the programmatic/feature switch off. Cannot override an
/// explicit `NEST_LOCK_ORDER` environment enablement.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

struct Held {
    id: u32,
    mode: Mode,
    stats: &'static LockStats,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// One recorded acquisition-order edge `from → to`, with the backtrace of
/// the acquisition that first established it.
struct EdgeInfo {
    backtrace: String,
}

#[derive(Default)]
struct Graph {
    /// Adjacency: from-id → sorted list of to-ids.
    adj: HashMap<u32, Vec<u32>>,
    /// Edge metadata, keyed by (from, to).
    info: HashMap<(u32, u32), EdgeInfo>,
    /// Node id → lock class, for reporting.
    names: HashMap<u32, &'static LockStats>,
}

impl Graph {
    fn has_edge(&self, from: u32, to: u32) -> bool {
        self.adj
            .get(&from)
            .is_some_and(|v| v.binary_search(&to).is_ok())
    }

    /// Depth-first path from `from` to `to` over recorded edges; returns
    /// the node sequence (inclusive) when one exists.
    fn find_path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![vec![from]];
        let mut visited = std::collections::HashSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = self.adj.get(&last) {
                for &n in nexts {
                    if visited.insert(n) {
                        let mut p = path.clone();
                        p.push(n);
                        stack.push(p);
                    }
                }
            }
        }
        None
    }
}

static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();

fn graph() -> &'static Mutex<Graph> {
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// Called *before* a named acquisition blocks. Records `held → new`
/// edges and panics (with both backtraces) if any such edge closes a
/// cycle in the acquisition-order graph.
pub(crate) fn check_acquire(new: &'static LockStats, _mode: Mode) {
    if !is_enabled() {
        return;
    }
    // Snapshot currently held classes (dedup, skip same-class nesting).
    let mut held_ids: Vec<(u32, &'static LockStats)> = Vec::new();
    HELD.with(|h| {
        for held in h.borrow().iter() {
            if held.id != new.id && !held_ids.iter().any(|(id, _)| *id == held.id) {
                held_ids.push((held.id, held.stats));
            }
        }
    });
    if held_ids.is_empty() {
        return;
    }
    for (from, from_stats) in held_ids {
        // Fast path: known edge.
        {
            let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            if g.has_edge(from, new.id) {
                continue;
            }
        }
        // Slow path: new edge — capture the backtrace, insert, check.
        let bt = Backtrace::force_capture().to_string();
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        if g.has_edge(from, new.id) {
            continue; // raced another thread recording the same edge
        }
        g.names.entry(from).or_insert(from_stats);
        g.names.entry(new.id).or_insert(new);
        // A cycle exists iff the new lock already reaches the held one.
        if let Some(path) = g.find_path(new.id, from) {
            let msg = cycle_report(&g, new, from_stats, &path, &bt);
            drop(g); // do not poison the graph lock with our panic
            panic!("{}", msg);
        }
        let adj = g.adj.entry(from).or_default();
        if let Err(pos) = adj.binary_search(&new.id) {
            adj.insert(pos, new.id);
        }
        g.info.insert((from, new.id), EdgeInfo { backtrace: bt });
    }
}

/// Renders the two-backtrace cycle report.
fn cycle_report(
    g: &Graph,
    new: &'static LockStats,
    held: &'static LockStats,
    path: &[u32],
    current_bt: &str,
) -> String {
    let name_of = |id: u32| g.names.get(&id).map_or("?", |s| s.name);
    let mut cycle: Vec<String> = path.iter().map(|id| name_of(*id).to_owned()).collect();
    cycle.push(new.name.to_owned()); // close the loop visually
                                     // The opposing edge whose recording established the reverse order:
                                     // the first hop of the path new → … → held.
    let opposing = (path[0], path[1]);
    let recorded = g
        .info
        .get(&opposing)
        .map_or("<no backtrace recorded>", |e| e.backtrace.as_str());
    format!(
        "lock-order cycle detected: acquiring '{}' (rank {}) while holding '{}' (rank {}) \
         inverts the established order {}\n\
         \n--- current acquisition backtrace ('{}' -> '{}') ---\n{}\n\
         \n--- recorded acquisition backtrace ('{}' -> '{}') ---\n{}\n",
        new.name,
        new.rank,
        held.name,
        held.rank,
        cycle.join(" -> "),
        held.name,
        new.name,
        current_bt,
        name_of(opposing.0),
        name_of(opposing.1),
        recorded,
    )
}

/// Called after a named acquisition succeeds: pushes the held entry.
pub(crate) fn note_acquired(stats: &'static LockStats, mode: Mode) {
    if !is_enabled() {
        return;
    }
    HELD.with(|h| {
        h.borrow_mut().push(Held {
            id: stats.id,
            mode,
            stats,
        })
    });
}

/// Called when a named guard drops (or releases for a condvar wait):
/// removes the most recent matching held entry, tolerating out-of-order
/// guard drops and mid-flight enablement.
pub(crate) fn note_released(stats: &'static LockStats) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|e| e.id == stats.id) {
            held.remove(pos);
        }
    });
}

/// Test hook: number of lock classes this thread currently holds.
pub fn held_depth() -> usize {
    HELD.with(|h| h.borrow().len())
}

// `mode` is currently informational (same-class nesting is skipped before
// modes matter), but keeping it in the held record makes shared/exclusive
// reporting and future upgrade (e.g. waiting-writer analysis) cheap.
impl Held {
    #[allow(dead_code)]
    fn is_shared(&self) -> bool {
        self.mode == Mode::Shared
    }
}
