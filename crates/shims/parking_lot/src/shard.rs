//! Lock striping over the shim's named [`Mutex`]: N cells, one class.
//!
//! A [`ShardedMutex`] spreads one logical table over `N` independently
//! locked cells so that operations touching different shards stop
//! serializing on a single mutex. Every cell is constructed with the
//! *same* class name and rank, which keeps the rest of the concurrency
//! lab working unchanged across shards:
//!
//! * **Contention statistics** — all cells charge one `lock.<class>.*`
//!   stats cell (a name identifies a class, not an instance), so the
//!   before/after contention profile of a sharding refactor stays
//!   directly comparable.
//! * **Lock-order detection** — the cells share one rank, and same-class
//!   nesting is exempt from the order detector, so multi-cell holds are
//!   legal *provided they are acquired in ascending cell index*. Every
//!   multi-cell path in this module ([`ShardedMutex::lock_all`]) does so;
//!   wrapper modules locking a subset of cells must follow the same
//!   ascending-index discipline (that is the only deadlock rule).
//! * **Model-checker hooks** — each cell is an ordinary named [`Mutex`],
//!   so under the `model` feature the scheduler interposes on every cell
//!   acquisition exactly as it does for unsharded locks.
//!
//! Shard selection is by caller-supplied hash ([`ShardedMutex::lock`]),
//! typically [`shard_hash`] of the table key. `shards = 1` degenerates to
//! a plain mutex and is the seed-equivalent ablation configuration.
//!
//! Raw cell access ([`ShardedMutex::shard_cell`] /
//! [`ShardedMutex::lock_idx`]) exists for wrapper modules that own the
//! sharding discipline (ordered subset locking, sequential aggregation).
//! Production code outside a wrapper module must go through the wrapper;
//! the `sharded-bypass` nest-lint rule enforces this.

use crate::{Mutex, MutexGuard};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Hashes a shard key with the std `DefaultHasher`. Deterministic within
/// a process, which is all shard selection needs.
pub fn shard_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// A fixed set of same-class mutex cells striping one logical table.
pub struct ShardedMutex<T> {
    cells: Vec<Mutex<T>>,
}

impl<T> ShardedMutex<T> {
    /// Builds `shards` cells (clamped to at least 1), all in lock class
    /// `name` at rank `rank`; `init` produces each cell's initial value
    /// from its index.
    pub fn new(
        name: &'static str,
        rank: u16,
        shards: usize,
        mut init: impl FnMut(usize) -> T,
    ) -> Self {
        let shards = shards.max(1);
        Self {
            cells: (0..shards).map(|i| Mutex::named(name, rank, init(i))).collect(),
        }
    }

    /// Number of cells.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The cell index a hash selects.
    pub fn shard_for(&self, hash: u64) -> usize {
        (hash % self.cells.len() as u64) as usize
    }

    /// Locks the cell selected by `hash`.
    pub fn lock(&self, hash: u64) -> MutexGuard<'_, T> {
        self.cells[self.shard_for(hash)].lock()
    }

    /// Locks cell `idx` directly. Wrapper-module use only: a caller
    /// holding multiple cells must acquire them in ascending index order.
    pub fn lock_idx(&self, idx: usize) -> MutexGuard<'_, T> {
        self.cells[idx].lock()
    }

    /// The raw cell at `idx`. Wrapper-module use only (see module docs);
    /// flagged by the `sharded-bypass` lint elsewhere.
    pub fn shard_cell(&self, idx: usize) -> &Mutex<T> {
        &self.cells[idx]
    }

    /// Locks every cell in ascending index order and returns all guards.
    /// The ascending order is what makes concurrent `lock_all` calls (and
    /// concurrent ordered subset locks) deadlock-free.
    pub fn lock_all(&self) -> Vec<MutexGuard<'_, T>> {
        self.cells.iter().map(Mutex::lock).collect()
    }

    /// Runs `f` over every cell *sequentially* (one cell locked at a
    /// time) — the aggregation pattern for sloppy snapshots that do not
    /// need a cross-cell atomic view.
    pub fn for_each_cell<R>(&self, mut f: impl FnMut(usize, &mut T) -> R) -> Vec<R> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| f(i, &mut c.lock()))
            .collect()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ShardedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMutex")
            .field("shards", &self.cells.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstats;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shards_partition_and_sum() {
        let s = Arc::new(ShardedMutex::new("test.shard.sum", 1, 4, |_| 0u64));
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    *s.lock(shard_hash(&(t * 1000 + i))) += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = s.for_each_cell(|_, v| *v).into_iter().sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn one_stats_class_across_cells() {
        let s = ShardedMutex::new("test.shard.one-class", 2, 8, |_| ());
        for i in 0..8 {
            drop(s.lock_idx(i));
        }
        let rows: Vec<_> = lockstats::snapshot()
            .into_iter()
            .filter(|r| r.name == "test.shard.one-class")
            .collect();
        assert_eq!(rows.len(), 1, "cells must share one class row");
        assert!(rows[0].acquires >= 8);
    }

    #[test]
    fn lock_all_holds_every_cell() {
        let s = ShardedMutex::new("test.shard.lock-all", 3, 3, |i| i);
        let guards = s.lock_all();
        assert_eq!(guards.len(), 3);
        for (i, g) in guards.iter().enumerate() {
            assert_eq!(**g, i);
        }
        // While all cells are held, try_lock on any cell fails.
        assert!(s.shard_cell(1).try_lock().is_none());
        drop(guards);
        assert!(s.shard_cell(1).try_lock().is_some());
    }

    #[test]
    fn single_shard_degenerates_to_plain_mutex() {
        let s = ShardedMutex::new("test.shard.single", 4, 0, |_| 7u32);
        assert_eq!(s.shards(), 1);
        assert_eq!(s.shard_for(u64::MAX), 0);
        assert_eq!(*s.lock(123), 7);
    }

    #[test]
    fn shard_hash_is_stable() {
        assert_eq!(shard_hash("a"), shard_hash("a"));
        let s = ShardedMutex::new("test.shard.stable", 5, 16, |_| ());
        let h = shard_hash(&42u64);
        assert_eq!(s.shard_for(h), s.shard_for(h));
    }
}
