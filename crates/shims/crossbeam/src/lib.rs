//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset the workspace uses: `crossbeam::channel` with [`channel::bounded`]
//! and [`channel::unbounded`] constructors, cloneable senders, and the
//! `recv` / `try_recv` / `recv_timeout` receiver surface, implemented over
//! `std::sync::mpsc`.
//!
//! Unlike real crossbeam, receivers are not cloneable (the workspace does
//! not share receivers across threads).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel. Cloneable, like crossbeam's.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let kind = match &self.kind {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            };
            Self { kind }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains and returns all currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_capacity_one_crosses_threads() {
            let (tx, rx) = bounded(1);
            let t = thread::spawn(move || {
                tx.send(1u32).unwrap();
                tx.send(2u32).unwrap(); // blocks until first is consumed
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn disconnect_surfaces_everywhere() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let mut got: Vec<i32> = rx.try_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
