//! Regression: class-aware adaptive-selector feedback.
//!
//! With the memory tier in place, tier-resident GETs complete at memcpy
//! speed while disk-bound flows run at device speed. The selector used to
//! fold every completion into one global EWMA per model, so whichever
//! model happened to serve more RAM traffic looked best *overall* even
//! when it was the worst choice for the disk-bound class — starving that
//! class of its better model. Scores are now kept per scheduling class
//! and combined by relative (per-class-normalized) standing.

use nest_transfer::adaptive::AdaptiveSelector;
use nest_transfer::concurrency::ModelKind;
use nest_transfer::flow::{DataSource, FlowMeta};
use nest_transfer::manager::{ModelSelection, TransferConfig, TransferManager};
use nest_transfer::{DataSink, FlowId};
use std::io;

/// The starvation scenario, distilled: Events is marginally better on the
/// memcpy-fast "ram" class but 3x worse on the device-bound "disk" class.
/// A raw global average of bytes/sec picks Events (RAM numbers are two
/// orders of magnitude larger, so they dominate any mean); the class-aware
/// standing must pick Threads.
#[test]
fn disk_bound_class_is_not_starved_by_ram_traffic() {
    let mut sel = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads]);
    // Interleave, as a live appliance would see them.
    for _ in 0..50 {
        sel.report_classed(ModelKind::Events, "ram", 10_000_000_000, 1.0);
        sel.report_classed(ModelKind::Threads, "ram", 9_000_000_000, 1.0);
        sel.report_classed(ModelKind::Events, "disk", 100_000_000, 1.0);
        sel.report_classed(ModelKind::Threads, "disk", 300_000_000, 1.0);
    }
    // Global-average arithmetic for reference: Events ≈ 5.05 GB/s mean,
    // Threads ≈ 4.65 GB/s mean — the raw average *would* pick Events.
    let events_mean = (10_000_000_000f64 + 100_000_000f64) / 2.0;
    let threads_mean = (9_000_000_000f64 + 300_000_000f64) / 2.0;
    assert!(events_mean > threads_mean, "scenario must expose the trap");
    // The class-normalized standing picks the model that wins where
    // winning matters: Threads (0.9 on ram, 1.0 on disk → 0.95) over
    // Events (1.0 on ram, 0.33 on disk → 0.67).
    assert_eq!(sel.best(), ModelKind::Threads);
}

/// The legacy class-free API still works and still converges — single
/// class means relative standing preserves raw throughput ordering.
#[test]
fn classless_reports_preserve_old_convergence() {
    let mut sel = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads]);
    for _ in 0..30 {
        sel.report(ModelKind::Events, 2_000_000, 1.0);
        sel.report(ModelKind::Threads, 500_000, 1.0);
    }
    assert_eq!(sel.best(), ModelKind::Events);
}

/// End-to-end through the engine: completions carry their `FlowMeta`
/// class into the selector, so per-class stats and per-class selector
/// scores stay attributed after a real transfer (not just via the unit
/// API above).
#[test]
fn engine_attributes_completions_to_their_class() {
    struct Src(u64);
    impl DataSource for Src {
        fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = (buf.len() as u64).min(self.0) as usize;
            self.0 -= n as u64;
            buf[..n].fill(7);
            Ok(n)
        }
    }
    struct Null;
    impl DataSink for Null {
        fn write_chunk(&mut self, _d: &[u8]) -> io::Result<()> {
            Ok(())
        }
    }
    let tm = TransferManager::new(TransferConfig {
        model: ModelSelection::Fixed(ModelKind::Events),
        ..TransferConfig::default()
    });
    let sizes = [("ram", 4 * 1024 * 1024u64), ("disk", 64 * 1024u64)];
    let mut handles = Vec::new();
    for (i, (class, size)) in sizes.iter().enumerate() {
        let meta = FlowMeta::new(FlowId(i as u64), *class, Some(*size));
        handles.push(tm.submit(meta, Box::new(Src(*size)), Box::new(Null)));
    }
    for h in handles {
        h.wait().unwrap();
    }
    let stats = tm.stats();
    assert_eq!(stats.classes["ram"].bytes, 4 * 1024 * 1024);
    assert_eq!(stats.classes["disk"].bytes, 64 * 1024);
    tm.shutdown();
}
