//! Seeded fault stress loop (gated behind `--features fault-injection`).
//!
//! Hammers the manager with flaky flows across all three models and all
//! three policies under one fixed seed, and asserts the global failure
//! invariants: every submitter gets an answer, the queue drains to zero,
//! and the stats ledger balances (successes + failures = submissions).
//!
//! Run with:
//! `cargo test -p nest-transfer --release --features fault-injection fault_stress`
#![cfg(feature = "fault-injection")]

use nest_obs::Obs;
use nest_transfer::fault::{FlakySource, RetryPolicy};
use nest_transfer::flow::{CountingSink, FlowMeta, PatternSource};
use nest_transfer::manager::{ModelSelection, SchedPolicy, TransferConfig, TransferManager};
use nest_transfer::ModelKind;
use std::io;
use std::sync::Arc;

const SEED: u64 = 0x1357_9bdf_2468_ace0;
const FLOWS_PER_CONFIG: u64 = 64;

fn policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fcfs,
        SchedPolicy::Proportional {
            tickets: vec![("hot".into(), 300), ("cold".into(), 100)],
            work_conserving: true,
        },
        SchedPolicy::CacheAware,
    ]
}

#[test]
fn fault_stress_invariants_hold() {
    let models = [
        ModelSelection::Fixed(ModelKind::Events),
        ModelSelection::Fixed(ModelKind::Threads),
        ModelSelection::Fixed(ModelKind::Processes),
        ModelSelection::Adaptive(vec![
            ModelKind::Events,
            ModelKind::Threads,
            ModelKind::Processes,
        ]),
    ];
    for policy in policies() {
        for model in &models {
            let obs = Obs::new();
            let tm = TransferManager::new(TransferConfig {
                policy: policy.clone(),
                model: model.clone(),
                obs: Some(Arc::clone(&obs)),
                ..TransferConfig::default()
            });
            let mut handles = Vec::new();
            for i in 0..FLOWS_PER_CONFIG {
                let class = if i % 2 == 0 { "hot" } else { "cold" };
                let size = 32 * 1024 + (i % 7) * 8 * 1024;
                // ~10% of chunks fail transiently; 4 attempts with fast,
                // seeded backoff get most flows through, and the ones that
                // exhaust the budget must fail cleanly.
                let meta = FlowMeta::new(tm.next_flow_id(), class, Some(size))
                    .with_retry(RetryPolicy::standard().with_seed(SEED.wrapping_add(i)));
                let src = FlakySource::new(
                    PatternSource::new(size),
                    100,
                    io::ErrorKind::ConnectionReset,
                    SEED ^ i,
                );
                handles.push((
                    size,
                    tm.submit(meta, Box::new(src), Box::new(CountingSink::default())),
                ));
            }
            let mut ok = 0u64;
            let mut failed = 0u64;
            for (size, h) in handles {
                // Invariant 1: every submitter gets an answer.
                match h.wait() {
                    Ok(n) => {
                        assert_eq!(n, size, "short success under {:?}", policy);
                        ok += 1;
                    }
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                        failed += 1;
                    }
                }
            }
            let stats = tm.stats();
            // Invariant 2: the ledger balances.
            let completed: u64 = stats.classes.values().map(|c| c.completed).sum();
            let class_failed: u64 = stats.classes.values().map(|c| c.failed).sum();
            assert_eq!(completed, ok, "completed ledger drifted under {:?}", policy);
            assert_eq!(class_failed, failed);
            assert_eq!(stats.failures, failed);
            assert_eq!(ok + failed, FLOWS_PER_CONFIG);
            // Invariant 3: nothing is stranded.
            assert_eq!(
                obs.snapshot().count("transfer.queue_depth"),
                0,
                "stranded flows under {:?}",
                policy
            );
            // Sanity: a 10%-per-chunk fault rate with a 4-attempt budget
            // should let the majority of flows through.
            assert!(
                ok > FLOWS_PER_CONFIG / 2,
                "only {} of {} ok",
                ok,
                FLOWS_PER_CONFIG
            );
            tm.shutdown();
        }
    }
}
