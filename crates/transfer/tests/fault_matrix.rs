//! The fault matrix: every injected `ErrorKind` × every concurrency model
//! × every scheduling policy must surface as an `Err` to the submitter,
//! abort the sink, and leave no flow stranded (`transfer.queue_depth`
//! returns to zero).

use nest_obs::Obs;
use nest_transfer::fault::{FaultBudget, FaultingSink, FaultingSource, RetryPolicy};
use nest_transfer::flow::{CountingSink, FlowMeta, PatternSource};
use nest_transfer::manager::{ModelSelection, SchedPolicy, TransferConfig, TransferManager};
use nest_transfer::ModelKind;
use std::io;
use std::sync::Arc;

const MODELS: [ModelKind; 3] = [ModelKind::Events, ModelKind::Threads, ModelKind::Processes];

/// Transient and permanent kinds, exercising both classifier branches.
const KINDS: [io::ErrorKind; 5] = [
    io::ErrorKind::ConnectionReset,  // transient
    io::ErrorKind::TimedOut,         // transient
    io::ErrorKind::NotFound,         // permanent
    io::ErrorKind::PermissionDenied, // permanent
    io::ErrorKind::UnexpectedEof,    // permanent
];

fn policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::Fcfs,
        SchedPolicy::Proportional {
            tickets: vec![("a".into(), 300), ("b".into(), 100)],
            work_conserving: true,
        },
        SchedPolicy::CacheAware,
    ]
}

fn manager(policy: SchedPolicy, model: ModelKind, obs: &Arc<Obs>) -> TransferManager {
    TransferManager::new(TransferConfig {
        policy,
        model: ModelSelection::Fixed(model),
        obs: Some(Arc::clone(obs)),
        ..TransferConfig::default()
    })
}

#[test]
fn source_faults_surface_and_nothing_is_stranded() {
    for policy in policies() {
        for model in MODELS {
            let obs = Obs::new();
            let tm = manager(policy.clone(), model, &obs);
            let mut handles = Vec::new();
            for (i, kind) in KINDS.iter().enumerate() {
                let class = if i % 2 == 0 { "a" } else { "b" };
                // No retry budget: the fault must surface verbatim.
                let meta = FlowMeta::new(tm.next_flow_id(), class, Some(256 * 1024))
                    .with_retry(RetryPolicy::none());
                let src = FaultingSource::new(
                    PatternSource::new(256 * 1024),
                    64 * 1024,
                    *kind,
                    FaultBudget::Always,
                );
                handles.push((
                    *kind,
                    tm.submit(meta, Box::new(src), Box::new(CountingSink::default())),
                ));
            }
            // A healthy flow proves the engine keeps serving after faults.
            let ok = tm.submit(
                FlowMeta::new(tm.next_flow_id(), "a", Some(64 * 1024)),
                Box::new(PatternSource::new(64 * 1024)),
                Box::new(CountingSink::default()),
            );
            for (kind, h) in handles {
                let err = h.wait().expect_err(&format!(
                    "{:?} swallowed under {:?}/{}",
                    kind, policy, model
                ));
                assert_eq!(err.kind(), kind, "wrong kind under {:?}/{}", policy, model);
            }
            assert_eq!(ok.wait().unwrap(), 64 * 1024);
            let stats = tm.stats();
            assert_eq!(stats.failures, KINDS.len() as u64);
            let snap = obs.snapshot();
            assert_eq!(
                snap.count("transfer.queue_depth"),
                0,
                "stranded flows under {:?}/{}",
                policy,
                model
            );
            assert_eq!(
                snap.count("transfer.aborted"),
                KINDS.len() as u64,
                "missing sink aborts under {:?}/{}",
                policy,
                model
            );
            assert_eq!(snap.count("transfer.failures"), KINDS.len() as u64);
            assert_eq!(snap.count("transfer.completed"), 1);
            tm.shutdown();
        }
    }
}

#[test]
fn sink_faults_surface_and_abort_cleanup_runs() {
    for model in MODELS {
        let obs = Obs::new();
        let tm = manager(SchedPolicy::Fcfs, model, &obs);
        let meta =
            FlowMeta::new(tm.next_flow_id(), "a", Some(128 * 1024)).with_retry(RetryPolicy::none());
        let sink = FaultingSink::new(
            CountingSink::default(),
            32 * 1024,
            io::ErrorKind::StorageFull,
            FaultBudget::Always,
        );
        let h = tm.submit(
            meta,
            Box::new(PatternSource::new(128 * 1024)),
            Box::new(sink),
        );
        let err = h.wait().expect_err("sink fault swallowed");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull, "model {}", model);
        let snap = obs.snapshot();
        assert_eq!(snap.count("transfer.aborted"), 1, "model {}", model);
        assert_eq!(snap.count("transfer.queue_depth"), 0, "model {}", model);
        tm.shutdown();
    }
}

#[test]
fn transient_faults_recover_across_the_matrix() {
    for policy in policies() {
        for model in MODELS {
            let obs = Obs::new();
            let tm = manager(policy.clone(), model, &obs);
            // Fails twice at byte 0 with a transient kind, then recovers;
            // a 4-attempt budget gets it through.
            let meta = FlowMeta::new(tm.next_flow_id(), "a", Some(100_000))
                .with_retry(RetryPolicy::standard().with_seed(0xfa11));
            let src = FaultingSource::new(
                PatternSource::new(100_000),
                0,
                io::ErrorKind::ConnectionReset,
                FaultBudget::Times(2),
            );
            let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
            assert_eq!(
                h.wait()
                    .unwrap_or_else(|e| panic!("retry failed under {:?}/{}: {}", policy, model, e)),
                100_000
            );
            let stats = tm.stats();
            assert_eq!(stats.retries, 2, "under {:?}/{}", policy, model);
            assert_eq!(stats.failures, 0, "under {:?}/{}", policy, model);
            let snap = obs.snapshot();
            assert_eq!(snap.count("transfer.retries"), 2);
            assert_eq!(snap.count("transfer.queue_depth"), 0);
            tm.shutdown();
        }
    }
}
