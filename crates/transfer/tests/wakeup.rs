//! Regression tests for the wakeup-driven engine loop.
//!
//! The engine must (a) honor sub-quantum retry backoffs instead of rounding
//! them up to a polling interval, (b) block instead of busy-spinning when
//! nothing is runnable, and (c) notice cancellation of flows that are
//! queued but never dispatched (e.g. held behind a 0-ticket class). It must
//! also recycle chunk staging buffers so steady-state admission allocates
//! nothing.

use nest_obs::Obs;
use nest_transfer::fault::{FaultBudget, FaultingSource, RetryPolicy};
use nest_transfer::flow::{CountingSink, FlowMeta, PatternSource};
use nest_transfer::manager::{ModelSelection, SchedPolicy, TransferConfig, TransferManager};
use nest_transfer::ModelKind;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn events_manager(policy: SchedPolicy, obs: &Arc<Obs>) -> TransferManager {
    TransferManager::new(TransferConfig {
        policy,
        model: ModelSelection::Fixed(ModelKind::Events),
        obs: Some(Arc::clone(obs)),
        ..TransferConfig::default()
    })
}

/// A 1 ms retry backoff must complete in single-digit milliseconds, not be
/// quantized up to a 20 ms polling interval (the engine now parks until
/// exactly the next retry-due instant).
#[test]
fn millisecond_backoff_is_honored_not_quantized() {
    let obs = Obs::new();
    let tm = events_manager(SchedPolicy::Fcfs, &obs);
    let retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(1),
        jitter_seed: 0x1157,
    };
    let size = 128 * 1024u64;
    let meta = FlowMeta::new(tm.next_flow_id(), "a", Some(size)).with_retry(retry);
    // Fails once mid-transfer with a transient error, then works.
    let src = FaultingSource::new(
        PatternSource::new(size),
        size / 2,
        io::ErrorKind::ConnectionReset,
        FaultBudget::Times(1),
    );
    let start = Instant::now();
    let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
    assert_eq!(h.wait().unwrap(), size);
    let elapsed = start.elapsed();
    // One retry at ~1 ms backoff plus the transfer itself. The old engine's
    // fixed 20 ms poll made this take >= 20 ms; allow generous slack below
    // that to keep the test robust on slow CI.
    assert!(
        elapsed < Duration::from_millis(15),
        "retry quantized: took {elapsed:?}"
    );
    let snap = obs.snapshot();
    assert_eq!(snap.count("transfer.retries"), 1);
    tm.shutdown();
}

/// A flow held behind a 0-ticket class is queued but never runnable; the
/// engine must park on it, not spin. We bound the loop-iteration count over
/// an observation window: a spinning engine racks up hundreds of thousands
/// of wakeups in 150 ms, a parking engine a few dozen.
#[test]
fn held_class_does_not_busy_spin_engine() {
    let obs = Obs::new();
    let tm = events_manager(
        SchedPolicy::Proportional {
            tickets: vec![("held".into(), 0), ("live".into(), 100)],
            work_conserving: false,
        },
        &obs,
    );
    let meta = FlowMeta::new(tm.next_flow_id(), "held", Some(64 * 1024));
    let h = tm.submit(
        meta,
        Box::new(PatternSource::new(64 * 1024)),
        Box::new(CountingSink::default()),
    );
    std::thread::sleep(Duration::from_millis(150));
    let snap = obs.snapshot();
    let wakeups = snap.count("transfer.engine.wakeups");
    assert!(
        wakeups < 1000,
        "engine busy-spun: {wakeups} wakeups in 150 ms"
    );
    // Parks happened (the engine blocked rather than spun).
    assert!(snap.count("transfer.engine.parks") > 0);
    // The held flow never ran.
    assert!(h.try_wait().is_none());
    // And it is still cancellable (sweep of never-dispatched flows).
    h.cancel();
    assert!(h.wait().is_err());
    tm.shutdown();
}

/// Cancellation of a never-dispatched flow must be noticed within the
/// engine's bounded park, not hang until some unrelated event.
#[test]
fn cancel_of_held_flow_is_noticed_promptly() {
    let obs = Obs::new();
    let tm = events_manager(
        SchedPolicy::Proportional {
            tickets: vec![("held".into(), 0)],
            work_conserving: false,
        },
        &obs,
    );
    let meta = FlowMeta::new(tm.next_flow_id(), "held", Some(1024));
    let h = tm.submit(
        meta,
        Box::new(PatternSource::new(1024)),
        Box::new(CountingSink::default()),
    );
    std::thread::sleep(Duration::from_millis(30));
    let start = Instant::now();
    h.cancel();
    let err = h.wait().expect_err("cancelled flow must fail");
    assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    // Bounded by the engine's in-flight park cap (20 ms) plus slack.
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "cancel latency {:?}",
        start.elapsed()
    );
    let snap = obs.snapshot();
    assert_eq!(snap.count("transfer.queue_depth"), 0);
    tm.shutdown();
}

/// Steady-state admission recycles staging buffers: after the first flow
/// warms the pool, sequential submissions allocate nothing.
#[test]
fn steady_state_reuses_pooled_buffers() {
    let obs = Obs::new();
    let tm = events_manager(SchedPolicy::Fcfs, &obs);
    for _ in 0..10 {
        let meta = FlowMeta::new(tm.next_flow_id(), "a", Some(256 * 1024));
        let h = tm.submit(
            meta,
            Box::new(PatternSource::new(256 * 1024)),
            Box::new(CountingSink::default()),
        );
        assert_eq!(h.wait().unwrap(), 256 * 1024);
        // The engine drops the flow (returning its buffer) right after
        // answering the handle; give it a moment.
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = tm.buffer_pool().stats();
    assert!(
        stats.fresh <= 2,
        "steady state allocated buffers: {stats:?}"
    );
    assert!(stats.reuse >= 8, "pool not reused: {stats:?}");
    assert_eq!(stats.outstanding, 0, "buffer leak: {stats:?}");
    // The same counters are visible through obs for fleet monitoring.
    let snap = obs.snapshot();
    assert!(snap.count("bufpool.reuse") >= 8);
    tm.shutdown();
}

/// The ablation switch still works: with pooling off every flow allocates a
/// detached buffer and the pool stays cold.
#[test]
fn pool_disabled_falls_back_to_detached_buffers() {
    let tm = TransferManager::new(TransferConfig {
        model: ModelSelection::Fixed(ModelKind::Events),
        pool_buffers: false,
        ..TransferConfig::default()
    });
    for _ in 0..3 {
        let meta = FlowMeta::new(tm.next_flow_id(), "a", Some(64 * 1024));
        let h = tm.submit(
            meta,
            Box::new(PatternSource::new(64 * 1024)),
            Box::new(CountingSink::default()),
        );
        assert_eq!(h.wait().unwrap(), 64 * 1024);
    }
    let stats = tm.buffer_pool().stats();
    assert_eq!(stats.reuse, 0);
    tm.shutdown();
}
