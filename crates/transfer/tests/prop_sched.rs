//! Property tests on the schedulers: safety invariants under arbitrary
//! operation sequences, and the stride scheduler's proportional-share
//! guarantee under saturation.

use nest_transfer::fairness::jain_fairness_weighted;
use nest_transfer::flow::{FlowId, FlowMeta};
use nest_transfer::sched::{CacheAwareScheduler, FcfsScheduler, Scheduler, StrideScheduler};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Admit { id: u64, class: u8, cached: bool },
    Quantum { bytes: u64 },
    Done { idx: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, 0u8..4, any::<bool>()).prop_map(|(id, class, cached)| Op::Admit {
                id,
                class,
                cached
            }),
            (1u64..200_000).prop_map(|bytes| Op::Quantum { bytes }),
            (0usize..64).prop_map(|idx| Op::Done { idx }),
        ],
        1..120,
    )
}

/// Runs an op sequence against a scheduler, asserting the safety
/// invariants every step: `next()` only returns admitted, not-yet-done
/// flows, and `runnable()` equals the live-flow count.
fn check_invariants(sched: &mut dyn Scheduler, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut live: Vec<FlowId> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            Op::Admit { id, class, cached } => {
                // Avoid duplicate ids (a caller contract).
                if !seen.insert(id) {
                    continue;
                }
                let mut meta = FlowMeta::new(FlowId(id), format!("class{}", class), Some(1 << 20));
                meta.predicted_cached = cached;
                sched.admit(&meta);
                live.push(FlowId(id));
            }
            Op::Quantum { bytes } => {
                match sched.next() {
                    Some(id) => {
                        prop_assert!(
                            live.contains(&id),
                            "scheduler returned {:?} which is not live",
                            id
                        );
                        sched.account(id, bytes);
                    }
                    None => {
                        // Work-conserving schedulers may only idle when no
                        // flows are runnable.
                        prop_assert!(
                            live.is_empty(),
                            "work-conserving scheduler idled with {} live flows",
                            live.len()
                        );
                    }
                }
            }
            Op::Done { idx } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(idx % live.len());
                sched.done(id);
            }
        }
        prop_assert_eq!(sched.runnable(), live.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fcfs_invariants(ops in arb_ops()) {
        check_invariants(&mut FcfsScheduler::new(), ops)?;
    }

    #[test]
    fn stride_invariants(ops in arb_ops()) {
        let mut s = StrideScheduler::new();
        s.set_tickets("class0", 100);
        s.set_tickets("class1", 200);
        s.set_tickets("class2", 300);
        s.set_tickets("class3", 400);
        check_invariants(&mut s, ops)?;
    }

    #[test]
    fn cache_aware_invariants(ops in arb_ops()) {
        check_invariants(&mut CacheAwareScheduler::new(), ops)?;
    }

    /// Under saturation (every class always has a runnable flow), stride
    /// delivery converges to the ticket ratios for *any* ticket vector.
    #[test]
    fn stride_proportionality_for_any_ticket_vector(
        tickets in prop::collection::vec(1u32..64, 2..5),
    ) {
        let mut s = StrideScheduler::new();
        for (i, t) in tickets.iter().enumerate() {
            let class = format!("c{}", i);
            s.set_tickets(&class, *t * 16);
            s.admit(&FlowMeta::new(FlowId(i as u64), class, Some(u64::MAX)));
        }
        let mut delivered = vec![0u64; tickets.len()];
        // Enough quanta for convergence relative to the ticket magnitudes.
        for _ in 0..20_000 {
            let id = s.next().expect("always runnable");
            s.account(id, 1024);
            delivered[id.0 as usize] += 1024;
        }
        let delivered_f: Vec<f64> = delivered.iter().map(|b| *b as f64).collect();
        let desired: Vec<f64> = tickets.iter().map(|t| *t as f64).collect();
        let fairness = jain_fairness_weighted(&delivered_f, &desired);
        prop_assert!(
            fairness > 0.97,
            "fairness {} for tickets {:?}, delivered {:?}",
            fairness, tickets, delivered
        );
    }

    /// The non-work-conserving scheduler never idles longer than its
    /// budget while work exists.
    #[test]
    fn nwc_idle_budget_is_bounded(budget in 1u32..10) {
        let mut s = StrideScheduler::non_work_conserving(budget);
        s.set_tickets("present", 100);
        s.set_tickets("absent", 1000);
        s.admit(&FlowMeta::new(FlowId(1), "present".to_owned(), Some(1 << 20)));
        let mut consecutive_idles = 0u32;
        let mut max_idles = 0u32;
        for _ in 0..200 {
            match s.next() {
                None => {
                    consecutive_idles += 1;
                    max_idles = max_idles.max(consecutive_idles);
                }
                Some(id) => {
                    consecutive_idles = 0;
                    s.account(id, 1024);
                }
            }
        }
        prop_assert!(
            max_idles <= budget,
            "idled {} consecutive quanta with budget {}",
            max_idles, budget
        );
    }
}
