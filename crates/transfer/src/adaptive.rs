//! Adaptive concurrency-model selection (paper §4.1).
//!
//! "To deliver high performance, NeST dynamically chooses among these
//! architectures; the choice is enabled by distributing requests among the
//! architectures equally at first, monitoring their progress, and then
//! slowly biasing requests toward the most effective choice."
//!
//! The selector keeps an exponentially weighted moving average of each
//! model's observed throughput. During a warmup window assignments rotate
//! round-robin; afterwards the best-scoring model receives most requests,
//! with a periodic exploration slot cycling through the alternatives so the
//! choice can track workload shifts. This periodic re-measurement is the
//! "cost for adaptation" visible in Figure 5: the adaptive line sits
//! between the best and worst pure models.

use crate::concurrency::ModelKind;
use std::collections::HashMap;

/// EWMA smoothing factor for throughput observations.
const ALPHA: f64 = 0.2;

/// The adaptive model selector.
#[derive(Debug)]
pub struct AdaptiveSelector {
    models: Vec<ModelKind>,
    /// EWMA of throughput (bytes/sec) per model; `None` until first report.
    score: HashMap<ModelKind, f64>,
    assignments: u64,
    /// Assignments during which models rotate round-robin.
    warmup: u64,
    /// After warmup, every `explore_period`-th assignment probes a
    /// non-best model (rotating through them).
    explore_period: u64,
    explore_cursor: usize,
}

impl AdaptiveSelector {
    /// Creates a selector over the given models with the paper-style
    /// defaults: a warmup of 4 assignments per model, exploration every
    /// 8th assignment.
    pub fn new(models: Vec<ModelKind>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let warmup = models.len() as u64 * 4;
        Self {
            models,
            score: HashMap::new(),
            assignments: 0,
            warmup,
            explore_period: 8,
            explore_cursor: 0,
        }
    }

    /// Overrides the warmup length (total assignments, not per model).
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the exploration period (0 disables exploration entirely —
    /// pure exploit after warmup).
    pub fn with_explore_period(mut self, period: u64) -> Self {
        self.explore_period = period;
        self
    }

    /// The models under consideration.
    pub fn models(&self) -> &[ModelKind] {
        &self.models
    }

    /// Picks the model for the next request.
    pub fn choose(&mut self) -> ModelKind {
        let n = self.assignments;
        self.assignments += 1;

        if n < self.warmup {
            // Equal distribution at first.
            return self.models[(n % self.models.len() as u64) as usize];
        }
        let best = self.best();
        if self.explore_period > 0 && n.is_multiple_of(self.explore_period) && self.models.len() > 1
        {
            // Periodic exploration: rotate through the non-best models.
            let others: Vec<ModelKind> =
                self.models.iter().copied().filter(|m| *m != best).collect();
            let pick = others[self.explore_cursor % others.len()];
            self.explore_cursor += 1;
            return pick;
        }
        best
    }

    /// Reports an observed completion: `bytes` moved in `seconds`.
    pub fn report(&mut self, model: ModelKind, bytes: u64, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let throughput = bytes as f64 / seconds;
        let entry = self.score.entry(model).or_insert(throughput);
        *entry = ALPHA * throughput + (1.0 - ALPHA) * *entry;
    }

    /// Reports a *failed* transfer: the model is scored as if it had
    /// delivered zero throughput, so its EWMA decays and a broken model
    /// stops attracting traffic.
    ///
    /// Crucially this also *creates* a score for a model that has never
    /// succeeded — without it, an always-failing model would keep its
    /// optimistic `INFINITY` standing in [`AdaptiveSelector::best`] and be
    /// picked forever.
    pub fn report_failure(&mut self, model: ModelKind) {
        let entry = self.score.entry(model).or_insert(0.0);
        *entry *= 1.0 - ALPHA;
    }

    /// The current best model by EWMA throughput (unscored models win ties
    /// optimistically so they get measured at least once).
    pub fn best(&self) -> ModelKind {
        *self
            .models
            .iter()
            .max_by(|a, b| {
                let sa = self.score.get(a).copied().unwrap_or(f64::INFINITY);
                let sb = self.score.get(b).copied().unwrap_or(f64::INFINITY);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("models non-empty")
    }

    /// The current score table (model → EWMA throughput), for diagnostics.
    pub fn scores(&self) -> Vec<(ModelKind, Option<f64>)> {
        self.models
            .iter()
            .map(|m| (*m, self.score.get(m).copied()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models() -> Vec<ModelKind> {
        vec![ModelKind::Threads, ModelKind::Processes, ModelKind::Events]
    }

    #[test]
    fn warmup_distributes_equally() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(12);
        let mut counts: HashMap<ModelKind, u32> = HashMap::new();
        for _ in 0..12 {
            *counts.entry(s.choose()).or_insert(0) += 1;
        }
        assert_eq!(counts[&ModelKind::Threads], 4);
        assert_eq!(counts[&ModelKind::Processes], 4);
        assert_eq!(counts[&ModelKind::Events], 4);
    }

    #[test]
    fn converges_to_fastest_model() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(6);
        // Feed observations: events 3x faster than threads, processes slow.
        for _ in 0..20 {
            s.report(ModelKind::Events, 3_000_000, 1.0);
            s.report(ModelKind::Threads, 1_000_000, 1.0);
            s.report(ModelKind::Processes, 300_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Events);
        let mut counts: HashMap<ModelKind, u32> = HashMap::new();
        for _ in 0..800 {
            let m = s.choose();
            *counts.entry(m).or_insert(0) += 1;
            // Keep observations flowing so exploration does not flip the
            // leader.
            let tput = match m {
                ModelKind::Events => 3_000_000,
                ModelKind::Threads => 1_000_000,
                ModelKind::Processes => 300_000,
            };
            s.report(m, tput, 1.0);
        }
        let events = counts[&ModelKind::Events];
        assert!(
            events > 600,
            "events got only {} of 800 assignments",
            events
        );
        // But exploration means the others are still probed.
        assert!(counts[&ModelKind::Threads] > 0);
        assert!(counts[&ModelKind::Processes] > 0);
    }

    #[test]
    fn adapts_when_workload_shifts() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads])
            .with_warmup(4)
            .with_explore_period(4);
        // Phase 1: events wins.
        for _ in 0..30 {
            s.report(ModelKind::Events, 2_000_000, 1.0);
            s.report(ModelKind::Threads, 500_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Events);
        // Phase 2: workload shifts (large I/O-bound files): threads wins.
        // The periodic exploration keeps measuring threads, so the EWMA
        // crosses over.
        for _ in 0..60 {
            s.report(ModelKind::Events, 500_000, 1.0);
            s.report(ModelKind::Threads, 2_000_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn single_model_always_chosen() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Threads]);
        for _ in 0..20 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }

    #[test]
    fn unmeasured_model_wins_optimistically() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(0);
        s.report(ModelKind::Threads, 100, 1.0);
        // Events and Processes are unmeasured → optimistic infinity → one
        // of them is "best" until measured.
        assert_ne!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn always_failing_model_loses_optimistic_standing() {
        // Regression: a model that had *never* succeeded kept its
        // optimistic INFINITY score (failures were simply not reported)
        // and was picked forever. `report_failure` must create a real
        // (zero) score so the broken model stops attracting traffic.
        let mut s = AdaptiveSelector::new(vec![ModelKind::Threads, ModelKind::Processes])
            .with_warmup(0)
            .with_explore_period(0);
        s.report_failure(ModelKind::Processes);
        s.report(ModelKind::Threads, 1_000_000, 1.0);
        assert_eq!(s.best(), ModelKind::Threads);
        for _ in 0..32 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }

    #[test]
    fn failures_decay_an_established_score() {
        let mut s = AdaptiveSelector::new(all_models());
        s.report(ModelKind::Events, 1_000_000, 1.0);
        let before = s.scores()[2].1.unwrap();
        for _ in 0..10 {
            s.report_failure(ModelKind::Events);
        }
        let after = s
            .scores()
            .iter()
            .find(|(m, _)| *m == ModelKind::Events)
            .unwrap()
            .1
            .unwrap();
        assert!(after < before / 2.0, "score did not decay: {}", after);
    }

    #[test]
    fn zero_duration_reports_ignored() {
        let mut s = AdaptiveSelector::new(all_models());
        s.report(ModelKind::Events, 1000, 0.0);
        assert_eq!(s.scores().iter().filter(|(_, v)| v.is_some()).count(), 0);
    }

    #[test]
    fn exploration_disabled_is_pure_exploit() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads])
            .with_warmup(2)
            .with_explore_period(0);
        s.choose();
        s.choose();
        s.report(ModelKind::Events, 100, 1.0);
        s.report(ModelKind::Threads, 200, 1.0);
        for _ in 0..50 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }
}
