//! Adaptive concurrency-model selection (paper §4.1).
//!
//! "To deliver high performance, NeST dynamically chooses among these
//! architectures; the choice is enabled by distributing requests among the
//! architectures equally at first, monitoring their progress, and then
//! slowly biasing requests toward the most effective choice."
//!
//! The selector keeps an exponentially weighted moving average of each
//! model's observed throughput. During a warmup window assignments rotate
//! round-robin; afterwards the best-scoring model receives most requests,
//! with a periodic exploration slot cycling through the alternatives so the
//! choice can track workload shifts. This periodic re-measurement is the
//! "cost for adaptation" visible in Figure 5: the adaptive line sits
//! between the best and worst pure models.
//!
//! Scores are kept **per scheduling class** and combined by *relative*
//! standing, not raw bytes/sec. Raw averaging has a starvation failure
//! mode once the memory tier exists: RAM-resident flows complete at
//! memcpy speed (GB/s) while disk-bound flows run at device speed (MB/s),
//! so a model that happens to serve more RAM traffic dominates any global
//! average even if it is the *worst* choice for the disk-bound class.
//! Normalizing each class's score by that class's best-model score before
//! averaging makes a model's standing mean "how close to the per-class
//! winner is it, on the classes it has served" — classes with wildly
//! different absolute speeds then carry equal weight.

use crate::concurrency::ModelKind;
use std::collections::HashMap;

/// EWMA smoothing factor for throughput observations.
const ALPHA: f64 = 0.2;

/// The adaptive model selector.
#[derive(Debug)]
pub struct AdaptiveSelector {
    models: Vec<ModelKind>,
    /// EWMA of throughput (bytes/sec) per model, split by scheduling
    /// class; empty until first report. Class-free reports land under "".
    score: HashMap<ModelKind, HashMap<String, f64>>,
    assignments: u64,
    /// Assignments during which models rotate round-robin.
    warmup: u64,
    /// After warmup, every `explore_period`-th assignment probes a
    /// non-best model (rotating through them).
    explore_period: u64,
    explore_cursor: usize,
}

impl AdaptiveSelector {
    /// Creates a selector over the given models with the paper-style
    /// defaults: a warmup of 4 assignments per model, exploration every
    /// 8th assignment.
    pub fn new(models: Vec<ModelKind>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let warmup = models.len() as u64 * 4;
        Self {
            models,
            score: HashMap::new(),
            assignments: 0,
            warmup,
            explore_period: 8,
            explore_cursor: 0,
        }
    }

    /// Overrides the warmup length (total assignments, not per model).
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the exploration period (0 disables exploration entirely —
    /// pure exploit after warmup).
    pub fn with_explore_period(mut self, period: u64) -> Self {
        self.explore_period = period;
        self
    }

    /// The models under consideration.
    pub fn models(&self) -> &[ModelKind] {
        &self.models
    }

    /// Picks the model for the next request.
    pub fn choose(&mut self) -> ModelKind {
        let n = self.assignments;
        self.assignments += 1;

        if n < self.warmup {
            // Equal distribution at first.
            return self.models[(n % self.models.len() as u64) as usize];
        }
        let best = self.best();
        if self.explore_period > 0 && n.is_multiple_of(self.explore_period) && self.models.len() > 1
        {
            // Periodic exploration: rotate through the non-best models.
            let others: Vec<ModelKind> =
                self.models.iter().copied().filter(|m| *m != best).collect();
            let pick = others[self.explore_cursor % others.len()];
            self.explore_cursor += 1;
            return pick;
        }
        best
    }

    /// Reports an observed completion: `bytes` moved in `seconds`
    /// (class-free; lands in the "" class).
    pub fn report(&mut self, model: ModelKind, bytes: u64, seconds: f64) {
        self.report_classed(model, "", bytes, seconds);
    }

    /// Reports an observed completion under its scheduling class, so
    /// memcpy-fast classes (tier-resident reads) and device-bound classes
    /// are scored separately.
    pub fn report_classed(&mut self, model: ModelKind, class: &str, bytes: u64, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let throughput = bytes as f64 / seconds;
        let entry = self
            .score
            .entry(model)
            .or_default()
            .entry(class.to_string())
            .or_insert(throughput);
        *entry = ALPHA * throughput + (1.0 - ALPHA) * *entry;
    }

    /// Reports a *failed* transfer: the model is scored as if it had
    /// delivered zero throughput, so its EWMA decays and a broken model
    /// stops attracting traffic.
    ///
    /// Crucially this also *creates* a score for a model that has never
    /// succeeded — without it, an always-failing model would keep its
    /// optimistic `INFINITY` standing in [`AdaptiveSelector::best`] and be
    /// picked forever.
    pub fn report_failure(&mut self, model: ModelKind) {
        self.report_failure_classed(model, "");
    }

    /// Class-attributed variant of [`AdaptiveSelector::report_failure`].
    pub fn report_failure_classed(&mut self, model: ModelKind, class: &str) {
        let entry = self
            .score
            .entry(model)
            .or_default()
            .entry(class.to_string())
            .or_insert(0.0);
        *entry *= 1.0 - ALPHA;
    }

    /// A model's standing: the mean, over the classes it has served, of
    /// its EWMA relative to that class's best model. Unmeasured models are
    /// optimistic (`INFINITY`) so they get measured at least once.
    fn relative_standing(&self, model: ModelKind, class_max: &HashMap<&str, f64>) -> f64 {
        match self.score.get(&model) {
            None => f64::INFINITY,
            Some(per_class) if per_class.is_empty() => f64::INFINITY,
            Some(per_class) => {
                let sum: f64 = per_class
                    .iter()
                    .map(|(class, ewma)| {
                        let max = class_max.get(class.as_str()).copied().unwrap_or(0.0);
                        if max > 0.0 {
                            ewma / max
                        } else {
                            0.0
                        }
                    })
                    .sum();
                sum / per_class.len() as f64
            }
        }
    }

    /// The current best model by mean per-class relative standing
    /// (unscored models win ties optimistically so they get measured at
    /// least once).
    pub fn best(&self) -> ModelKind {
        let mut class_max: HashMap<&str, f64> = HashMap::new();
        for per_class in self.score.values() {
            for (class, ewma) in per_class {
                let slot = class_max.entry(class.as_str()).or_insert(0.0);
                if *ewma > *slot {
                    *slot = *ewma;
                }
            }
        }
        *self
            .models
            .iter()
            .max_by(|a, b| {
                let sa = self.relative_standing(**a, &class_max);
                let sb = self.relative_standing(**b, &class_max);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("models non-empty")
    }

    /// The current score table (model → mean EWMA throughput across its
    /// measured classes), for diagnostics.
    pub fn scores(&self) -> Vec<(ModelKind, Option<f64>)> {
        self.models
            .iter()
            .map(|m| {
                let mean = self
                    .score
                    .get(m)
                    .filter(|per_class| !per_class.is_empty())
                    .map(|per_class| per_class.values().sum::<f64>() / per_class.len() as f64);
                (*m, mean)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models() -> Vec<ModelKind> {
        vec![ModelKind::Threads, ModelKind::Processes, ModelKind::Events]
    }

    #[test]
    fn warmup_distributes_equally() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(12);
        let mut counts: HashMap<ModelKind, u32> = HashMap::new();
        for _ in 0..12 {
            *counts.entry(s.choose()).or_insert(0) += 1;
        }
        assert_eq!(counts[&ModelKind::Threads], 4);
        assert_eq!(counts[&ModelKind::Processes], 4);
        assert_eq!(counts[&ModelKind::Events], 4);
    }

    #[test]
    fn converges_to_fastest_model() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(6);
        // Feed observations: events 3x faster than threads, processes slow.
        for _ in 0..20 {
            s.report(ModelKind::Events, 3_000_000, 1.0);
            s.report(ModelKind::Threads, 1_000_000, 1.0);
            s.report(ModelKind::Processes, 300_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Events);
        let mut counts: HashMap<ModelKind, u32> = HashMap::new();
        for _ in 0..800 {
            let m = s.choose();
            *counts.entry(m).or_insert(0) += 1;
            // Keep observations flowing so exploration does not flip the
            // leader.
            let tput = match m {
                ModelKind::Events => 3_000_000,
                ModelKind::Threads => 1_000_000,
                ModelKind::Processes => 300_000,
            };
            s.report(m, tput, 1.0);
        }
        let events = counts[&ModelKind::Events];
        assert!(
            events > 600,
            "events got only {} of 800 assignments",
            events
        );
        // But exploration means the others are still probed.
        assert!(counts[&ModelKind::Threads] > 0);
        assert!(counts[&ModelKind::Processes] > 0);
    }

    #[test]
    fn adapts_when_workload_shifts() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads])
            .with_warmup(4)
            .with_explore_period(4);
        // Phase 1: events wins.
        for _ in 0..30 {
            s.report(ModelKind::Events, 2_000_000, 1.0);
            s.report(ModelKind::Threads, 500_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Events);
        // Phase 2: workload shifts (large I/O-bound files): threads wins.
        // The periodic exploration keeps measuring threads, so the EWMA
        // crosses over.
        for _ in 0..60 {
            s.report(ModelKind::Events, 500_000, 1.0);
            s.report(ModelKind::Threads, 2_000_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn single_model_always_chosen() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Threads]);
        for _ in 0..20 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }

    #[test]
    fn unmeasured_model_wins_optimistically() {
        let mut s = AdaptiveSelector::new(all_models()).with_warmup(0);
        s.report(ModelKind::Threads, 100, 1.0);
        // Events and Processes are unmeasured → optimistic infinity → one
        // of them is "best" until measured.
        assert_ne!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn always_failing_model_loses_optimistic_standing() {
        // Regression: a model that had *never* succeeded kept its
        // optimistic INFINITY score (failures were simply not reported)
        // and was picked forever. `report_failure` must create a real
        // (zero) score so the broken model stops attracting traffic.
        let mut s = AdaptiveSelector::new(vec![ModelKind::Threads, ModelKind::Processes])
            .with_warmup(0)
            .with_explore_period(0);
        s.report_failure(ModelKind::Processes);
        s.report(ModelKind::Threads, 1_000_000, 1.0);
        assert_eq!(s.best(), ModelKind::Threads);
        for _ in 0..32 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }

    #[test]
    fn failures_decay_an_established_score() {
        let mut s = AdaptiveSelector::new(all_models());
        s.report(ModelKind::Events, 1_000_000, 1.0);
        let before = s.scores()[2].1.unwrap();
        for _ in 0..10 {
            s.report_failure(ModelKind::Events);
        }
        let after = s
            .scores()
            .iter()
            .find(|(m, _)| *m == ModelKind::Events)
            .unwrap()
            .1
            .unwrap();
        assert!(after < before / 2.0, "score did not decay: {}", after);
    }

    #[test]
    fn ram_fast_class_does_not_drown_disk_bound_class() {
        // Events serves tier-resident reads slightly faster; Threads is
        // 3x better on the disk-bound class. A raw global average would
        // crown Events (the RAM numbers dominate); per-class relative
        // standing must pick Threads (near-winner on RAM, winner on disk).
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads]);
        for _ in 0..20 {
            s.report_classed(ModelKind::Events, "ram", 10_000_000_000, 1.0);
            s.report_classed(ModelKind::Threads, "ram", 9_000_000_000, 1.0);
            s.report_classed(ModelKind::Events, "disk", 100_000_000, 1.0);
            s.report_classed(ModelKind::Threads, "disk", 300_000_000, 1.0);
        }
        assert_eq!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn classed_failures_decay_only_that_class() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads]);
        s.report_classed(ModelKind::Events, "ram", 1_000_000, 1.0);
        s.report_classed(ModelKind::Events, "disk", 1_000_000, 1.0);
        s.report_classed(ModelKind::Threads, "ram", 900_000, 1.0);
        s.report_classed(ModelKind::Threads, "disk", 900_000, 1.0);
        assert_eq!(s.best(), ModelKind::Events);
        for _ in 0..20 {
            s.report_failure_classed(ModelKind::Events, "disk");
        }
        // Events still wins "ram" but has collapsed on "disk":
        // Events mean = (1.0 + ~0)/2; Threads mean = (0.9 + 1.0)/2.
        assert_eq!(s.best(), ModelKind::Threads);
    }

    #[test]
    fn zero_duration_reports_ignored() {
        let mut s = AdaptiveSelector::new(all_models());
        s.report(ModelKind::Events, 1000, 0.0);
        assert_eq!(s.scores().iter().filter(|(_, v)| v.is_some()).count(), 0);
    }

    #[test]
    fn exploration_disabled_is_pure_exploit() {
        let mut s = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads])
            .with_warmup(2)
            .with_explore_period(0);
        s.choose();
        s.choose();
        s.report(ModelKind::Events, 100, 1.0);
        s.report(ModelKind::Threads, 200, 1.0);
        for _ in 0..50 {
            assert_eq!(s.choose(), ModelKind::Threads);
        }
    }
}
