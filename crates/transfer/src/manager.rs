//! The transfer manager façade (paper §2.1, §4).
//!
//! "All file data transfer operations are managed asynchronously by the
//! transfer manager after they have been synchronously approved by the
//! storage manager."
//!
//! The manager owns an engine thread. Event-model flows are interleaved on
//! that thread, chunk by chunk, under the configured scheduling policy;
//! thread- and process-model flows are dispatched out and their completions
//! fed back. A single [`crate::adaptive::AdaptiveSelector`] (when enabled)
//! assigns each incoming transfer to a model and learns from completions.

use crate::adaptive::AdaptiveSelector;
use crate::bufpool::BufPool;
use crate::concurrency::{
    launch_thread, Completion, EmulatedProcessLauncher, ModelKind, SharedProcessLauncher,
};
use crate::fault::{cancelled_error, classify, deadline_error, ErrorClass, FailureKind};
use crate::flow::{DataSink, DataSource, Flow, FlowId, FlowMeta, StepOutcome};
use crate::sched::{CacheAwareScheduler, FcfsScheduler, Scheduler, StrideScheduler};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use nest_obs::{Counter, EwmaMeter, Gauge, Histogram, Obs};
use parking_lot::ShardedMutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which scheduling policy the event engine applies (paper §4.2).
#[derive(Debug, Clone)]
pub enum SchedPolicy {
    /// First-come, first-served (the default).
    Fcfs,
    /// Proportional share between protocol classes via stride scheduling.
    Proportional {
        /// `(class, tickets)` pairs; ratios are bandwidth ratios.
        tickets: Vec<(String, u32)>,
        /// Work-conserving (2002 behavior) or idle-waiting (the paper's
        /// in-progress extension).
        work_conserving: bool,
    },
    /// Cache-aware: predicted-resident files first.
    CacheAware,
}

/// How transfers are assigned to concurrency models.
#[derive(Debug, Clone)]
pub enum ModelSelection {
    /// Every transfer uses one fixed model.
    Fixed(ModelKind),
    /// The adaptive selector distributes and then biases (paper §4.1).
    Adaptive(Vec<ModelKind>),
}

/// Transfer manager configuration.
pub struct TransferConfig {
    /// Scheduling policy for the event engine.
    pub policy: SchedPolicy,
    /// Concurrency-model selection.
    pub model: ModelSelection,
    /// Chunk size for event-model interleaving.
    pub chunk_size: usize,
    /// Launcher for the process model.
    pub process_launcher: SharedProcessLauncher,
    /// Observability registry; `None` leaves the engine uninstrumented
    /// (zero overhead on the data path).
    pub obs: Option<Arc<Obs>>,
    /// Recycle chunk staging buffers through a [`BufPool`] (steady-state
    /// admission allocates nothing). `false` allocates per flow — the
    /// pre-pool behavior, kept for ablation.
    pub pool_buffers: bool,
    /// Arm the zero-copy (`sendfile`) fast path on admitted flows. Only
    /// flows whose endpoints both grant the capability actually take it;
    /// `false` forces every flow through the pooled-buffer loop — the
    /// pre-zero-copy behavior, kept for ablation (the two paths produce
    /// byte-identical wire output).
    pub zerocopy: bool,
    /// Stripe count for the delivered-stats cells (`1` = the single-mutex
    /// ablation). Completion accounting picks a cell by flow id, so a
    /// stats snapshot walking the cells never stalls the engine's finish
    /// path on one hot mutex.
    pub shards: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            policy: SchedPolicy::Fcfs,
            model: ModelSelection::Adaptive(vec![
                ModelKind::Threads,
                ModelKind::Processes,
                ModelKind::Events,
            ]),
            chunk_size: 64 * 1024,
            process_launcher: Arc::new(EmulatedProcessLauncher::default()),
            obs: None,
            pool_buffers: true,
            zerocopy: true,
            shards: 8,
        }
    }
}

/// Instrument handles owned by the engine thread (paper §5: "what is this
/// appliance doing, and how fast is it doing it?").
///
/// Metric names:
/// - `transfer.bytes_total`, `transfer.completed`, `transfer.failures`,
///   `transfer.model.switches` — counters
/// - `transfer.retries`, `transfer.aborted`, `transfer.deadline_exceeded`,
///   `transfer.cancelled` — failure-domain counters (retry attempts,
///   sink-abort cleanups, deadline expiries, cancellations)
/// - `transfer.bandwidth_bps` — EWMA meter of delivered bytes/sec
/// - `transfer.queue_depth` — gauge of in-flight flows (event + retry-wait
///   + external)
/// - `transfer.sched.pass_us`, `transfer.latency_us` — histograms
/// - `transfer.engine.wakeups` / `transfer.engine.parks` — engine-loop
///   iterations and blocking parks; a blocked engine should show few
///   wakeups (the no-busy-spin regression guard)
/// - `transfer.engine.cpu_ns` — thread-CPU nanoseconds spent inside
///   scheduling passes; `bytes_total / cpu_ns` is the appliance-side
///   efficiency the zero-copy path improves (DESIGN.md §14)
/// - `transfer.zerocopy.sendfile_flows` / `transfer.zerocopy.fallbacks` —
///   flows that moved bytes via `sendfile`, and flows that attempted the
///   zero-copy path but were demoted to the pooled loop (capability
///   withdrawn mid-flow or fd pair unsupported)
/// - `transfer.class.<class>.bytes` / `.bandwidth_bps` — per-class pairs,
///   created lazily on first completion for the class
struct EngineMetrics {
    obs: Arc<Obs>,
    bytes_total: Arc<Counter>,
    completed: Arc<Counter>,
    failures: Arc<Counter>,
    retries: Arc<Counter>,
    aborted: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    cancelled: Arc<Counter>,
    model_switches: Arc<Counter>,
    bandwidth: Arc<EwmaMeter>,
    queue_depth: Arc<Gauge>,
    sched_pass_us: Arc<Histogram>,
    latency_us: Arc<Histogram>,
    engine_wakeups: Arc<Counter>,
    engine_parks: Arc<Counter>,
    engine_cpu_ns: Arc<Counter>,
    zc_sendfile_flows: Arc<Counter>,
    zc_fallbacks: Arc<Counter>,
    /// Per-class instrument cache; avoids registry lookups per completion.
    class_instruments: HashMap<String, (Arc<Counter>, Arc<EwmaMeter>)>,
}

impl EngineMetrics {
    fn new(obs: Arc<Obs>) -> Self {
        let m = &obs.metrics;
        Self {
            bytes_total: m.counter("transfer.bytes_total"),
            completed: m.counter("transfer.completed"),
            failures: m.counter("transfer.failures"),
            retries: m.counter("transfer.retries"),
            aborted: m.counter("transfer.aborted"),
            deadline_exceeded: m.counter("transfer.deadline_exceeded"),
            cancelled: m.counter("transfer.cancelled"),
            model_switches: m.counter("transfer.model.switches"),
            bandwidth: m.meter("transfer.bandwidth_bps"),
            queue_depth: m.gauge("transfer.queue_depth"),
            sched_pass_us: m.histogram("transfer.sched.pass_us"),
            latency_us: m.histogram("transfer.latency_us"),
            engine_wakeups: m.counter("transfer.engine.wakeups"),
            engine_parks: m.counter("transfer.engine.parks"),
            engine_cpu_ns: m.counter("transfer.engine.cpu_ns"),
            zc_sendfile_flows: m.counter("transfer.zerocopy.sendfile_flows"),
            zc_fallbacks: m.counter("transfer.zerocopy.fallbacks"),
            class_instruments: HashMap::new(),
            obs,
        }
    }

    fn class(&mut self, class: &str) -> &(Arc<Counter>, Arc<EwmaMeter>) {
        if !self.class_instruments.contains_key(class) {
            let bytes = self
                .obs
                .metrics
                .counter(&format!("transfer.class.{}.bytes", class));
            let bw = self
                .obs
                .metrics
                .meter(&format!("transfer.class.{}.bandwidth_bps", class));
            self.class_instruments.insert(class.to_owned(), (bytes, bw));
        }
        &self.class_instruments[class]
    }
}

/// Per-class delivered statistics.
///
/// Failures are counted separately from completions: `bytes`,
/// `completed`, and `total_latency` describe *successful* transfers only,
/// so bandwidth and latency derived from them stay honest under faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Bytes delivered for this class (successful transfers only).
    pub bytes: u64,
    /// Successfully completed transfers.
    pub completed: u64,
    /// Transfers that ended in error (after any retries).
    pub failed: u64,
    /// Sum of successful-transfer latencies in seconds.
    pub total_latency: f64,
}

/// A snapshot of manager statistics.
#[derive(Debug, Clone, Default)]
pub struct TransferStats {
    /// Per-protocol-class stats.
    pub classes: HashMap<String, ClassStats>,
    /// Finished transfers (successes *and* failures) per concurrency
    /// model — the assignment mix the adaptive selector produced.
    pub per_model: HashMap<ModelKind, u64>,
    /// Transfers that ended in error.
    pub failures: u64,
    /// Transient-failure retry attempts across all flows.
    pub retries: u64,
    /// Flows that failed because their deadline elapsed.
    pub deadline_exceeded: u64,
    /// Flows cancelled by their submitter.
    pub cancelled: u64,
}

impl TransferStats {
    /// Total bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.classes.values().map(|c| c.bytes).sum()
    }

    /// Mean latency (seconds) across all completed transfers.
    pub fn mean_latency(&self) -> f64 {
        let (lat, n) = self.classes.values().fold((0.0, 0u64), |(l, n), c| {
            (l + c.total_latency, n + c.completed)
        });
        if n == 0 {
            0.0
        } else {
            lat / n as f64
        }
    }
}

/// Handle for awaiting one submitted transfer.
pub struct TransferHandle {
    rx: Receiver<io::Result<u64>>,
    cancel: Arc<AtomicBool>,
}

impl TransferHandle {
    /// Blocks until the transfer completes; returns bytes moved.
    pub fn wait(self) -> io::Result<u64> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "transfer manager shut down",
            )),
        }
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<io::Result<u64>> {
        self.rx.try_recv().ok()
    }

    /// Requests cooperative cancellation. The engine (or the external
    /// executor) notices at the next chunk boundary, aborts the sink
    /// (cleaning up partial output), and completes the flow with an
    /// `Interrupted` error — so a subsequent [`TransferHandle::wait`]
    /// returns promptly.
    pub fn cancel(&self) {
        // nestlint: allow(atomic-ordering): cancel latch polled at chunk boundaries; completion is published by the flow mutex
        self.cancel.store(true, Ordering::Relaxed);
    }
}

enum EngineMsg {
    Submit {
        flow: Box<Flow>,
        respond: Sender<io::Result<u64>>,
    },
    /// An external-model (thread/process) flow finished. Routed through
    /// the same channel as submissions so the engine has exactly one wait
    /// point — `recv_timeout` on this channel — and any completion wakes
    /// a parked engine immediately.
    Completed {
        completion: Box<Completion>,
        respond: Sender<io::Result<u64>>,
    },
    Shutdown,
}

/// The transfer manager.
pub struct TransferManager {
    tx: Sender<EngineMsg>,
    stats: Arc<ShardedMutex<TransferStats>>,
    next_id: AtomicU64,
    pool: BufPool,
    zerocopy: bool,
    engine: Option<std::thread::JoinHandle<()>>,
}

/// Idle chunk buffers the manager's pool keeps parked: enough for a burst
/// of concurrent flows without unbounded memory retention.
const POOL_MAX_IDLE: usize = 64;

/// Ready dispatches the event engine drains per wakeup before returning
/// to its single channel wait point. Large enough to amortize the loop's
/// per-wakeup overhead across flows, small enough that new submissions
/// and cancellations are picked up within a bounded number of chunks.
const EVENT_BATCH: usize = 32;

impl TransferManager {
    /// Starts a transfer manager with the given configuration.
    pub fn new(config: TransferConfig) -> Self {
        let pool = if config.pool_buffers {
            BufPool::new(config.chunk_size, POOL_MAX_IDLE)
        } else {
            BufPool::disabled(config.chunk_size)
        };
        if let Some(obs) = &config.obs {
            pool.register_obs(obs);
        }
        let (tx, rx) = unbounded();
        let stats = Arc::new(ShardedMutex::new(
            "transfer.stats",
            200,
            config.shards.max(1),
            |_| TransferStats::default(),
        ));
        let engine_stats = Arc::clone(&stats);
        let engine_tx = tx.clone();
        let zerocopy = config.zerocopy;
        let engine = std::thread::Builder::new()
            .name("nest-transfer-engine".into())
            .spawn(move || Engine::new(config, rx, engine_tx, engine_stats).run())
            .expect("spawn transfer engine");
        Self {
            tx,
            stats,
            next_id: AtomicU64::new(1),
            pool,
            zerocopy,
            engine: Some(engine),
        }
    }

    /// Allocates a fresh flow id.
    pub fn next_flow_id(&self) -> FlowId {
        // nestlint: allow(atomic-ordering): monotonic id tick; atomicity alone is the contract
        FlowId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Submits a transfer; returns a handle to await it.
    pub fn submit(
        &self,
        meta: FlowMeta,
        source: Box<dyn DataSource>,
        sink: Box<dyn DataSink>,
    ) -> TransferHandle {
        let (respond, rx) = bounded(1);
        let cancel = Arc::clone(&meta.cancel);
        // The staging buffer comes from the pool: steady-state admission
        // recycles a returned buffer instead of allocating.
        let mut flow = Flow::with_buffer(meta, source, sink, self.pool.checkout());
        flow.set_zerocopy(self.zerocopy);
        let flow = Box::new(flow);
        // A send failure means the engine is gone; the handle will surface
        // a BrokenPipe when waited on.
        let _ = self.tx.send(EngineMsg::Submit { flow, respond });
        TransferHandle { rx, cancel }
    }

    /// The chunk buffer pool flows stage through (counters for tests and
    /// ablations).
    pub fn buffer_pool(&self) -> &BufPool {
        &self.pool
    }

    /// Snapshot of delivered statistics, merged across the stats cells
    /// (cells are read one at a time; exact once completions quiesce).
    pub fn stats(&self) -> TransferStats {
        let mut out = TransferStats::default();
        self.stats.for_each_cell(|_, cell| {
            for (name, c) in &cell.classes {
                let agg = out.classes.entry(name.clone()).or_default();
                agg.bytes += c.bytes;
                agg.completed += c.completed;
                agg.failed += c.failed;
                agg.total_latency += c.total_latency;
            }
            for (model, n) in &cell.per_model {
                *out.per_model.entry(*model).or_insert(0) += n;
            }
            out.failures += cell.failures;
            out.retries += cell.retries;
            out.deadline_exceeded += cell.deadline_exceeded;
            out.cancelled += cell.cancelled;
        });
        out
    }

    /// Stops the engine after in-flight transfers finish.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(EngineMsg::Shutdown);
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

impl Drop for TransferManager {
    fn drop(&mut self) {
        let _ = self.tx.send(EngineMsg::Shutdown);
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

struct EventFlow {
    flow: Flow,
    start: Instant,
    respond: Sender<io::Result<u64>>,
    /// Transient-failure retries consumed so far.
    retries: u32,
    /// Absolute deadline (from `FlowMeta::deadline`), fixed at admission.
    deadline: Option<Instant>,
}

impl EventFlow {
    fn new(flow: Flow, respond: Sender<io::Result<u64>>) -> Self {
        let start = Instant::now();
        let deadline = flow.meta.deadline.map(|d| start + d);
        Self {
            flow,
            start,
            respond,
            retries: 0,
            deadline,
        }
    }
}

struct Engine {
    rx: Receiver<EngineMsg>,
    /// Clone of the manager's sender: external executors route their
    /// completions back through it (see [`EngineMsg::Completed`]), and
    /// holding it keeps the channel connected for the engine's lifetime.
    self_tx: Sender<EngineMsg>,
    scheduler: Box<dyn Scheduler>,
    selector: Option<AdaptiveSelector>,
    fixed_model: Option<ModelKind>,
    launcher: SharedProcessLauncher,
    event_flows: HashMap<FlowId, EventFlow>,
    /// Event-model flows waiting out a retry backoff; re-admitted to the
    /// scheduler when their instant arrives. Still counted as in-flight.
    retry_queue: Vec<(Instant, EventFlow)>,
    stats: Arc<ShardedMutex<TransferStats>>,
    outstanding_external: usize,
    shutting_down: bool,
    metrics: Option<EngineMetrics>,
    /// Model chosen for the previous submission; a change is an
    /// adaptive-switch event worth counting.
    last_model: Option<ModelKind>,
}

impl Engine {
    fn new(
        config: TransferConfig,
        rx: Receiver<EngineMsg>,
        self_tx: Sender<EngineMsg>,
        stats: Arc<ShardedMutex<TransferStats>>,
    ) -> Self {
        let scheduler: Box<dyn Scheduler> = match &config.policy {
            SchedPolicy::Fcfs => Box::new(FcfsScheduler::new()),
            SchedPolicy::Proportional {
                tickets,
                work_conserving,
            } => {
                let mut s = if *work_conserving {
                    StrideScheduler::new()
                } else {
                    StrideScheduler::non_work_conserving(8)
                };
                for (class, t) in tickets {
                    s.set_tickets(class, *t);
                }
                Box::new(s)
            }
            SchedPolicy::CacheAware => Box::new(CacheAwareScheduler::new()),
        };
        let (selector, fixed_model) = match &config.model {
            ModelSelection::Fixed(m) => (None, Some(*m)),
            ModelSelection::Adaptive(models) => (Some(AdaptiveSelector::new(models.clone())), None),
        };
        Self {
            rx,
            self_tx,
            scheduler,
            selector,
            fixed_model,
            launcher: config.process_launcher,
            event_flows: HashMap::new(),
            retry_queue: Vec::new(),
            stats,
            outstanding_external: 0,
            shutting_down: false,
            metrics: config.obs.map(EngineMetrics::new),
            last_model: None,
        }
    }

    /// In-flight flows across the event engine, the retry wait-room, and
    /// external models.
    fn note_queue_depth(&self) {
        if let Some(m) = &self.metrics {
            m.queue_depth.set(
                (self.event_flows.len() + self.retry_queue.len() + self.outstanding_external)
                    as i64,
            );
        }
    }

    /// Moves retry-queue entries whose backoff has elapsed back into the
    /// scheduler; fails entries whose deadline passed or that were
    /// cancelled while waiting.
    fn requeue_due_retries(&mut self) {
        if self.retry_queue.is_empty() {
            return;
        }
        let now = Instant::now();
        let due: Vec<EventFlow> = {
            let mut due = Vec::new();
            let mut i = 0;
            while i < self.retry_queue.len() {
                if self.retry_queue[i].0 <= now {
                    due.push(self.retry_queue.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            due
        };
        for ef in due {
            if ef.flow.meta.is_cancelled() {
                self.fail_event_flow(ef, cancelled_error(), FailureKind::Cancelled);
            } else if ef.deadline.is_some_and(|d| now >= d) {
                self.fail_event_flow(ef, deadline_error(), FailureKind::DeadlineExceeded);
            } else {
                self.scheduler.admit(&ef.flow.meta);
                self.event_flows.insert(ef.flow.meta.id, ef);
            }
        }
    }

    /// The engine loop: wakeup-driven, not quantum-polled.
    ///
    /// The old loop slept a fixed 20 ms when idle (quantizing every retry
    /// backoff up to 20 ms) and spun hot through `try_recv` +
    /// `yield_now` when the non-work-conserving scheduler declined to
    /// dispatch (100% CPU while deliberately idling). Now there is exactly
    /// one wait point: `recv_timeout` on the message channel, with the
    /// timeout computed from the next *known* event — the earliest retry
    /// due-instant or flow deadline — bounded by an escalating backoff
    /// while the scheduler keeps declining. Any message (submission,
    /// external completion, shutdown) wakes the engine immediately;
    /// between wakeups it consumes no CPU.
    fn run(mut self) {
        // Consecutive scheduling passes that produced no dispatch; drives
        // the escalating park while the scheduler deliberately idles.
        let mut declines: u32 = 0;
        loop {
            if let Some(m) = &self.metrics {
                m.engine_wakeups.inc();
            }
            // Drain pending messages without blocking.
            let mut got_msg = false;
            while let Ok(msg) = self.rx.try_recv() {
                got_msg = true;
                self.handle(msg);
            }
            // Wake flows whose retry backoff has elapsed.
            self.requeue_due_retries();
            if self.shutting_down
                && self.event_flows.is_empty()
                && self.retry_queue.is_empty()
                && self.outstanding_external == 0
            {
                return;
            }
            if got_msg {
                // New work may have changed the scheduling picture.
                declines = 0;
            }
            let dispatched = if self.event_flows.is_empty() {
                false
            } else if self.metrics.is_some() {
                let t = Instant::now();
                let c = crate::zerocopy::thread_cpu_ns();
                let d = self.step_events();
                if let Some(m) = &self.metrics {
                    m.sched_pass_us.record(t.elapsed());
                    m.engine_cpu_ns
                        .add(crate::zerocopy::thread_cpu_ns().saturating_sub(c));
                }
                d
            } else {
                self.step_events()
            };
            if dispatched {
                declines = 0;
                continue; // work-conserving hot path: no park
            }
            // Nothing dispatchable right now — the engine is idle, every
            // event flow is in a retry backoff, or the non-work-conserving
            // scheduler is deliberately idling. Block until a message
            // arrives or the next known event is due.
            declines = declines.saturating_add(1);
            let park = self.park_duration(declines);
            if let Some(m) = &self.metrics {
                m.engine_parks.inc();
            }
            match self.rx.recv_timeout(park) {
                Ok(msg) => {
                    declines = 0;
                    self.handle(msg);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while `self_tx` is held, but harmless.
                    self.shutting_down = true;
                }
            }
            // Flows the scheduler is holding never reach the per-chunk
            // cancel/deadline checks in `step_events`; sweep them on each
            // park wakeup so cancellation and deadlines are honored within
            // one bounded park even for never-dispatched flows.
            self.sweep_blocked_flows();
        }
    }

    /// How long to block when no dispatch is possible: the time to the
    /// next known event (earliest retry due-instant or flow deadline),
    /// bounded by an escalating 1→16 ms backoff against scheduler
    /// declines, and capped so cancellations (which arrive by flag, not
    /// message) are noticed promptly while flows exist.
    fn park_duration(&self, declines: u32) -> Duration {
        /// Longest park while any flow is in flight (cancel-notice bound).
        const MAX_PARK: Duration = Duration::from_millis(20);
        /// Longest park when the engine is completely idle (any message
        /// wakes it immediately; the timeout is only a safety backstop).
        const IDLE_PARK: Duration = Duration::from_millis(200);
        /// Floor preventing a zero-timeout spin when an event is due now.
        const MIN_PARK: Duration = Duration::from_micros(100);
        let busy = !self.event_flows.is_empty()
            || !self.retry_queue.is_empty()
            || self.outstanding_external > 0;
        let cap = if busy { MAX_PARK } else { IDLE_PARK };
        let backoff = Duration::from_millis(1u64 << declines.saturating_sub(1).min(5));
        let mut park = backoff.min(cap);
        if let Some(next) = self.next_wakeup() {
            park = park.min(next.saturating_duration_since(Instant::now()));
        }
        park.max(MIN_PARK)
    }

    /// The earliest instant at which time-driven work becomes due: a retry
    /// backoff expiring or a deadline elapsing (for scheduled flows *and*
    /// flows waiting in the retry queue).
    fn next_wakeup(&self) -> Option<Instant> {
        let retry_due = self.retry_queue.iter().map(|(t, _)| *t).min();
        let waiting_deadline = self
            .retry_queue
            .iter()
            .filter_map(|(_, ef)| ef.deadline)
            .min();
        let flow_deadline = self.event_flows.values().filter_map(|ef| ef.deadline).min();
        [retry_due, waiting_deadline, flow_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    /// Fails scheduled-but-undispatched flows whose cancellation flag is
    /// set or whose deadline has passed. `step_events` performs the same
    /// checks per chunk for flows that actually run; this covers flows the
    /// scheduler is holding (0-ticket classes, NWC idling).
    fn sweep_blocked_flows(&mut self) {
        if self.event_flows.is_empty() {
            return;
        }
        let now = Instant::now();
        let doomed: Vec<FlowId> = self
            .event_flows
            .iter()
            .filter(|(_, ef)| ef.flow.meta.is_cancelled() || ef.deadline.is_some_and(|d| now >= d))
            .map(|(id, _)| *id)
            .collect();
        for id in doomed {
            self.scheduler.done(id);
            let ef = self.event_flows.remove(&id).expect("flow present");
            if ef.flow.meta.is_cancelled() {
                self.fail_event_flow(ef, cancelled_error(), FailureKind::Cancelled);
            } else {
                self.fail_event_flow(ef, deadline_error(), FailureKind::DeadlineExceeded);
            }
        }
    }

    fn handle(&mut self, msg: EngineMsg) {
        match msg {
            EngineMsg::Shutdown => self.shutting_down = true,
            EngineMsg::Completed {
                completion,
                respond,
            } => {
                self.outstanding_external -= 1;
                self.finish(*completion, respond);
            }
            EngineMsg::Submit { flow, respond } => {
                let flow = *flow;
                let model = match (&mut self.selector, self.fixed_model) {
                    (_, Some(m)) => m,
                    (Some(sel), None) => sel.choose(),
                    (None, None) => ModelKind::Events,
                };
                if let Some(m) = &self.metrics {
                    if self.last_model.is_some_and(|prev| prev != model) {
                        m.model_switches.inc();
                    }
                }
                self.last_model = Some(model);
                match model {
                    ModelKind::Events => {
                        // The flow arrives carrying its pooled staging
                        // buffer, already at the manager's chunk size: no
                        // rebuffering, no allocation on admission.
                        self.scheduler.admit(&flow.meta);
                        self.event_flows
                            .insert(flow.meta.id, EventFlow::new(flow, respond));
                    }
                    ModelKind::Threads => {
                        let tx = self.self_tx.clone();
                        self.outstanding_external += 1;
                        launch_thread(
                            flow,
                            Box::new(move |c| {
                                let _ = tx.send(EngineMsg::Completed {
                                    completion: Box::new(c),
                                    respond,
                                });
                            }),
                        );
                    }
                    ModelKind::Processes => {
                        let tx = self.self_tx.clone();
                        self.outstanding_external += 1;
                        self.launcher.launch(
                            flow,
                            Box::new(move |c| {
                                let _ = tx.send(EngineMsg::Completed {
                                    completion: Box::new(c),
                                    respond,
                                });
                            }),
                        );
                    }
                }
                self.note_queue_depth();
            }
        }
    }

    /// Fails an event-model flow: aborts the sink (partial-output
    /// cleanup), builds the failure completion, and reports it. The flow
    /// must already be detached from the scheduler and `event_flows`.
    fn fail_event_flow(&mut self, mut ef: EventFlow, error: io::Error, kind: FailureKind) {
        ef.flow.abort();
        let completion = Completion {
            bytes: ef.flow.moved(),
            meta: ef.flow.meta.clone(),
            elapsed: ef.start.elapsed(),
            model: ModelKind::Events,
            result: Err(error),
            retries: ef.retries,
            aborted: true,
            failure: Some(kind),
            zc_engaged: ef.flow.zc_engaged(),
            zc_fell_back: ef.flow.zc_fell_back(),
        };
        self.finish(completion, ef.respond);
    }

    /// One scheduling pass: drains up to [`EVENT_BATCH`] ready
    /// dispatches before returning to the message-channel wait point.
    /// Batching amortizes the engine loop's per-wakeup overhead (channel
    /// `try_recv`, retry-queue scan, park bookkeeping) over many chunks
    /// instead of paying it once per chunk per flow; the per-dispatch
    /// cancel/deadline checks and scheduler accounting in
    /// [`Engine::step_one`] are unchanged, so fairness and
    /// responsiveness bounds still hold at chunk granularity. Returns
    /// whether any dispatch happened — `false` means the scheduler
    /// declined (non-work-conserving idling, a held class, or no
    /// runnable flows) and the caller should park rather than spin.
    fn step_events(&mut self) -> bool {
        let mut dispatched = false;
        for _ in 0..EVENT_BATCH {
            if !self.step_one() {
                break;
            }
            dispatched = true;
        }
        dispatched
    }

    /// Asks the scheduler for a flow and advances it by one chunk (or one
    /// zero-copy span). Returns whether a dispatch happened.
    fn step_one(&mut self) -> bool {
        let Some(id) = self.scheduler.next() else {
            return false;
        };
        let Some(ef) = self.event_flows.get_mut(&id) else {
            self.scheduler.done(id);
            return true;
        };
        // Cooperative cancellation and deadlines are honored at chunk
        // boundaries, before spending more I/O on a doomed flow.
        if ef.flow.meta.is_cancelled() {
            self.scheduler.done(id);
            let ef = self.event_flows.remove(&id).unwrap();
            self.fail_event_flow(ef, cancelled_error(), FailureKind::Cancelled);
            return true;
        }
        if ef.deadline.is_some_and(|d| Instant::now() >= d) {
            self.scheduler.done(id);
            let ef = self.event_flows.remove(&id).unwrap();
            self.fail_event_flow(ef, deadline_error(), FailureKind::DeadlineExceeded);
            return true;
        }
        match ef.flow.step() {
            Ok(StepOutcome::Moved(n)) => {
                self.scheduler.account(id, n as u64);
            }
            Ok(StepOutcome::Finished) => {
                self.scheduler.done(id);
                let ef = self.event_flows.remove(&id).unwrap();
                let completion = Completion {
                    bytes: ef.flow.moved(),
                    meta: ef.flow.meta.clone(),
                    elapsed: ef.start.elapsed(),
                    model: ModelKind::Events,
                    result: Ok(()),
                    retries: ef.retries,
                    aborted: false,
                    failure: None,
                    zc_engaged: ef.flow.zc_engaged(),
                    zc_fell_back: ef.flow.zc_fell_back(),
                };
                self.finish(completion, ef.respond);
            }
            Err(e) => {
                self.scheduler.done(id);
                let mut ef = self.event_flows.remove(&id).unwrap();
                // Plan a retry if the failure is transient, the budget
                // allows it, the backoff fits inside the deadline, and both
                // endpoints can be replayed. The engine thread never
                // sleeps: the flow waits in the retry queue instead.
                let policy = ef.flow.meta.retry.clone();
                let backoff = policy.backoff(ef.retries + 1);
                let within_deadline = ef.deadline.is_none_or(|d| Instant::now() + backoff < d);
                if classify(e.kind()) == ErrorClass::Transient
                    && policy.allows_retry(ef.retries)
                    && within_deadline
                    && ef.flow.reset_for_retry().is_ok()
                {
                    ef.retries += 1;
                    self.retry_queue.push((Instant::now() + backoff, ef));
                    self.note_queue_depth();
                    return true;
                }
                self.fail_event_flow(ef, e, FailureKind::Io);
            }
        }
        true
    }

    fn finish(&mut self, completion: Completion, respond: Sender<io::Result<u64>>) {
        let seconds = completion.elapsed.as_secs_f64();
        let ok = completion.result.is_ok();
        if let Some(sel) = &mut self.selector {
            // Attribute the observation to the flow's scheduling class so
            // memcpy-fast tier-resident classes cannot drown out the
            // device-bound ones in the selector's standing.
            if ok {
                sel.report_classed(
                    completion.model,
                    &completion.meta.class,
                    completion.bytes,
                    seconds.max(1e-9),
                );
            } else {
                // A failed completion decays the model's score so a broken
                // model stops attracting traffic (bugfix: previously only
                // successes were reported, so an always-failing model kept
                // its optimistic standing forever).
                sel.report_failure_classed(completion.model, &completion.meta.class);
            }
        }
        {
            // Cell by flow id: completions spread across the stripes, so a
            // concurrent stats() walk never stalls this finish path.
            let mut stats = self.stats.lock(completion.meta.id.0);
            let class = stats
                .classes
                .entry(completion.meta.class.clone())
                .or_default();
            if ok {
                // Delivered-work accounting covers successes only so
                // bandwidth/latency stay honest under faults (bugfix:
                // failures used to inflate both).
                class.bytes += completion.bytes;
                class.completed += 1;
                class.total_latency += seconds;
            } else {
                class.failed += 1;
            }
            *stats.per_model.entry(completion.model).or_insert(0) += 1;
            stats.retries += u64::from(completion.retries);
            if !ok {
                stats.failures += 1;
                match completion.failure {
                    Some(FailureKind::DeadlineExceeded) => stats.deadline_exceeded += 1,
                    Some(FailureKind::Cancelled) => stats.cancelled += 1,
                    _ => {}
                }
            }
        }
        if let Some(m) = &mut self.metrics {
            m.retries.add(u64::from(completion.retries));
            if completion.zc_engaged {
                m.zc_sendfile_flows.inc();
            }
            if completion.zc_fell_back {
                m.zc_fallbacks.inc();
            }
            if ok {
                m.bytes_total.add(completion.bytes);
                m.bandwidth.mark(completion.bytes);
                m.latency_us.record(completion.elapsed);
                m.completed.inc();
                let (class_bytes, class_bw) = m.class(&completion.meta.class);
                class_bytes.add(completion.bytes);
                class_bw.mark(completion.bytes);
            } else {
                m.failures.inc();
                if completion.aborted {
                    m.aborted.inc();
                }
                match completion.failure {
                    Some(FailureKind::DeadlineExceeded) => m.deadline_exceeded.inc(),
                    Some(FailureKind::Cancelled) => m.cancelled.inc(),
                    _ => {}
                }
            }
        }
        self.note_queue_depth();
        let bytes = completion.bytes;
        let _ = respond.send(completion.result.map(|_| bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{CountingSink, PatternSource};

    fn config_fixed(model: ModelKind) -> TransferConfig {
        TransferConfig {
            policy: SchedPolicy::Fcfs,
            model: ModelSelection::Fixed(model),
            ..TransferConfig::default()
        }
    }

    fn submit_n(tm: &TransferManager, n: usize, class: &str, size: u64) -> Vec<TransferHandle> {
        (0..n)
            .map(|_| {
                let meta = FlowMeta::new(tm.next_flow_id(), class, Some(size));
                tm.submit(
                    meta,
                    Box::new(PatternSource::new(size)),
                    Box::new(CountingSink::default()),
                )
            })
            .collect()
    }

    #[test]
    fn single_transfer_each_model() {
        for model in [ModelKind::Events, ModelKind::Threads, ModelKind::Processes] {
            let tm = TransferManager::new(config_fixed(model));
            let handles = submit_n(&tm, 1, "chirp", 100_000);
            for h in handles {
                assert_eq!(h.wait().unwrap(), 100_000);
            }
            let stats = tm.stats();
            assert_eq!(stats.per_model.get(&model), Some(&1));
            assert_eq!(stats.classes["chirp"].bytes, 100_000);
            tm.shutdown();
        }
    }

    #[test]
    fn instrumented_engine_reports_bytes_and_per_class_bandwidth() {
        let obs = Obs::new();
        let tm = TransferManager::new(TransferConfig {
            model: ModelSelection::Fixed(ModelKind::Events),
            obs: Some(Arc::clone(&obs)),
            ..TransferConfig::default()
        });
        let mut handles = submit_n(&tm, 3, "http", 100_000);
        handles.extend(submit_n(&tm, 1, "chirp", 50_000));
        for h in handles {
            h.wait().unwrap();
        }
        let snap = obs.snapshot();
        assert_eq!(snap.count("transfer.bytes_total"), 350_000);
        assert_eq!(snap.count("transfer.completed"), 4);
        assert_eq!(snap.count("transfer.failures"), 0);
        assert_eq!(snap.count("transfer.class.http.bytes"), 300_000);
        assert_eq!(snap.count("transfer.class.chirp.bytes"), 50_000);
        // Recent completions drive the EWMA meters above zero.
        assert!(snap.value("transfer.bandwidth_bps") > 0.0);
        assert!(snap.value("transfer.class.http.bandwidth_bps") > 0.0);
        assert!(snap.latency_count("transfer.latency_us") == 4);
        // All flows drained: the queue-depth gauge has returned to zero.
        assert_eq!(snap.count("transfer.queue_depth"), 0);
        tm.shutdown();
        // Pass instruments are recorded after each drained batch, so the
        // last record can land just after the completion wakeup — join
        // the engine (above) before asserting on them.
        let snap = obs.snapshot();
        assert!(snap.latency_count("transfer.sched.pass_us") >= 1);
        assert!(snap.count("transfer.engine.cpu_ns") > 0);
    }

    #[test]
    fn model_switches_are_counted_in_adaptive_mode() {
        let obs = Obs::new();
        let tm = TransferManager::new(TransferConfig {
            model: ModelSelection::Adaptive(vec![ModelKind::Events, ModelKind::Threads]),
            obs: Some(Arc::clone(&obs)),
            ..TransferConfig::default()
        });
        // The adaptive warmup round-robins across models, so consecutive
        // submissions are guaranteed to alternate at least once.
        for h in submit_n(&tm, 6, "ftp", 32 * 1024) {
            h.wait().unwrap();
        }
        assert!(obs.snapshot().count("transfer.model.switches") >= 1);
        tm.shutdown();
    }

    #[test]
    fn concurrent_event_transfers_interleave_and_finish() {
        let tm = TransferManager::new(config_fixed(ModelKind::Events));
        let handles = submit_n(&tm, 8, "http", 256 * 1024);
        for h in handles {
            assert_eq!(h.wait().unwrap(), 256 * 1024);
        }
        assert_eq!(tm.stats().classes["http"].completed, 8);
        tm.shutdown();
    }

    #[test]
    fn adaptive_mode_distributes_then_completes() {
        let tm = TransferManager::new(TransferConfig {
            policy: SchedPolicy::Fcfs,
            model: ModelSelection::Adaptive(vec![ModelKind::Events, ModelKind::Threads]),
            ..TransferConfig::default()
        });
        let handles = submit_n(&tm, 12, "ftp", 64 * 1024);
        for h in handles {
            assert_eq!(h.wait().unwrap(), 64 * 1024);
        }
        let stats = tm.stats();
        let total: u64 = stats.per_model.values().sum();
        assert_eq!(total, 12);
        // Warmup guarantees both models saw work.
        assert!(
            stats
                .per_model
                .get(&ModelKind::Events)
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert!(
            stats
                .per_model
                .get(&ModelKind::Threads)
                .copied()
                .unwrap_or(0)
                > 0
        );
        tm.shutdown();
    }

    #[test]
    fn proportional_policy_shares_bandwidth() {
        let tm = TransferManager::new(TransferConfig {
            policy: SchedPolicy::Proportional {
                tickets: vec![("a".into(), 300), ("b".into(), 100)],
                work_conserving: true,
            },
            model: ModelSelection::Fixed(ModelKind::Events),
            ..TransferConfig::default()
        });
        // Long-running flows of both classes; completions tell us both ran.
        let mut handles = submit_n(&tm, 2, "a", 2 * 1024 * 1024);
        handles.extend(submit_n(&tm, 2, "b", 2 * 1024 * 1024));
        for h in handles {
            h.wait().unwrap();
        }
        let stats = tm.stats();
        assert_eq!(stats.classes["a"].bytes, 4 * 1024 * 1024);
        assert_eq!(stats.classes["b"].bytes, 4 * 1024 * 1024);
        tm.shutdown();
    }

    #[test]
    fn failing_transfer_reports_error() {
        struct Failing;
        impl DataSource for Failing {
            fn read_chunk(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "reset"))
            }
        }
        let tm = TransferManager::new(config_fixed(ModelKind::Events));
        let meta = FlowMeta::new(tm.next_flow_id(), "chirp", None);
        let h = tm.submit(meta, Box::new(Failing), Box::new(Vec::new()));
        assert!(h.wait().is_err());
        assert_eq!(tm.stats().failures, 1);
        tm.shutdown();
    }

    #[test]
    fn stats_latency_accumulates() {
        let tm = TransferManager::new(config_fixed(ModelKind::Threads));
        for h in submit_n(&tm, 3, "nfs", 10_000) {
            h.wait().unwrap();
        }
        let stats = tm.stats();
        assert_eq!(stats.classes["nfs"].completed, 3);
        assert!(stats.mean_latency() > 0.0);
        assert_eq!(stats.total_bytes(), 30_000);
        tm.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let tm = TransferManager::new(config_fixed(ModelKind::Events));
        let h = {
            let handles = submit_n(&tm, 1, "x", 1000);
            handles.into_iter().next().unwrap()
        };
        assert_eq!(h.wait().unwrap(), 1000);
        drop(tm); // must not hang
    }

    // -- failure domain ----------------------------------------------------

    use crate::concurrency::ProcessLauncher;
    use crate::fault::{FaultBudget, FaultingSource, RetryPolicy};

    /// An endless source that trickles bytes slowly (for cancel/deadline
    /// tests: the flow can never finish on its own).
    struct Trickle;
    impl DataSource for Trickle {
        fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_millis(1));
            let n = buf.len().min(1024);
            buf[..n].fill(7);
            Ok(n)
        }
    }

    #[test]
    fn failed_transfer_not_counted_as_completed() {
        // Regression: failures incremented `completed` and their partial
        // bytes inflated class bandwidth.
        let tm = TransferManager::new(config_fixed(ModelKind::Events));
        let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(200_000));
        let src = FaultingSource::new(
            PatternSource::new(200_000),
            4096,
            io::ErrorKind::NotFound, // permanent: no retry
            FaultBudget::Always,
        );
        let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
        assert!(h.wait().is_err());
        let stats = tm.stats();
        let class = &stats.classes["chirp"];
        assert_eq!(class.completed, 0, "failure counted as completion");
        assert_eq!(class.bytes, 0, "failed bytes inflated class bytes");
        assert_eq!(class.failed, 1);
        assert_eq!(stats.failures, 1);
        // The failure still shows up in the assignment mix.
        assert_eq!(stats.per_model.get(&ModelKind::Events), Some(&1));
        tm.shutdown();
    }

    #[test]
    fn transient_fault_retried_to_success_on_each_model() {
        for model in [ModelKind::Events, ModelKind::Threads, ModelKind::Processes] {
            let tm = TransferManager::new(config_fixed(model));
            let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(100_000))
                .with_retry(RetryPolicy::standard().with_seed(9));
            let src = FaultingSource::new(
                PatternSource::new(100_000),
                0,
                io::ErrorKind::ConnectionReset,
                FaultBudget::Times(2),
            );
            let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
            assert_eq!(h.wait().unwrap(), 100_000, "model {}", model);
            let stats = tm.stats();
            assert_eq!(stats.retries, 2, "model {}", model);
            assert_eq!(stats.failures, 0, "model {}", model);
            assert_eq!(stats.classes["chirp"].completed, 1, "model {}", model);
            tm.shutdown();
        }
    }

    #[test]
    fn retries_exhausted_is_terminal_failure() {
        let tm = TransferManager::new(config_fixed(ModelKind::Events));
        let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(100_000))
            .with_retry(RetryPolicy::standard().with_seed(3).with_max_attempts(2));
        let src = FaultingSource::new(
            PatternSource::new(100_000),
            0,
            io::ErrorKind::ConnectionReset,
            FaultBudget::Always,
        );
        let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
        let err = h.wait().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let stats = tm.stats();
        assert_eq!(stats.retries, 1); // 2 attempts = 1 retry
        assert_eq!(stats.failures, 1);
        tm.shutdown();
    }

    #[test]
    fn cancel_interrupts_flow_on_each_model() {
        for model in [ModelKind::Events, ModelKind::Threads, ModelKind::Processes] {
            let tm = TransferManager::new(config_fixed(model));
            let meta = FlowMeta::new(tm.next_flow_id(), "chirp", None);
            let h = tm.submit(meta, Box::new(Trickle), Box::new(CountingSink::default()));
            std::thread::sleep(Duration::from_millis(10));
            h.cancel();
            let err = h.wait().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted, "model {}", model);
            let stats = tm.stats();
            assert_eq!(stats.cancelled, 1, "model {}", model);
            assert_eq!(stats.failures, 1, "model {}", model);
            tm.shutdown();
        }
    }

    #[test]
    fn deadline_expires_slow_flow() {
        for model in [ModelKind::Events, ModelKind::Threads] {
            let tm = TransferManager::new(config_fixed(model));
            let meta = FlowMeta::new(tm.next_flow_id(), "chirp", None)
                .with_deadline(Duration::from_millis(30));
            let h = tm.submit(meta, Box::new(Trickle), Box::new(CountingSink::default()));
            let err = h.wait().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::TimedOut, "model {}", model);
            let stats = tm.stats();
            assert_eq!(stats.deadline_exceeded, 1, "model {}", model);
            tm.shutdown();
        }
    }

    #[test]
    fn terminal_failure_aborts_sink_and_drains_queue() {
        let obs = Obs::new();
        let tm = TransferManager::new(TransferConfig {
            model: ModelSelection::Fixed(ModelKind::Events),
            obs: Some(Arc::clone(&obs)),
            ..TransferConfig::default()
        });
        let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(100_000));
        let src = FaultingSource::new(
            PatternSource::new(100_000),
            0,
            io::ErrorKind::PermissionDenied,
            FaultBudget::Always,
        );
        let h = tm.submit(meta, Box::new(src), Box::new(CountingSink::default()));
        assert!(h.wait().is_err());
        let snap = obs.snapshot();
        assert_eq!(snap.count("transfer.failures"), 1);
        assert_eq!(snap.count("transfer.aborted"), 1);
        assert_eq!(snap.count("transfer.completed"), 0);
        assert_eq!(snap.count("transfer.bytes_total"), 0);
        assert_eq!(snap.count("transfer.queue_depth"), 0);
        tm.shutdown();
    }

    /// A process launcher whose every dispatch fails immediately — the
    /// "permanently-failing external model" from the adaptive-selection
    /// regression.
    struct FailingLauncher;
    impl ProcessLauncher for FailingLauncher {
        fn launch(&self, mut flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>) {
            flow.abort();
            on_done(Completion {
                meta: flow.meta.clone(),
                bytes: 0,
                elapsed: Duration::from_millis(1),
                model: ModelKind::Processes,
                result: Err(io::Error::new(io::ErrorKind::NotFound, "worker pool dead")),
                retries: 0,
                aborted: true,
                failure: Some(FailureKind::Io),
                zc_engaged: false,
                zc_fell_back: false,
            });
        }
    }

    #[test]
    fn failing_process_model_stops_attracting_traffic() {
        // Regression: only successes were reported to the selector, so a
        // model that always failed kept its optimistic INFINITY standing
        // and was chosen forever.
        let tm = TransferManager::new(TransferConfig {
            model: ModelSelection::Adaptive(vec![ModelKind::Threads, ModelKind::Processes]),
            process_launcher: Arc::new(FailingLauncher),
            ..TransferConfig::default()
        });
        for _ in 0..64 {
            let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(32 * 1024));
            let h = tm.submit(
                meta,
                Box::new(PatternSource::new(32 * 1024)),
                Box::new(CountingSink::default()),
            );
            // Sequential waits: the selector sees each outcome before the
            // next pick, so the convergence bound is deterministic.
            let _ = h.wait();
        }
        let stats = tm.stats();
        let procs = stats
            .per_model
            .get(&ModelKind::Processes)
            .copied()
            .unwrap_or(0);
        assert!(
            procs <= 32,
            "broken process model still received {} of 64 assignments",
            procs
        );
        assert_eq!(stats.failures, procs);
        tm.shutdown();
    }
}
