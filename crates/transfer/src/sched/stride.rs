//! Proportional-share stride scheduling with byte-based strides
//! (paper §4.2, after Waldspurger & Weihl's stride scheduler).
//!
//! Bandwidth is allocated between *protocol classes*: "it is used to allow
//! the administrator to specify proportional preferences per protocol class
//! (e.g., NFS requests should be given twice as much bandwidth as GridFTP
//! requests)."
//!
//! **Byte-based strides.** A classic stride scheduler advances a client's
//! pass by one stride per quantum, which would count an 8 KB NFS block read
//! the same as a 10 MB HTTP GET. NeST instead advances the pass in
//! proportion to the *bytes* actually moved, so "to give equal bandwidth to
//! NFS requests and HTTP requests, the transfer manager schedules NFS
//! requests N times more frequently, where N is the ratio between the
//! average file size and the NFS block size." This falls out automatically:
//! a class that moves fewer bytes per pick accumulates pass more slowly and
//! is picked more often.
//!
//! **Work conservation.** The 2002 implementation is work-conserving: when
//! the lowest-pass class has no runnable flow, a competitor runs instead
//! (this is why the 1:1:1:4 NFS-heavy ratio in Figure 4 only reaches Jain
//! fairness ≈ 0.87 — there are simply not enough outstanding NFS requests).
//! The paper says a non-work-conserving policy was being implemented; this
//! module provides it behind [`StrideScheduler::non_work_conserving`]: the
//! server idles up to a configurable number of quanta waiting for the
//! favored class before scheduling a competitor.

use super::Scheduler;
use crate::flow::{FlowId, FlowMeta};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The stride constant: strides are `STRIDE1 / tickets`.
pub const STRIDE1: u64 = 1 << 20;

/// Default tickets for classes the administrator has not configured.
const DEFAULT_TICKETS: u32 = 100;

/// Bounded credit (in 1 KiB byte-units) a class keeps when waking from
/// idle: enough to win one 64 KiB scheduler chunk immediately.
const WAKE_CREDIT_UNITS: u128 = 64;

#[derive(Debug)]
struct ClassState {
    tickets: u32,
    stride: u64,
    /// Pass value; u128 because it accumulates stride × bytes.
    pass: u128,
    /// Round-robin queue of runnable flows in this class.
    flows: VecDeque<FlowId>,
}

impl ClassState {
    fn new(tickets: u32) -> Self {
        Self {
            tickets,
            // A held class (0 tickets) keeps a nominal stride; it is never
            // dispatched, so the value is only used again after the
            // administrator restores a positive allocation.
            stride: STRIDE1 / tickets.max(1) as u64,
            pass: 0,
            flows: VecDeque::new(),
        }
    }
}

/// The stride scheduler.
///
/// ```
/// use nest_transfer::sched::{Scheduler, StrideScheduler};
/// use nest_transfer::flow::{FlowId, FlowMeta};
///
/// let mut sched = StrideScheduler::new();
/// sched.set_tickets("nfs", 200);   // NFS gets 2x GridFTP's bandwidth
/// sched.set_tickets("gridftp", 100);
/// sched.admit(&FlowMeta::new(FlowId(1), "nfs", Some(1 << 20)));
/// sched.admit(&FlowMeta::new(FlowId(2), "gridftp", Some(1 << 20)));
///
/// let mut nfs_bytes = 0u64;
/// for _ in 0..3000 {
///     let id = sched.next().unwrap();
///     sched.account(id, 1024);
///     if id == FlowId(1) { nfs_bytes += 1024; }
/// }
/// // NFS received ~2/3 of the bytes.
/// let share = nfs_bytes as f64 / (3000.0 * 1024.0);
/// assert!((share - 2.0 / 3.0).abs() < 0.02);
/// ```
#[derive(Debug)]
pub struct StrideScheduler {
    classes: BTreeMap<String, ClassState>,
    class_of: HashMap<FlowId, String>,
    /// Global virtual time: the pass of the most recently scheduled class;
    /// newly active classes start here so they cannot hoard credit.
    global_pass: u128,
    /// `None` = work-conserving. `Some(k)` = idle up to `k` consecutive
    /// quanta waiting for the favored class before scheduling a competitor.
    idle_quanta: Option<u32>,
    idled: u32,
}

impl Default for StrideScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideScheduler {
    /// Creates a work-conserving stride scheduler.
    pub fn new() -> Self {
        Self {
            classes: BTreeMap::new(),
            class_of: HashMap::new(),
            global_pass: 0,
            idle_quanta: None,
            idled: 0,
        }
    }

    /// Creates the non-work-conserving variant: the server idles up to
    /// `max_idle_quanta` consecutive quanta for the favored class before
    /// scheduling a competitor (paper §7.2's "currently implementing").
    pub fn non_work_conserving(max_idle_quanta: u32) -> Self {
        let mut s = Self::new();
        s.idle_quanta = Some(max_idle_quanta);
        s
    }

    /// Sets a protocol class's ticket allocation. Ratios between classes'
    /// tickets are the desired bandwidth ratios. **Zero tickets holds the
    /// class**: its flows stay queued but are never dispatched (and a
    /// non-work-conserving scheduler does not idle on its behalf) until a
    /// positive allocation is restored — the administrative "pause this
    /// protocol" knob.
    ///
    /// Safe to call while the class has runnable flows: the queue is
    /// preserved (an earlier version rebuilt the whole `ClassState`,
    /// silently discarding admitted flows — they were never scheduled
    /// again and their submitters hung forever). Only the stride is
    /// recomputed; the pass *ahead of global virtual time* is rescaled to
    /// the new stride so an in-flight class neither hoards credit nor owes
    /// a debt after a ticket change.
    pub fn set_tickets(&mut self, class: &str, tickets: u32) {
        // Flow conservation across a ticket change (the regression class
        // this method once had: rebuilding ClassState silently discarded
        // admitted flows, hanging their submitters forever).
        let queued_before = if nest_check::enforcing() {
            self.classes.values().map(|c| c.flows.len()).sum::<usize>()
        } else {
            0
        };
        let global = self.global_pass;
        let entry = self
            .classes
            .entry(class.to_owned())
            .or_insert_with(|| ClassState::new(tickets));
        let old_stride = entry.stride.max(1);
        entry.tickets = tickets;
        entry.stride = STRIDE1 / tickets.max(1) as u64;
        // Rescale accumulated credit relative to global virtual time so the
        // remaining "debt" means the same number of *bytes* under the new
        // stride (classic stride-scheduler ticket-change transformation).
        let ahead = entry.pass.saturating_sub(global);
        entry.pass = global + ahead / old_stride as u128 * entry.stride as u128;
        nest_check::invariant!(
            entry.pass >= global,
            "stride rescale moved class {:?} behind global virtual time ({} < {})",
            class,
            entry.pass,
            global
        );
        if nest_check::enforcing() {
            let queued_after = self.classes.values().map(|c| c.flows.len()).sum::<usize>();
            nest_check::invariant!(
                queued_after == queued_before,
                "set_tickets({:?}, {}) changed queued flow count: {} -> {}",
                class,
                tickets,
                queued_before,
                queued_after
            );
            nest_check::invariant!(
                queued_after == self.class_of.len(),
                "queued flows ({}) diverged from flow->class map ({})",
                queued_after,
                self.class_of.len()
            );
        }
    }

    /// The tickets configured for a class (or the default).
    pub fn tickets(&self, class: &str) -> u32 {
        self.classes
            .get(class)
            .map_or(DEFAULT_TICKETS, |c| c.tickets)
    }

    fn class_entry(&mut self, class: &str) -> &mut ClassState {
        self.classes
            .entry(class.to_owned())
            .or_insert_with(|| ClassState::new(DEFAULT_TICKETS))
    }

    /// The favored class: minimum pass among classes holding tickets,
    /// regardless of runnability (used for the idle decision). Held
    /// classes (0 tickets) are invisible here — the scheduler never idles
    /// waiting for a class the administrator has paused.
    fn favored_class(&self) -> Option<&str> {
        self.classes
            .iter()
            .filter(|(_, c)| c.tickets > 0)
            .min_by_key(|(name, c)| (c.pass, *name))
            .map(|(name, _)| name.as_str())
    }

    /// The minimum-pass class *with runnable flows* (held classes
    /// excluded: their flows wait without being dispatched).
    fn favored_runnable(&self) -> Option<&str> {
        self.classes
            .iter()
            .filter(|(_, c)| c.tickets > 0 && !c.flows.is_empty())
            .min_by_key(|(name, c)| (c.pass, *name))
            .map(|(name, _)| name.as_str())
    }
}

impl Scheduler for StrideScheduler {
    fn admit(&mut self, meta: &FlowMeta) {
        let global = self.global_pass;
        let entry = self.class_entry(&meta.class);
        if entry.flows.is_empty() {
            // A class waking from idle resumes near the global virtual
            // time so it cannot claim bandwidth for the period it was
            // absent — but it keeps a small bounded credit (one chunk's
            // worth) so intermittent block protocols like NFS are not
            // penalized for their think time between requests.
            let credit = entry.stride as u128 * WAKE_CREDIT_UNITS;
            entry.pass = entry.pass.max(global.saturating_sub(credit));
        }
        entry.flows.push_back(meta.id);
        self.class_of.insert(meta.id, meta.class.clone());
    }

    fn next(&mut self) -> Option<FlowId> {
        let runnable = self.favored_runnable()?.to_owned();
        if let Some(max_idle) = self.idle_quanta {
            // Non-work-conserving: if the overall favored class has no
            // runnable flow, idle (up to the limit) instead of letting a
            // competitor run.
            if let Some(favored) = self.favored_class().map(str::to_owned) {
                if favored != runnable
                    && self.classes[&favored].flows.is_empty()
                    && self.idled < max_idle
                {
                    self.idled += 1;
                    return None;
                }
            }
            self.idled = 0;
        }
        let entry = self.classes.get_mut(&runnable).expect("class exists");
        // Round-robin within the class: rotate the picked flow to the back.
        let id = entry.flows.pop_front()?;
        entry.flows.push_back(id);
        self.global_pass = entry.pass;
        Some(id)
    }

    fn account(&mut self, id: FlowId, bytes: u64) {
        let Some(class) = self.class_of.get(&id) else {
            return;
        };
        if let Some(entry) = self.classes.get_mut(class) {
            // Byte-based stride: pass advances with the bytes moved, in
            // 1 KiB units so small block transfers still register.
            let units = bytes.div_ceil(1024);
            entry.pass += entry.stride as u128 * units as u128;
        }
    }

    fn done(&mut self, id: FlowId) {
        if let Some(class) = self.class_of.remove(&id) {
            if let Some(entry) = self.classes.get_mut(&class) {
                entry.flows.retain(|f| *f != id);
            }
        }
    }

    fn runnable(&self) -> usize {
        self.classes.values().map(|c| c.flows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{drive, meta};
    use super::*;
    use crate::fairness::jain_fairness_weighted;

    fn delivered_by_class(
        sched: &mut StrideScheduler,
        flows: &[(u64, &str)],
        quanta: usize,
        bytes: u64,
    ) -> HashMap<String, u64> {
        for (id, class) in flows {
            sched.admit(&meta(*id, class));
        }
        let per_flow = drive(sched, quanta, bytes);
        let mut per_class: HashMap<String, u64> = HashMap::new();
        for (id, class) in flows {
            if let Some(b) = per_flow.get(&FlowId(*id)) {
                *per_class.entry((*class).to_owned()).or_insert(0) += b;
            }
        }
        per_class
    }

    #[test]
    fn equal_tickets_equal_bandwidth() {
        let mut s = StrideScheduler::new();
        s.set_tickets("a", 100);
        s.set_tickets("b", 100);
        let d = delivered_by_class(&mut s, &[(1, "a"), (2, "b")], 1000, 1024);
        let da = *d.get("a").unwrap() as f64;
        let db = *d.get("b").unwrap() as f64;
        assert!((da / db - 1.0).abs() < 0.01, "{} vs {}", da, db);
    }

    #[test]
    fn two_to_one_tickets_two_to_one_bandwidth() {
        let mut s = StrideScheduler::new();
        s.set_tickets("fast", 200);
        s.set_tickets("slow", 100);
        let d = delivered_by_class(&mut s, &[(1, "fast"), (2, "slow")], 3000, 1024);
        let ratio = *d.get("fast").unwrap() as f64 / *d.get("slow").unwrap() as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {}", ratio);
    }

    #[test]
    fn byte_based_strides_compensate_for_small_blocks() {
        // Class "nfs" moves 8 KiB per pick; class "http" moves 64 KiB per
        // pick. With equal tickets, bytes delivered must still be ~equal —
        // nfs simply gets picked ~8x more often.
        let mut s = StrideScheduler::new();
        s.set_tickets("nfs", 100);
        s.set_tickets("http", 100);
        s.admit(&meta(1, "nfs"));
        s.admit(&meta(2, "http"));
        let mut delivered: HashMap<String, u64> = HashMap::new();
        let mut picks: HashMap<String, u64> = HashMap::new();
        for _ in 0..9000 {
            let id = s.next().unwrap();
            let (class, bytes) = if id == FlowId(1) {
                ("nfs", 8 * 1024)
            } else {
                ("http", 64 * 1024)
            };
            s.account(id, bytes);
            *delivered.entry(class.into()).or_insert(0) += bytes;
            *picks.entry(class.into()).or_insert(0) += 1;
        }
        let ratio = *delivered.get("nfs").unwrap() as f64 / *delivered.get("http").unwrap() as f64;
        assert!((ratio - 1.0).abs() < 0.02, "byte ratio {}", ratio);
        let pick_ratio = *picks.get("nfs").unwrap() as f64 / *picks.get("http").unwrap() as f64;
        assert!((pick_ratio - 8.0).abs() < 0.5, "pick ratio {}", pick_ratio);
    }

    #[test]
    fn four_class_ratios_reach_high_fairness() {
        // The Figure 4 configuration 3:1:2:1 over four classes.
        let mut s = StrideScheduler::new();
        let weights = [("chirp", 3u32), ("gridftp", 1), ("http", 2), ("nfs", 1)];
        for (c, w) in weights {
            s.set_tickets(c, w * 100);
        }
        let d = delivered_by_class(
            &mut s,
            &[(1, "chirp"), (2, "gridftp"), (3, "http"), (4, "nfs")],
            14000,
            1024,
        );
        let delivered: Vec<f64> = weights
            .iter()
            .map(|(c, _)| *d.get(*c).unwrap_or(&0) as f64)
            .collect();
        let desired: Vec<f64> = weights.iter().map(|(_, w)| *w as f64).collect();
        let f = jain_fairness_weighted(&delivered, &desired);
        assert!(f > 0.98, "fairness {}", f);
    }

    #[test]
    fn work_conserving_gives_idle_class_share_to_others() {
        let mut s = StrideScheduler::new();
        s.set_tickets("present", 100);
        s.set_tickets("absent", 400); // favored but never has flows
        s.admit(&meta(1, "present"));
        let d = drive(&mut s, 100, 1024);
        // All 100 quanta go to the present class.
        assert_eq!(d.get(&FlowId(1)), Some(&(100 * 1024)));
    }

    #[test]
    fn non_work_conserving_idles_for_favored_class() {
        let mut s = StrideScheduler::non_work_conserving(3);
        s.set_tickets("present", 100);
        s.set_tickets("absent", 400);
        s.admit(&meta(1, "present"));
        // "absent" has minimum pass (0, and 'a' < 'p' on ties) but no
        // flows: the scheduler idles 3 quanta, then serves a competitor.
        assert_eq!(s.next(), None);
        assert_eq!(s.next(), None);
        assert_eq!(s.next(), None);
        let picked = s.next();
        assert_eq!(picked, Some(FlowId(1)));
    }

    #[test]
    fn class_waking_from_idle_does_not_hoard() {
        let mut s = StrideScheduler::new();
        s.set_tickets("a", 100);
        s.set_tickets("b", 100);
        s.admit(&meta(1, "a"));
        // a runs alone for a while, accumulating pass.
        let _ = drive(&mut s, 500, 1024);
        // b arrives late: it must not receive 500 quanta of back pay.
        s.admit(&meta(2, "b"));
        let d = drive(&mut s, 200, 1024);
        let db = *d.get(&FlowId(2)).unwrap_or(&0);
        let da = *d.get(&FlowId(1)).unwrap_or(&0);
        // Roughly half each, not b monopolizing.
        assert!(db < 150 * 1024, "b monopolized: {}", db);
        assert!(da > 50 * 1024, "a starved: {}", da);
    }

    #[test]
    fn round_robin_within_class() {
        let mut s = StrideScheduler::new();
        s.set_tickets("c", 100);
        s.admit(&meta(1, "c"));
        s.admit(&meta(2, "c"));
        let d = drive(&mut s, 100, 1024);
        assert_eq!(d.get(&FlowId(1)), Some(&(50 * 1024)));
        assert_eq!(d.get(&FlowId(2)), Some(&(50 * 1024)));
    }

    #[test]
    fn set_tickets_preserves_runnable_flows() {
        // Regression: changing a class's tickets while it had runnable
        // flows rebuilt the whole ClassState, silently discarding its
        // queue — the flows were never scheduled again and their
        // submitters hung forever.
        let mut s = StrideScheduler::new();
        s.admit(&meta(1, "a"));
        s.admit(&meta(2, "a"));
        s.set_tickets("a", 500);
        assert_eq!(s.runnable(), 2, "queue discarded by ticket change");
        let d = drive(&mut s, 20, 1024);
        assert!(d.contains_key(&FlowId(1)), "flow 1 stranded");
        assert!(d.contains_key(&FlowId(2)), "flow 2 stranded");
    }

    #[test]
    fn set_tickets_mid_stream_keeps_proportions_sane() {
        // After a mid-stream ticket change the class must neither hoard
        // credit nor owe an unbounded debt: both classes keep making
        // progress at roughly the new 1:1 ratio.
        let mut s = StrideScheduler::new();
        s.set_tickets("a", 400);
        s.set_tickets("b", 100);
        s.admit(&meta(1, "a"));
        s.admit(&meta(2, "b"));
        let _ = drive(&mut s, 200, 1024);
        s.set_tickets("a", 100);
        let d = drive(&mut s, 400, 1024);
        let da = *d.get(&FlowId(1)).unwrap_or(&0);
        let db = *d.get(&FlowId(2)).unwrap_or(&0);
        assert!(da > 0 && db > 0, "a={} b={}", da, db);
        let ratio = da as f64 / db as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "post-change ratio {} out of band (a={} b={})",
            ratio,
            da,
            db
        );
    }

    #[test]
    fn zero_tickets_holds_class_until_restored() {
        let mut s = StrideScheduler::new();
        s.set_tickets("held", 0);
        s.set_tickets("live", 100);
        s.admit(&meta(1, "held"));
        // The held class's flow stays queued but is never dispatched.
        assert_eq!(s.runnable(), 1);
        assert_eq!(s.next(), None);
        assert_eq!(s.next(), None);
        // Other classes are unaffected.
        s.admit(&meta(2, "live"));
        assert_eq!(s.next(), Some(FlowId(2)));
        // Restoring tickets releases the held flow.
        s.set_tickets("held", 100);
        s.done(FlowId(2));
        assert_eq!(s.next(), Some(FlowId(1)));
    }

    #[test]
    fn nwc_does_not_idle_for_held_class() {
        // A 0-ticket class must not trigger non-work-conserving idling:
        // the scheduler serves the live class immediately.
        let mut s = StrideScheduler::non_work_conserving(3);
        s.set_tickets("held", 0);
        s.set_tickets("live", 100);
        s.admit(&meta(1, "live"));
        assert_eq!(s.next(), Some(FlowId(1)));
    }

    #[test]
    fn done_removes_flow_and_empty_scheduler_idles() {
        let mut s = StrideScheduler::new();
        s.admit(&meta(1, "x"));
        assert_eq!(s.runnable(), 1);
        s.done(FlowId(1));
        assert_eq!(s.runnable(), 0);
        assert_eq!(s.next(), None);
        // Accounting for an unknown flow is a no-op.
        s.account(FlowId(99), 1024);
    }
}
