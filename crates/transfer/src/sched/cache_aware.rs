//! Cache-aware scheduling (paper §4.2).
//!
//! "By modeling the kernel buffer cache using gray-box techniques, NeST is
//! able to predict which requested files are likely to be cache resident
//! and can schedule them before requests for files which will need to be
//! fetched from secondary storage. In addition to improving client response
//! time by approximating shortest-job first scheduling, this scheduling
//! policy improves server throughput by reducing the contention for
//! secondary storage."
//!
//! Implementation: two FIFO bands. Flows predicted resident go to the hot
//! band; the cold band is only served when the hot band is empty. Within a
//! band, arrival order is kept (no starvation *within* a band; a stream of
//! hot arrivals can starve cold flows, which is the documented trade-off of
//! the policy — the paper's earlier work [Burnett et al. 2002] bounds this
//! with aging, which we also provide).

use super::Scheduler;
use crate::flow::{FlowId, FlowMeta};
use std::collections::VecDeque;

/// Cache-aware two-band scheduler.
#[derive(Debug)]
pub struct CacheAwareScheduler {
    hot: VecDeque<FlowId>,
    cold: VecDeque<FlowId>,
    /// After this many consecutive hot picks, one cold flow is served
    /// (aging, to bound cold-band starvation). `0` disables aging.
    aging_interval: u32,
    hot_streak: u32,
}

impl CacheAwareScheduler {
    /// Creates a scheduler with the default aging interval of 16
    /// consecutive hot quanta.
    pub fn new() -> Self {
        Self::with_aging(16)
    }

    /// Creates a scheduler with a custom aging interval (0 = pure
    /// hot-first, cold only when no hot flows).
    pub fn with_aging(aging_interval: u32) -> Self {
        Self {
            hot: VecDeque::new(),
            cold: VecDeque::new(),
            aging_interval,
            hot_streak: 0,
        }
    }
}

impl Default for CacheAwareScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for CacheAwareScheduler {
    fn admit(&mut self, meta: &FlowMeta) {
        if meta.predicted_cached {
            self.hot.push_back(meta.id);
        } else {
            self.cold.push_back(meta.id);
        }
    }

    fn next(&mut self) -> Option<FlowId> {
        let age_out = self.aging_interval > 0
            && self.hot_streak >= self.aging_interval
            && !self.cold.is_empty();
        if age_out {
            self.hot_streak = 0;
            return self.cold.front().copied();
        }
        if let Some(id) = self.hot.front().copied() {
            self.hot_streak += 1;
            return Some(id);
        }
        self.hot_streak = 0;
        self.cold.front().copied()
    }

    fn account(&mut self, _id: FlowId, _bytes: u64) {}

    fn done(&mut self, id: FlowId) {
        self.hot.retain(|f| *f != id);
        self.cold.retain(|f| *f != id);
    }

    fn runnable(&self) -> usize {
        self.hot.len() + self.cold.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMeta;

    fn meta(id: u64, cached: bool) -> FlowMeta {
        let mut m = FlowMeta::new(FlowId(id), "any", Some(1024));
        m.predicted_cached = cached;
        m
    }

    #[test]
    fn hot_flows_served_before_cold() {
        let mut s = CacheAwareScheduler::with_aging(0);
        s.admit(&meta(1, false));
        s.admit(&meta(2, true));
        s.admit(&meta(3, true));
        assert_eq!(s.next(), Some(FlowId(2)));
        s.done(FlowId(2));
        assert_eq!(s.next(), Some(FlowId(3)));
        s.done(FlowId(3));
        assert_eq!(s.next(), Some(FlowId(1)));
    }

    #[test]
    fn cold_served_when_no_hot() {
        let mut s = CacheAwareScheduler::new();
        s.admit(&meta(1, false));
        assert_eq!(s.next(), Some(FlowId(1)));
    }

    #[test]
    fn aging_lets_cold_through() {
        let mut s = CacheAwareScheduler::with_aging(3);
        s.admit(&meta(1, true));
        s.admit(&meta(2, false));
        // Three hot picks, then one cold pick.
        assert_eq!(s.next(), Some(FlowId(1)));
        assert_eq!(s.next(), Some(FlowId(1)));
        assert_eq!(s.next(), Some(FlowId(1)));
        assert_eq!(s.next(), Some(FlowId(2)));
        // Streak reset: hot again.
        assert_eq!(s.next(), Some(FlowId(1)));
    }

    #[test]
    fn done_clears_both_bands() {
        let mut s = CacheAwareScheduler::new();
        s.admit(&meta(1, true));
        s.admit(&meta(2, false));
        assert_eq!(s.runnable(), 2);
        s.done(FlowId(1));
        s.done(FlowId(2));
        assert_eq!(s.runnable(), 0);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn approximates_shortest_job_first_for_cached_small_files() {
        // A cold 10 MB flow arrives first; three cached 1 KB flows arrive
        // after. SJF-like behaviour: the small cached flows complete first.
        let mut s = CacheAwareScheduler::with_aging(0);
        s.admit(&meta(100, false));
        for i in 1..=3 {
            s.admit(&meta(i, true));
        }
        let mut completion_order = Vec::new();
        while s.runnable() > 0 {
            let id = s.next().unwrap();
            s.done(id); // 1 quantum = whole file for this test
            completion_order.push(id.0);
        }
        assert_eq!(completion_order, vec![1, 2, 3, 100]);
    }
}
