//! First-come first-served scheduling — NeST's default (paper §4.2: "the
//! most basic strategy is to service requests in a first-come, first-served
//! manner, which NeST can be configured to employ").
//!
//! Within the event executor FCFS degenerates to round-robin over admitted
//! flows in arrival order: the oldest runnable flow always moves next, so a
//! long file-based transfer (HTTP) monopolizes its quantum stream while
//! block-based NFS requests — each a separate small flow — wait their turn.
//! This is exactly the bias Figure 3 observes ("the default transfer
//! manager within NeST ends up disfavoring NFS since it schedules requests
//! in a FIFO order").

use super::Scheduler;
use crate::flow::{FlowId, FlowMeta};
use std::collections::VecDeque;

/// FIFO scheduler: flows are served in arrival order; the head flow keeps
/// receiving quanta until it completes.
#[derive(Debug, Default)]
pub struct FcfsScheduler {
    queue: VecDeque<FlowId>,
}

impl FcfsScheduler {
    /// Creates an empty FCFS scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FcfsScheduler {
    fn admit(&mut self, meta: &FlowMeta) {
        self.queue.push_back(meta.id);
    }

    fn next(&mut self) -> Option<FlowId> {
        self.queue.front().copied()
    }

    fn account(&mut self, _id: FlowId, _bytes: u64) {
        // FCFS keeps serving the head; nothing to account.
    }

    fn done(&mut self, id: FlowId) {
        self.queue.retain(|f| *f != id);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{drive, meta};
    use super::*;

    #[test]
    fn serves_head_until_done() {
        let mut s = FcfsScheduler::new();
        s.admit(&meta(1, "http"));
        s.admit(&meta(2, "nfs"));
        let delivered = drive(&mut s, 10, 100);
        assert_eq!(delivered.get(&FlowId(1)), Some(&1000));
        assert_eq!(delivered.get(&FlowId(2)), None);
        s.done(FlowId(1));
        assert_eq!(s.next(), Some(FlowId(2)));
    }

    #[test]
    fn arrival_order_preserved() {
        let mut s = FcfsScheduler::new();
        for i in 0..5 {
            s.admit(&meta(i, "x"));
        }
        for i in 0..5 {
            assert_eq!(s.next(), Some(FlowId(i)));
            s.done(FlowId(i));
        }
        assert_eq!(s.next(), None);
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn done_mid_queue_removes() {
        let mut s = FcfsScheduler::new();
        s.admit(&meta(1, "x"));
        s.admit(&meta(2, "x"));
        s.admit(&meta(3, "x"));
        s.done(FlowId(2));
        s.done(FlowId(1));
        assert_eq!(s.next(), Some(FlowId(3)));
    }
}
