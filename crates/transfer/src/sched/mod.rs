//! Transfer scheduling policies (paper §4.2).
//!
//! "Because there are likely to be multiple outstanding requests within a
//! NeST, NeST is able to selectively reorder requests to implement different
//! scheduling policies."
//!
//! A scheduler decides, quantum by quantum, which admitted flow moves its
//! next chunk. The interface is deliberately free of I/O and wall-clock
//! time so the same scheduler code runs inside the real event-model
//! executor and inside the deterministic simulation that regenerates the
//! paper's figures.

mod cache_aware;
mod fcfs;
mod stride;

pub use cache_aware::CacheAwareScheduler;
pub use fcfs::FcfsScheduler;
pub use stride::{StrideScheduler, STRIDE1};

use crate::flow::{FlowId, FlowMeta};

/// The scheduling interface.
///
/// Protocol: `admit` each new flow; repeatedly call `next` to pick the flow
/// for the next quantum; after moving bytes, call `account`; when a flow
/// completes (or fails), call `done`.
pub trait Scheduler: Send {
    /// Registers a new runnable flow.
    fn admit(&mut self, meta: &FlowMeta);

    /// Picks the flow that should move its next chunk. `None` means the
    /// scheduler chooses to idle (only non-work-conserving schedulers do
    /// this while flows are runnable; otherwise `None` means no flows).
    fn next(&mut self) -> Option<FlowId>;

    /// Records that `bytes` moved on behalf of `id`.
    fn account(&mut self, id: FlowId, bytes: u64);

    /// Removes a completed or aborted flow.
    fn done(&mut self, id: FlowId);

    /// Number of runnable flows.
    fn runnable(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::flow::FlowMeta;

    pub fn meta(id: u64, class: &str) -> FlowMeta {
        FlowMeta::new(FlowId(id), class, Some(1 << 20))
    }

    /// Drives a scheduler for `quanta` rounds with `bytes_per_quantum` per
    /// pick, returning bytes delivered per flow. Flows never finish.
    pub fn drive(
        sched: &mut dyn Scheduler,
        quanta: usize,
        bytes_per_quantum: u64,
    ) -> std::collections::HashMap<FlowId, u64> {
        let mut delivered = std::collections::HashMap::new();
        for _ in 0..quanta {
            if let Some(id) = sched.next() {
                sched.account(id, bytes_per_quantum);
                *delivered.entry(id).or_insert(0) += bytes_per_quantum;
            }
        }
        delivered
    }
}
