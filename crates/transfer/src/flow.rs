//! Flows: the unit of work the transfer manager schedules.
//!
//! A flow pumps bytes from a [`DataSource`] to a [`DataSink`] one chunk at a
//! time. Chunk granularity is what lets the event-model executor interleave
//! many flows under a scheduling policy, and what makes the stride
//! scheduler's byte-based accounting exact.

use crate::bufpool::PooledBuf;
use crate::fault::RetryPolicy;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifies one flow within a transfer manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// A window onto a source's underlying file, for zero-copy capability
/// negotiation. A source that can expose its backing fd hands the flow a
/// window (`Arc<File>` keeps the handle alive across handle-cache
/// evictions); the flow `sendfile`s straight from it to the sink's fd,
/// skipping the staging buffer entirely.
///
/// A window is a *per-step* grant: the flow re-asks
/// [`DataSource::raw_window`] before every zero-copy step, so a source
/// guarding cached handles (epoch-stamped leases from the storage
/// handle cache) can withdraw the capability the moment its lease goes
/// stale — the flow then falls back to the pooled loop mid-transfer with
/// the logical cursor intact.
pub struct RawWindow {
    /// The backing file, held open for the duration of the step.
    pub file: Arc<std::fs::File>,
    /// Absolute file offset of the next unread byte.
    pub offset: u64,
    /// Bytes left in the source (0 = end of stream).
    pub remaining: u64,
}

/// A source of bytes (disk file, client socket, another NeST...).
pub trait DataSource: Send {
    /// Reads up to `buf.len()` bytes; 0 means end of stream.
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Returns the source to its first byte so a failed transfer can be
    /// retried from scratch. Sources that cannot replay (live sockets)
    /// keep the default, which refuses — such flows fail on the first
    /// error regardless of their retry budget.
    fn rewind(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "source cannot rewind",
        ))
    }

    /// Zero-copy capability probe: a [`RawWindow`] onto the source's
    /// backing file, or `None` for sources that transform bytes or have
    /// no stable fd (the default). Asked before every zero-copy step;
    /// returning `None` mid-flow cleanly demotes the flow to the pooled
    /// loop.
    fn raw_window(&mut self) -> Option<RawWindow> {
        None
    }

    /// Advances the source's logical cursor after `n` bytes were moved
    /// through a [`RawWindow`] (the bytes never pass through
    /// [`DataSource::read_chunk`]). Keeping the cursor honest is what
    /// makes mid-flow fallback — and retry-after-rewind — byte-exact.
    fn zc_advance(&mut self, _n: u64) {}
}

/// A destination for bytes.
pub trait DataSink: Send {
    /// Writes the whole chunk.
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()>;

    /// Called once after the final chunk, for sinks that need a commit or
    /// acknowledgment step.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Discards partial output so a failed transfer can be retried from
    /// byte 0. Sinks that cannot unwrite (live sockets) keep the default,
    /// which refuses.
    fn reset(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "sink cannot reset",
        ))
    }

    /// Called exactly once when a flow fails terminally (retries
    /// exhausted, deadline elapsed, or cancelled): best-effort cleanup of
    /// partial output. Storage-backed sinks delete the partial file and
    /// release its lot charge here. The default does nothing.
    fn abort(&mut self) {}

    /// Zero-copy capability probe: the sink's raw socket/file descriptor,
    /// once any buffered prefix (e.g. a pending protocol header) is on
    /// the wire — or `None` for sinks that transform or buffer bytes (the
    /// default). Asked before every zero-copy step, so a sink may answer
    /// `None` while a header is still pending and the fd afterwards.
    #[cfg(unix)]
    fn raw_fd(&mut self) -> Option<std::os::unix::io::RawFd> {
        None
    }
}

impl DataSource for std::io::Cursor<Vec<u8>> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.set_position(0);
        Ok(())
    }
}

impl DataSink for Vec<u8> {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.extend_from_slice(data);
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.clear();
        Ok(())
    }
}

/// Scheduler-visible metadata about a flow.
#[derive(Debug, Clone)]
pub struct FlowMeta {
    /// The flow id.
    pub id: FlowId,
    /// Protocol class ("chirp", "gridftp", "http", "nfs", ...). The stride
    /// scheduler allocates bandwidth between these classes.
    pub class: String,
    /// Total bytes expected, when known (None for streaming puts).
    pub size: Option<u64>,
    /// Whether the gray-box cache model predicts the data is resident.
    pub predicted_cached: bool,
    /// Attempt budget + backoff schedule for transient failures.
    pub retry: RetryPolicy,
    /// Wall-clock budget from dispatch; the engine fails the flow with
    /// `TimedOut` once it elapses. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token, shared with the submitter's
    /// [`crate::manager::TransferHandle`]. Clones of this metadata share
    /// the token.
    pub cancel: Arc<AtomicBool>,
}

impl FlowMeta {
    /// Creates metadata for a flow of known size (no retries, no
    /// deadline).
    pub fn new(id: FlowId, class: impl Into<String>, size: Option<u64>) -> Self {
        Self {
            id,
            class: class.into(),
            size,
            predicted_cached: false,
            retry: RetryPolicy::none(),
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets a wall-clock deadline measured from dispatch.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requests cooperative cancellation of this flow.
    pub fn request_cancel(&self) {
        // nestlint: allow(atomic-ordering): cancel latch polled at chunk boundaries; eventual visibility suffices
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // nestlint: allow(atomic-ordering): cancel latch; no data is published under it
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Where a flow stands in the zero-copy ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ZcState {
    /// Eligible; the endpoints have not granted both capabilities yet.
    Probing,
    /// At least one `sendfile` span succeeded.
    Active,
    /// Demoted to the pooled loop for the rest of the flow (disabled by
    /// config, capability withdrawn, or the kernel refused the fd pair).
    Off,
}

/// The state of one in-progress transfer.
pub struct Flow {
    /// Scheduler-visible metadata.
    pub meta: FlowMeta,
    source: Box<dyn DataSource>,
    sink: Box<dyn DataSink>,
    moved: u64,
    done: bool,
    buf: PooledBuf,
    zc: ZcState,
    zc_engaged: bool,
    zc_fell_back: bool,
}

/// Bytes one zero-copy step asks the kernel to move. Larger than the
/// pooled chunk size (one span replaces ~4 read+write pairs) but small
/// enough that cancel/deadline checks and stride accounting stay
/// responsive — and, on hosts where the events engine runs few worker
/// threads, small enough that one flow blocking in `sendfile` on a full
/// socket buffer cannot head-of-line-block the other ready flows for
/// long.
const ZC_SPAN: u64 = 256 * 1024;

/// Result of advancing a flow by one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Moved this many bytes; more remain.
    Moved(usize),
    /// The source is exhausted and the sink finished; the flow is complete.
    Finished,
}

impl Flow {
    /// Creates a flow with a free-standing (unpooled) staging buffer of
    /// the given chunk size. Hot paths should prefer
    /// [`Flow::with_buffer`] with a [`crate::bufpool::BufPool`] checkout
    /// so steady-state admission allocates nothing.
    pub fn new(
        meta: FlowMeta,
        source: Box<dyn DataSource>,
        sink: Box<dyn DataSink>,
        chunk_size: usize,
    ) -> Self {
        Self::with_buffer(meta, source, sink, PooledBuf::detached(chunk_size))
    }

    /// Creates a flow staging chunks through `buf` — typically a
    /// [`crate::bufpool::BufPool`] checkout, returned to the pool when the
    /// flow drops.
    pub fn with_buffer(
        meta: FlowMeta,
        source: Box<dyn DataSource>,
        sink: Box<dyn DataSink>,
        buf: PooledBuf,
    ) -> Self {
        Self {
            meta,
            source,
            sink,
            moved: 0,
            done: false,
            buf,
            zc: ZcState::Off,
            zc_engaged: false,
            zc_fell_back: false,
        }
    }

    /// Arms (or disarms) the zero-copy fast path for this flow. Off by
    /// default so ad-hoc flows behave exactly like the pooled baseline;
    /// the transfer manager arms it from `TransferConfig::zerocopy`.
    pub fn set_zerocopy(&mut self, enabled: bool) {
        self.zc = if enabled {
            ZcState::Probing
        } else {
            ZcState::Off
        };
    }

    /// Whether any bytes of this flow moved via `sendfile`.
    pub fn zc_engaged(&self) -> bool {
        self.zc_engaged
    }

    /// Whether this flow attempted the zero-copy path and was demoted to
    /// the pooled loop (capability withdrawn mid-flow or fd pair
    /// unsupported).
    pub fn zc_fell_back(&self) -> bool {
        self.zc_fell_back
    }

    /// The chunk granularity this flow moves bytes at (its staging-buffer
    /// size).
    pub fn chunk_size(&self) -> usize {
        self.buf.len()
    }

    /// Bytes moved so far.
    pub fn moved(&self) -> u64 {
        self.moved
    }

    /// True once the flow has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Moves one chunk from source to sink — via `sendfile` when both
    /// endpoints grant the zero-copy capability, through the pooled
    /// staging buffer otherwise. The two paths produce byte-identical
    /// wire output; the fast path only changes how the bytes travel.
    pub fn step(&mut self) -> io::Result<StepOutcome> {
        if self.done {
            return Ok(StepOutcome::Finished);
        }
        #[cfg(target_os = "linux")]
        if self.zc != ZcState::Off {
            if let Some(outcome) = self.zc_step()? {
                return Ok(outcome);
            }
        }
        let n = self.source.read_chunk(&mut self.buf)?;
        if n == 0 {
            self.sink.finish()?;
            self.done = true;
            return Ok(StepOutcome::Finished);
        }
        self.sink.write_chunk(&self.buf[..n])?;
        self.moved += n as u64;
        Ok(StepOutcome::Moved(n))
    }

    /// One zero-copy step attempt. `Ok(None)` means "take the pooled path
    /// for this step": a capability is (still or newly) missing, the input
    /// hit an unexpected EOF, or the kernel refused the fd pair. The
    /// capability probe runs per step, so a withdrawn handle-cache lease
    /// or a still-pending protocol header demotes or defers cleanly.
    #[cfg(target_os = "linux")]
    fn zc_step(&mut self) -> io::Result<Option<StepOutcome>> {
        use std::os::unix::io::AsRawFd;
        // Probe the sink first and short-circuit: most sinks never grant a
        // descriptor, and `raw_window` is the expensive half (it takes the
        // handle-cache lock to validate the lease epoch). Flows that will
        // never go zero-copy must not pay that per step.
        let withdrew = |zc: &mut ZcState, fell_back: &mut bool| {
            if *zc == ZcState::Active {
                // Was streaming zero-copy and an endpoint withdrew (e.g.
                // the handle-cache epoch moved): demote for good.
                *fell_back = true;
                *zc = ZcState::Off;
            }
        };
        let Some(out_fd) = self.sink.raw_fd() else {
            withdrew(&mut self.zc, &mut self.zc_fell_back);
            return Ok(None);
        };
        let Some(win) = self.source.raw_window() else {
            withdrew(&mut self.zc, &mut self.zc_fell_back);
            return Ok(None);
        };
        if win.remaining == 0 {
            self.sink.finish()?;
            self.done = true;
            return Ok(Some(StepOutcome::Finished));
        }
        let span = win.remaining.min(ZC_SPAN);
        match crate::zerocopy::transmit(win.file.as_raw_fd(), out_fd, win.offset, span) {
            Ok(0) => {
                // The file is shorter than the source believes; let the
                // pooled loop surface EOF through its normal semantics.
                if self.zc == ZcState::Active {
                    self.zc_fell_back = true;
                }
                self.zc = ZcState::Off;
                Ok(None)
            }
            Ok(n) => {
                self.source.zc_advance(n);
                self.moved += n;
                self.zc = ZcState::Active;
                self.zc_engaged = true;
                Ok(Some(StepOutcome::Moved(n as usize)))
            }
            Err(e) if crate::zerocopy::is_unsupported(&e) => {
                self.zc_fell_back = true;
                self.zc = ZcState::Off;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Reads a chunk directly from the source, bypassing the sink. Used by
    /// executors that stage data through an external process.
    pub fn source_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.source.read_chunk(buf)
    }

    /// Writes a chunk directly to the sink, counting it as moved.
    pub fn sink_write(&mut self, data: &[u8]) -> io::Result<()> {
        self.sink.write_chunk(data)?;
        self.moved += data.len() as u64;
        Ok(())
    }

    /// Finishes the sink directly and marks the flow done.
    pub fn sink_finish(&mut self) -> io::Result<()> {
        self.sink.finish()?;
        self.done = true;
        Ok(())
    }

    /// Prepares the flow for another attempt after a transient failure:
    /// rewinds the source, resets the sink, and clears the byte counter.
    /// Fails (without side effects beyond the endpoints' own attempts) if
    /// either endpoint cannot be replayed — the caller must then fail the
    /// flow terminally.
    pub fn reset_for_retry(&mut self) -> io::Result<()> {
        self.source.rewind()?;
        self.sink.reset()?;
        self.moved = 0;
        self.done = false;
        Ok(())
    }

    /// Terminal-failure cleanup: forwards [`DataSink::abort`] to the sink
    /// (best-effort; storage sinks delete partial output and release lot
    /// charges).
    pub fn abort(&mut self) {
        self.sink.abort();
    }

    /// Pumps the flow to completion (used by the thread-per-flow model).
    /// Returns total bytes moved.
    pub fn run_to_completion(&mut self) -> io::Result<u64> {
        loop {
            match self.step()? {
                StepOutcome::Moved(_) => continue,
                StepOutcome::Finished => return Ok(self.moved),
            }
        }
    }
}

/// A source serving a whole object from shared memory — the read path the
/// storage manager's RAM tier hands the dispatcher when an object is
/// tier-resident. The `Arc` is a reference into the tier's resident copy,
/// so constructing the source copies nothing and eviction cannot
/// invalidate in-flight reads (the flow keeps the data alive).
///
/// Deliberately has **no** [`DataSource::raw_window`]: there is no backing
/// fd, so a zerocopy-armed flow probes once, stays in `Probing`, and takes
/// the pooled loop. That is a clean demotion, not a fallback — the
/// dispatcher counts it as `memtier.zc_bypassed`.
pub struct MemSource {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl MemSource {
    /// Creates a source over a shared in-memory object.
    pub fn new(data: Arc<Vec<u8>>) -> Self {
        Self { data, pos: 0 }
    }

    /// Total object length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl DataSource for MemSource {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.data[self.pos..];
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.pos = 0;
        Ok(())
    }
}

/// A source producing `len` deterministic pseudo-random-ish bytes; used by
/// tests and workload generators.
pub struct PatternSource {
    len: u64,
    remaining: u64,
    counter: u8,
}

impl PatternSource {
    /// Creates a pattern source of the given length.
    pub fn new(len: u64) -> Self {
        Self {
            len,
            remaining: len,
            counter: 0,
        }
    }
}

impl DataSource for PatternSource {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(self.remaining) as usize;
        for b in &mut buf[..n] {
            *b = self.counter;
            self.counter = self.counter.wrapping_add(1);
        }
        self.remaining -= n as u64;
        Ok(n)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.remaining = self.len;
        self.counter = 0;
        Ok(())
    }
}

/// A sink that counts bytes and discards them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Bytes received so far.
    pub received: u64,
    /// Whether `finish` has been called.
    pub finished: bool,
}

impl DataSink for CountingSink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.received += data.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.finished = true;
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.received = 0;
        self.finished = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64) -> FlowMeta {
        FlowMeta::new(FlowId(id), "test", None)
    }

    #[test]
    fn flow_moves_all_bytes_in_chunks() {
        let mut flow = Flow::new(
            meta(1),
            Box::new(PatternSource::new(1000)),
            Box::new(Vec::new()),
            128,
        );
        let mut steps = 0;
        while let StepOutcome::Moved(n) = flow.step().unwrap() {
            assert!(n <= 128);
            steps += 1;
        }
        assert_eq!(flow.moved(), 1000);
        assert_eq!(steps, 8); // ceil(1000/128)
        assert!(flow.is_done());
    }

    #[test]
    fn run_to_completion_returns_total() {
        let mut flow = Flow::new(
            meta(2),
            Box::new(PatternSource::new(5000)),
            Box::new(Vec::new()),
            512,
        );
        assert_eq!(flow.run_to_completion().unwrap(), 5000);
        // Stepping a finished flow stays finished.
        assert_eq!(flow.step().unwrap(), StepOutcome::Finished);
    }

    #[test]
    fn pattern_source_content_is_deterministic() {
        let mut s1 = PatternSource::new(10);
        let mut s2 = PatternSource::new(10);
        let mut a = [0u8; 10];
        let mut b = [0u8; 10];
        s1.read_chunk(&mut a).unwrap();
        s2.read_chunk(&mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn counting_sink_sees_finish() {
        let mut flow = Flow::new(
            meta(3),
            Box::new(PatternSource::new(10)),
            Box::new(CountingSink::default()),
            4,
        );
        flow.run_to_completion().unwrap();
        // The sink is boxed inside the flow; verify via moved().
        assert_eq!(flow.moved(), 10);
    }

    #[test]
    fn empty_source_finishes_immediately() {
        let mut flow = Flow::new(
            meta(4),
            Box::new(PatternSource::new(0)),
            Box::new(Vec::new()),
            64,
        );
        assert_eq!(flow.step().unwrap(), StepOutcome::Finished);
        assert_eq!(flow.moved(), 0);
    }

    #[test]
    fn mem_source_replays_and_grants_no_window() {
        let data = Arc::new((0u8..200).collect::<Vec<u8>>());
        let mut src = MemSource::new(Arc::clone(&data));
        assert_eq!(src.len(), 200);
        assert!(src.raw_window().is_none());
        let mut flow = Flow::new(meta(6), Box::new(src), Box::new(Vec::new()), 64);
        flow.set_zerocopy(true);
        assert_eq!(flow.run_to_completion().unwrap(), 200);
        // No fd: the flow never engaged zerocopy, and never "fell back"
        // either — Probing straight to the pooled loop is a clean demotion.
        assert!(!flow.zc_engaged());
        assert!(!flow.zc_fell_back());
        // Rewind replays from byte 0 for retry.
        let mut src = MemSource::new(data);
        let mut buf = [0u8; 8];
        src.read_chunk(&mut buf).unwrap();
        src.rewind().unwrap();
        let mut again = [0u8; 8];
        src.read_chunk(&mut again).unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn cursor_and_vec_adapters() {
        let data = vec![1u8, 2, 3, 4, 5];
        let mut flow = Flow::new(
            meta(5),
            Box::new(std::io::Cursor::new(data.clone())),
            Box::new(Vec::new()),
            2,
        );
        assert_eq!(flow.run_to_completion().unwrap(), 5);
    }
}
