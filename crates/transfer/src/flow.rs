//! Flows: the unit of work the transfer manager schedules.
//!
//! A flow pumps bytes from a [`DataSource`] to a [`DataSink`] one chunk at a
//! time. Chunk granularity is what lets the event-model executor interleave
//! many flows under a scheduling policy, and what makes the stride
//! scheduler's byte-based accounting exact.

use crate::bufpool::PooledBuf;
use crate::fault::RetryPolicy;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifies one flow within a transfer manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// A source of bytes (disk file, client socket, another NeST...).
pub trait DataSource: Send {
    /// Reads up to `buf.len()` bytes; 0 means end of stream.
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Returns the source to its first byte so a failed transfer can be
    /// retried from scratch. Sources that cannot replay (live sockets)
    /// keep the default, which refuses — such flows fail on the first
    /// error regardless of their retry budget.
    fn rewind(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "source cannot rewind",
        ))
    }
}

/// A destination for bytes.
pub trait DataSink: Send {
    /// Writes the whole chunk.
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()>;

    /// Called once after the final chunk, for sinks that need a commit or
    /// acknowledgment step.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Discards partial output so a failed transfer can be retried from
    /// byte 0. Sinks that cannot unwrite (live sockets) keep the default,
    /// which refuses.
    fn reset(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "sink cannot reset",
        ))
    }

    /// Called exactly once when a flow fails terminally (retries
    /// exhausted, deadline elapsed, or cancelled): best-effort cleanup of
    /// partial output. Storage-backed sinks delete the partial file and
    /// release its lot charge here. The default does nothing.
    fn abort(&mut self) {}
}

impl DataSource for std::io::Cursor<Vec<u8>> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.set_position(0);
        Ok(())
    }
}

impl DataSink for Vec<u8> {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.extend_from_slice(data);
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.clear();
        Ok(())
    }
}

/// Scheduler-visible metadata about a flow.
#[derive(Debug, Clone)]
pub struct FlowMeta {
    /// The flow id.
    pub id: FlowId,
    /// Protocol class ("chirp", "gridftp", "http", "nfs", ...). The stride
    /// scheduler allocates bandwidth between these classes.
    pub class: String,
    /// Total bytes expected, when known (None for streaming puts).
    pub size: Option<u64>,
    /// Whether the gray-box cache model predicts the data is resident.
    pub predicted_cached: bool,
    /// Attempt budget + backoff schedule for transient failures.
    pub retry: RetryPolicy,
    /// Wall-clock budget from dispatch; the engine fails the flow with
    /// `TimedOut` once it elapses. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token, shared with the submitter's
    /// [`crate::manager::TransferHandle`]. Clones of this metadata share
    /// the token.
    pub cancel: Arc<AtomicBool>,
}

impl FlowMeta {
    /// Creates metadata for a flow of known size (no retries, no
    /// deadline).
    pub fn new(id: FlowId, class: impl Into<String>, size: Option<u64>) -> Self {
        Self {
            id,
            class: class.into(),
            size,
            predicted_cached: false,
            retry: RetryPolicy::none(),
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets a wall-clock deadline measured from dispatch.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requests cooperative cancellation of this flow.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// The state of one in-progress transfer.
pub struct Flow {
    /// Scheduler-visible metadata.
    pub meta: FlowMeta,
    source: Box<dyn DataSource>,
    sink: Box<dyn DataSink>,
    moved: u64,
    done: bool,
    buf: PooledBuf,
}

/// Result of advancing a flow by one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Moved this many bytes; more remain.
    Moved(usize),
    /// The source is exhausted and the sink finished; the flow is complete.
    Finished,
}

impl Flow {
    /// Creates a flow with a free-standing (unpooled) staging buffer of
    /// the given chunk size. Hot paths should prefer
    /// [`Flow::with_buffer`] with a [`crate::bufpool::BufPool`] checkout
    /// so steady-state admission allocates nothing.
    pub fn new(
        meta: FlowMeta,
        source: Box<dyn DataSource>,
        sink: Box<dyn DataSink>,
        chunk_size: usize,
    ) -> Self {
        Self::with_buffer(meta, source, sink, PooledBuf::detached(chunk_size))
    }

    /// Creates a flow staging chunks through `buf` — typically a
    /// [`crate::bufpool::BufPool`] checkout, returned to the pool when the
    /// flow drops.
    pub fn with_buffer(
        meta: FlowMeta,
        source: Box<dyn DataSource>,
        sink: Box<dyn DataSink>,
        buf: PooledBuf,
    ) -> Self {
        Self {
            meta,
            source,
            sink,
            moved: 0,
            done: false,
            buf,
        }
    }

    /// The chunk granularity this flow moves bytes at (its staging-buffer
    /// size).
    pub fn chunk_size(&self) -> usize {
        self.buf.len()
    }

    /// Bytes moved so far.
    pub fn moved(&self) -> u64 {
        self.moved
    }

    /// True once the flow has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Moves one chunk from source to sink.
    pub fn step(&mut self) -> io::Result<StepOutcome> {
        if self.done {
            return Ok(StepOutcome::Finished);
        }
        let n = self.source.read_chunk(&mut self.buf)?;
        if n == 0 {
            self.sink.finish()?;
            self.done = true;
            return Ok(StepOutcome::Finished);
        }
        self.sink.write_chunk(&self.buf[..n])?;
        self.moved += n as u64;
        Ok(StepOutcome::Moved(n))
    }

    /// Reads a chunk directly from the source, bypassing the sink. Used by
    /// executors that stage data through an external process.
    pub fn source_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.source.read_chunk(buf)
    }

    /// Writes a chunk directly to the sink, counting it as moved.
    pub fn sink_write(&mut self, data: &[u8]) -> io::Result<()> {
        self.sink.write_chunk(data)?;
        self.moved += data.len() as u64;
        Ok(())
    }

    /// Finishes the sink directly and marks the flow done.
    pub fn sink_finish(&mut self) -> io::Result<()> {
        self.sink.finish()?;
        self.done = true;
        Ok(())
    }

    /// Prepares the flow for another attempt after a transient failure:
    /// rewinds the source, resets the sink, and clears the byte counter.
    /// Fails (without side effects beyond the endpoints' own attempts) if
    /// either endpoint cannot be replayed — the caller must then fail the
    /// flow terminally.
    pub fn reset_for_retry(&mut self) -> io::Result<()> {
        self.source.rewind()?;
        self.sink.reset()?;
        self.moved = 0;
        self.done = false;
        Ok(())
    }

    /// Terminal-failure cleanup: forwards [`DataSink::abort`] to the sink
    /// (best-effort; storage sinks delete partial output and release lot
    /// charges).
    pub fn abort(&mut self) {
        self.sink.abort();
    }

    /// Pumps the flow to completion (used by the thread-per-flow model).
    /// Returns total bytes moved.
    pub fn run_to_completion(&mut self) -> io::Result<u64> {
        loop {
            match self.step()? {
                StepOutcome::Moved(_) => continue,
                StepOutcome::Finished => return Ok(self.moved),
            }
        }
    }
}

/// A source producing `len` deterministic pseudo-random-ish bytes; used by
/// tests and workload generators.
pub struct PatternSource {
    len: u64,
    remaining: u64,
    counter: u8,
}

impl PatternSource {
    /// Creates a pattern source of the given length.
    pub fn new(len: u64) -> Self {
        Self {
            len,
            remaining: len,
            counter: 0,
        }
    }
}

impl DataSource for PatternSource {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(self.remaining) as usize;
        for b in &mut buf[..n] {
            *b = self.counter;
            self.counter = self.counter.wrapping_add(1);
        }
        self.remaining -= n as u64;
        Ok(n)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.remaining = self.len;
        self.counter = 0;
        Ok(())
    }
}

/// A sink that counts bytes and discards them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Bytes received so far.
    pub received: u64,
    /// Whether `finish` has been called.
    pub finished: bool,
}

impl DataSink for CountingSink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.received += data.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.finished = true;
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.received = 0;
        self.finished = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64) -> FlowMeta {
        FlowMeta::new(FlowId(id), "test", None)
    }

    #[test]
    fn flow_moves_all_bytes_in_chunks() {
        let mut flow = Flow::new(
            meta(1),
            Box::new(PatternSource::new(1000)),
            Box::new(Vec::new()),
            128,
        );
        let mut steps = 0;
        while let StepOutcome::Moved(n) = flow.step().unwrap() {
            assert!(n <= 128);
            steps += 1;
        }
        assert_eq!(flow.moved(), 1000);
        assert_eq!(steps, 8); // ceil(1000/128)
        assert!(flow.is_done());
    }

    #[test]
    fn run_to_completion_returns_total() {
        let mut flow = Flow::new(
            meta(2),
            Box::new(PatternSource::new(5000)),
            Box::new(Vec::new()),
            512,
        );
        assert_eq!(flow.run_to_completion().unwrap(), 5000);
        // Stepping a finished flow stays finished.
        assert_eq!(flow.step().unwrap(), StepOutcome::Finished);
    }

    #[test]
    fn pattern_source_content_is_deterministic() {
        let mut s1 = PatternSource::new(10);
        let mut s2 = PatternSource::new(10);
        let mut a = [0u8; 10];
        let mut b = [0u8; 10];
        s1.read_chunk(&mut a).unwrap();
        s2.read_chunk(&mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn counting_sink_sees_finish() {
        let mut flow = Flow::new(
            meta(3),
            Box::new(PatternSource::new(10)),
            Box::new(CountingSink::default()),
            4,
        );
        flow.run_to_completion().unwrap();
        // The sink is boxed inside the flow; verify via moved().
        assert_eq!(flow.moved(), 10);
    }

    #[test]
    fn empty_source_finishes_immediately() {
        let mut flow = Flow::new(
            meta(4),
            Box::new(PatternSource::new(0)),
            Box::new(Vec::new()),
            64,
        );
        assert_eq!(flow.step().unwrap(), StepOutcome::Finished);
        assert_eq!(flow.moved(), 0);
    }

    #[test]
    fn cursor_and_vec_adapters() {
        let data = vec![1u8, 2, 3, 4, 5];
        let mut flow = Flow::new(
            meta(5),
            Box::new(std::io::Cursor::new(data.clone())),
            Box::new(Vec::new()),
            2,
        );
        assert_eq!(flow.run_to_completion().unwrap(), 5);
    }
}
