//! Zero-copy primitives for the byte-moving layer.
//!
//! The datapath bench (DESIGN.md §10) shows the chunked GET path is
//! copy-dominated once the handle cache removes the open/close storm: every
//! chunk is `pread` into a staging buffer and written back out, two
//! kernel/user crossings per chunk. This module removes the staging copy
//! the way GridFTP's data channel does, with a fallback ladder so the
//! pooled path remains the universal slow lane:
//!
//! 1. [`transmit`] — `sendfile(2)` from a file descriptor straight to a
//!    socket (or, when `sendfile` refuses the fd pair, `copy_file_range`),
//!    looping on `EINTR`/`EAGAIN`/short counts.
//! 2. [`write_all_vectored2`] — `writev`-style coalescing of a protocol
//!    header and the first body chunk into one syscall, for the reply
//!    writers that cannot hand over a raw fd.
//! 3. The pooled-buffer loop in [`crate::flow::Flow::step`] — engaged when
//!    neither endpoint exposes a raw fd, or when the kernel reports the
//!    pair unsupported ([`is_unsupported`]).
//!
//! The raw syscall bindings follow the repo's `poll_sys` idiom: std already
//! links libc, so a two-line `extern "C"` block needs no external crate.

use std::io::{self, IoSlice, Write};

/// Largest span a single [`transmit`] call will request from the kernel.
/// `sendfile` caps one call at `0x7fff_f000` bytes; staying under it keeps
/// return-value arithmetic trivially in range.
const MAX_SYSCALL_SPAN: u64 = 0x7fff_f000;

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal `sendfile(2)`/`copy_file_range(2)` bindings (Linux
    //! signatures; std already links libc).
    use std::os::unix::io::RawFd;

    extern "C" {
        pub fn sendfile(out_fd: RawFd, in_fd: RawFd, offset: *mut i64, count: usize) -> isize;
        pub fn copy_file_range(
            fd_in: RawFd,
            off_in: *mut i64,
            fd_out: RawFd,
            off_out: *mut i64,
            len: usize,
            flags: u32,
        ) -> isize;
    }

    #[repr(C)]
    pub struct Timespec {
        pub sec: i64,
        pub nsec: i64,
    }

    extern "C" {
        pub fn clock_gettime(clk: i32, tp: *mut Timespec) -> i32;
    }

    pub const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    pub const EINTR: i32 = 4;
    pub const EAGAIN: i32 = 11;
    /// Errnos that mean "this fd pair cannot take this path" rather than
    /// "the transfer failed": the caller falls back to the pooled loop.
    pub const UNSUPPORTED: &[i32] = &[
        9,  // EBADF
        18, // EXDEV
        22, // EINVAL
        29, // ESPIPE
        38, // ENOSYS
        95, // EOPNOTSUPP
    ];
}

/// Nanoseconds of CPU time the calling thread has consumed
/// (`CLOCK_THREAD_CPUTIME_ID`). The transfer engine samples this around
/// each scheduling pass to account bytes moved against appliance CPU
/// spent — the efficiency ratio the zero-copy path improves, which
/// loopback wall-clock throughput cannot show because the in-host
/// receiver's copy serializes with the sender (DESIGN.md §14). Returns 0
/// where the clock is unavailable.
pub fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let mut ts = sys::Timespec { sec: 0, nsec: 0 };
        // SAFETY: `ts` is a valid, exclusively borrowed Timespec; the
        // syscall writes only into it and the clock id is a constant.
        if unsafe { sys::clock_gettime(sys::CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return ts.sec as u64 * 1_000_000_000 + ts.nsec as u64;
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    0
}

/// Whether an error from [`transmit`] means the fd pair is unsupported
/// (fall back to the pooled-buffer loop) rather than a real I/O failure.
pub fn is_unsupported(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Unsupported
}

/// Moves up to `count` bytes from `in_fd` (a mmap-able file, read at
/// `offset`) to `out_fd` (typically a socket) without staging through
/// userspace. Tries `sendfile(2)` first and `copy_file_range(2)` when the
/// kernel rejects the pair; loops on `EINTR`, short counts, and
/// zero-progress `EAGAIN`. Returns the bytes moved — `0` means the input
/// hit end-of-file before `offset + 1`. An [`io::ErrorKind::Unsupported`]
/// error means neither syscall accepts this fd pair and no bytes moved;
/// the caller must fall back.
#[cfg(target_os = "linux")]
pub fn transmit(
    in_fd: std::os::unix::io::RawFd,
    out_fd: std::os::unix::io::RawFd,
    offset: u64,
    count: u64,
) -> io::Result<u64> {
    let mut off = offset as i64;
    let mut moved: u64 = 0;
    let mut use_cfr = false;
    while moved < count {
        let want = (count - moved).min(MAX_SYSCALL_SPAN) as usize;
        // SAFETY: both fds are open for the duration of the call (held
        // by the caller), `off` is a valid exclusively borrowed offset,
        // and `want` never exceeds the remaining byte count.
        let rc = unsafe {
            if use_cfr {
                sys::copy_file_range(in_fd, &mut off, out_fd, std::ptr::null_mut(), want, 0)
            } else {
                sys::sendfile(out_fd, in_fd, &mut off, want)
            }
        };
        if rc > 0 {
            moved += rc as u64;
            continue;
        }
        if rc == 0 {
            return Ok(moved); // EOF on the input file
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            Some(sys::EINTR) => continue,
            Some(sys::EAGAIN) => {
                if moved > 0 {
                    return Ok(moved);
                }
                // The appliance's sockets are blocking, so this is a
                // theoretical path; yield briefly rather than spin.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Some(e) if sys::UNSUPPORTED.contains(&e) => {
                if moved > 0 {
                    // The pair worked and then stopped (e.g. the socket
                    // changed under us); report progress and let the next
                    // step re-probe or fall back.
                    return Ok(moved);
                }
                if !use_cfr {
                    use_cfr = true; // next rung of the ladder
                    continue;
                }
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("zero-copy unsupported for this fd pair: {err}"),
                ));
            }
            _ => {
                return if moved > 0 { Ok(moved) } else { Err(err) };
            }
        }
    }
    Ok(moved)
}

/// Writes `head` then `body` through one coalesced `writev`-style call,
/// looping on short counts and `Interrupted` until both are fully on the
/// wire. This is the header+first-chunk coalescing primitive for reply
/// writers: one syscall instead of two for small responses.
pub fn write_all_vectored2(w: &mut impl Write, head: &[u8], body: &[u8]) -> io::Result<()> {
    let total = head.len() + body.len();
    let mut bufs = [IoSlice::new(head), IoSlice::new(body)];
    let mut slices: &mut [IoSlice<'_>] = &mut bufs;
    let mut written = 0usize;
    while written < total {
        match w.write_vectored(slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write coalesced reply",
                ))
            }
            Ok(n) => {
                written += n;
                IoSlice::advance_slices(&mut slices, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and ignores the
    /// vectored fast path, so coalescing must survive short counts.
    struct ShortWriter {
        cap: usize,
        out: Vec<u8>,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_short_counts() {
        let mut w = ShortWriter {
            cap: 3,
            out: Vec::new(),
        };
        write_all_vectored2(&mut w, b"HEADER:", b"body bytes").unwrap();
        assert_eq!(w.out, b"HEADER:body bytes");
    }

    #[test]
    fn vectored_write_handles_empty_sides() {
        let mut w = ShortWriter {
            cap: 64,
            out: Vec::new(),
        };
        write_all_vectored2(&mut w, b"", b"just-body").unwrap();
        write_all_vectored2(&mut w, b"just-head", b"").unwrap();
        write_all_vectored2(&mut w, b"", b"").unwrap();
        assert_eq!(w.out, b"just-bodyjust-head");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn transmit_moves_file_bytes_to_a_socket() {
        use std::io::Read;
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("nest-zc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("transmit.dat");
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &body).unwrap();
        let file = std::fs::File::open(&path).unwrap();

        let (tx, rx) = UnixStream::pair().unwrap();
        let reader = std::thread::spawn(move || {
            let mut rx = rx;
            let mut got = Vec::new();
            rx.read_to_end(&mut got).unwrap();
            got
        });
        // Offset-based: skip the first 5 bytes, then move the rest.
        let moved = transmit(file.as_raw_fd(), tx.as_raw_fd(), 5, body.len() as u64).unwrap();
        assert_eq!(moved, body.len() as u64 - 5); // EOF-limited, not count-limited
        drop(tx);
        assert_eq!(reader.join().unwrap(), &body[5..]);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn transmit_rejects_nonsensical_pairs_as_unsupported() {
        use std::io::Write as _;
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;

        // Source is a socket, not an mmap-able file: sendfile and
        // copy_file_range both refuse, surfacing the fallback signal.
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"some bytes").unwrap();
        let (out, _keep) = UnixStream::pair().unwrap();
        let err = transmit(a.as_raw_fd(), out.as_raw_fd(), 0, 4).unwrap_err();
        assert!(is_unsupported(&err), "got {err:?}");
    }
}
