//! Recycled chunk buffers for the byte-moving path.
//!
//! Every flow needs a chunk-sized staging buffer. Allocating a fresh
//! `vec![0; chunk_size]` per flow (and re-allocating on event-model
//! admission) puts the allocator on the data path — exactly the kind of
//! per-transfer overhead the paper's performance argument (§7) says a
//! software appliance must shed. The [`BufPool`] checks out fixed-size
//! [`PooledBuf`]s and recycles them on drop, so steady-state transfers
//! perform **zero buffer allocations per flow** once the pool is warm.
//!
//! ## Poisoning
//!
//! In debug builds a buffer is filled with `0xA5` when it returns to the
//! pool. A flow that holds onto a slice past its buffer's return reads
//! poison instead of silently-correct stale bytes, so use-after-return
//! bugs surface in tests rather than production.
//!
//! ## Metrics
//!
//! `bufpool.reuse` / `bufpool.fresh` count checkouts served from the free
//! list versus fresh allocations; `bufpool.outstanding` gauges buffers
//! currently checked out. A steady-state assertion is simply
//! `reuse > 0 && fresh == warmup`.

use nest_obs::{Counter, Gauge, Obs};
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Debug-build poison byte written into buffers on return to the pool.
pub const POISON: u8 = 0xA5;

/// Point-in-time counters for a pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Checkouts served by recycling a returned buffer.
    pub reuse: u64,
    /// Checkouts that had to allocate.
    pub fresh: u64,
    /// Buffers currently checked out.
    pub outstanding: i64,
    /// Buffers parked on the free list.
    pub idle: usize,
}

/// Obs instrument handles, resolved once at registration.
struct PoolInstruments {
    reuse: Arc<Counter>,
    fresh: Arc<Counter>,
    outstanding: Arc<Gauge>,
}

struct PoolInner {
    chunk_size: usize,
    /// Bound on parked (idle) buffers; returns beyond this are dropped.
    max_idle: usize,
    free: Mutex<Vec<Vec<u8>>>,
    reuse: AtomicU64,
    fresh: AtomicU64,
    outstanding: AtomicI64,
    instruments: Mutex<Option<PoolInstruments>>,
}

impl PoolInner {
    fn note_return(&self, mut data: Vec<u8>) {
        // nestlint: allow(atomic-ordering): single-cell balance; the fetch_sub return value is the read, no other memory rides on it
        let after = self.outstanding.fetch_sub(1, Ordering::Relaxed) - 1;
        // Return-matching: every return must pair with a checkout. A
        // negative outstanding count means a buffer came back twice (or
        // from a foreign pool) — silent double-recycling corrupts flows.
        nest_check::invariant!(
            after >= 0,
            "bufpool outstanding went negative ({}): buffer returned without a matching checkout",
            after
        );
        if let Some(i) = &*self.instruments.lock() {
            i.outstanding.dec();
        }
        if data.len() != self.chunk_size {
            return; // foreign-sized buffer: never recycle
        }
        if cfg!(debug_assertions) {
            data.fill(POISON);
        }
        let mut free = self.free.lock();
        if free.len() < self.max_idle {
            free.push(data);
        }
        nest_check::invariant!(
            free.len() <= self.max_idle,
            "bufpool free list ({}) exceeds max_idle ({})",
            free.len(),
            self.max_idle
        );
    }
}

/// A fixed-chunk-size buffer pool. Clone-cheap (`Arc` inside); buffers
/// return themselves on [`PooledBuf`] drop.
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufPool")
            .field("chunk_size", &self.inner.chunk_size)
            .field("max_idle", &self.inner.max_idle)
            .field("reuse", &s.reuse)
            .field("fresh", &s.fresh)
            .field("outstanding", &s.outstanding)
            .finish()
    }
}

impl BufPool {
    /// Creates a pool of `chunk_size`-byte buffers keeping at most
    /// `max_idle` parked. `max_idle == 0` disables recycling (every
    /// checkout allocates — the ablation baseline).
    pub fn new(chunk_size: usize, max_idle: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                chunk_size: chunk_size.max(1),
                max_idle,
                free: Mutex::named("transfer.bufpool.free", 400, Vec::new()),
                reuse: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                outstanding: AtomicI64::new(0),
                instruments: Mutex::named("transfer.bufpool.instruments", 401, None),
            }),
        }
    }

    /// A pool that never recycles: every checkout is a fresh allocation.
    /// Used for the `pool=off` ablation while keeping one code path.
    pub fn disabled(chunk_size: usize) -> Self {
        Self::new(chunk_size, 0)
    }

    /// The chunk size this pool vends.
    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size
    }

    /// Whether recycling is active.
    pub fn enabled(&self) -> bool {
        self.inner.max_idle > 0
    }

    /// Registers `bufpool.{reuse,fresh,outstanding}` on an observability
    /// registry, back-filling counts accumulated before registration.
    pub fn register_obs(&self, obs: &Obs) {
        let m = &obs.metrics;
        let inst = PoolInstruments {
            reuse: m.counter("bufpool.reuse"),
            fresh: m.counter("bufpool.fresh"),
            outstanding: m.gauge("bufpool.outstanding"),
        };
        // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
        inst.reuse.add(self.inner.reuse.load(Ordering::Relaxed));
        // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
        inst.fresh.add(self.inner.fresh.load(Ordering::Relaxed));
        // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
        let outstanding = self.inner.outstanding.load(Ordering::Relaxed);
        inst.outstanding.set(outstanding);
        *self.inner.instruments.lock() = Some(inst);
    }

    /// Current counters.
    pub fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
            reuse: self.inner.reuse.load(Ordering::Relaxed),
            // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
            fresh: self.inner.fresh.load(Ordering::Relaxed),
            // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            idle: self.inner.free.lock().len(),
        }
    }

    /// Checks out a chunk buffer, recycling a parked one when available.
    pub fn checkout(&self) -> PooledBuf {
        let recycled = self.inner.free.lock().pop();
        let reused = recycled.is_some();
        // nestlint: allow(transfer-alloc): the pool's own cold-path allocation — every other site recycles through here
        let data = recycled.unwrap_or_else(|| vec![0; self.inner.chunk_size]);
        if reused {
            // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
            self.inner.reuse.fetch_add(1, Ordering::Relaxed);
        } else {
            // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
            self.inner.fresh.fetch_add(1, Ordering::Relaxed);
        }
        // nestlint: allow(atomic-ordering): single-cell statistic; atomicity alone carries the count
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = &*self.inner.instruments.lock() {
            if reused {
                i.reuse.inc();
            } else {
                i.fresh.inc();
            }
            i.outstanding.inc();
        }
        PooledBuf {
            data: Some(data),
            pool: Some(Arc::clone(&self.inner)),
        }
    }
}

/// A chunk buffer that returns itself to its pool on drop. Derefs to
/// `[u8]`; the flow uses it exactly like the `Vec<u8>` it replaces.
pub struct PooledBuf {
    data: Option<Vec<u8>>,
    pool: Option<Arc<PoolInner>>,
}

impl PooledBuf {
    /// A free-standing buffer with no pool behind it (callers that build
    /// flows without a [`BufPool`], e.g. unit tests and one-off pumps).
    pub fn detached(chunk_size: usize) -> Self {
        Self {
            // nestlint: allow(transfer-alloc): detached buffers are for pool-less one-off pumps, not the hot path
            data: Some(vec![0; chunk_size.max(1)]),
            pool: None,
        }
    }

    /// Whether this buffer recycles into a pool on drop.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }
}

impl Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_deref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.data.as_deref_mut().expect("buffer present until drop")
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.as_ref().map(Vec::len).unwrap_or(0))
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let (Some(data), Some(pool)) = (self.data.take(), self.pool.take()) {
            pool.note_return(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_buffer() {
        let pool = BufPool::new(1024, 4);
        let a = pool.checkout();
        assert_eq!(a.len(), 1024);
        drop(a);
        let b = pool.checkout();
        let s = pool.stats();
        assert_eq!(s.fresh, 1);
        assert_eq!(s.reuse, 1);
        assert_eq!(s.outstanding, 1);
        drop(b);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = BufPool::disabled(64);
        assert!(!pool.enabled());
        drop(pool.checkout());
        drop(pool.checkout());
        let s = pool.stats();
        assert_eq!(s.fresh, 2);
        assert_eq!(s.reuse, 0);
        assert_eq!(s.idle, 0);
    }

    #[test]
    fn max_idle_bounds_parked_buffers() {
        let pool = BufPool::new(16, 1);
        let a = pool.checkout();
        let b = pool.checkout();
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn returned_buffers_are_poisoned() {
        let pool = BufPool::new(8, 2);
        let mut a = pool.checkout();
        a.fill(7);
        drop(a);
        let b = pool.checkout();
        assert!(b.iter().all(|&x| x == POISON), "expected poison, got {b:?}");
    }

    #[test]
    fn detached_buffer_has_no_pool() {
        let b = PooledBuf::detached(32);
        assert!(!b.is_pooled());
        assert_eq!(b.len(), 32);
    }

    #[test]
    fn obs_registration_backfills() {
        let pool = BufPool::new(16, 2);
        drop(pool.checkout());
        let obs = nest_obs::Obs::default();
        pool.register_obs(&obs);
        assert_eq!(obs.metrics.counter("bufpool.fresh").get(), 1);
        drop(pool.checkout());
        assert_eq!(obs.metrics.counter("bufpool.reuse").get(), 1);
    }
}
