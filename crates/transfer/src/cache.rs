//! Gray-box model of the kernel buffer cache (paper §4.2).
//!
//! "By modeling the kernel buffer cache using gray-box techniques, NeST is
//! able to predict which requested files are likely to be cache resident and
//! can schedule them before requests for files which will need to be fetched
//! from secondary storage."
//!
//! The model follows the gray-box approach of Arpaci-Dusseau & Burnett:
//! NeST cannot see the kernel's cache, but it *can* observe its own file
//! accesses, assume an LRU-like replacement discipline and a known cache
//! size, and simulate what the kernel most likely holds. The simulation is
//! an LRU list over file extents with a byte-capacity bound.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An LRU simulation of the host buffer cache, keyed by file name.
///
/// Whole-file granularity: NeST workloads read files end to end, so a file
/// is either fully resident or being evicted tail-first; we track the
/// resident byte count per file.
///
/// ```
/// use nest_transfer::cache::CacheModel;
///
/// let cache = CacheModel::new(1000);
/// cache.observe_access("hot.dat", 400);
/// assert!(cache.predict_resident("hot.dat", 400));
/// // Two more files overflow the 1000-byte cache: LRU evicts hot.dat.
/// cache.observe_access("a.dat", 400);
/// cache.observe_access("b.dat", 400);
/// assert!(!cache.predict_resident("hot.dat", 400));
/// ```
#[derive(Debug)]
pub struct CacheModel {
    inner: Mutex<CacheState>,
}

#[derive(Debug, Clone, Copy)]
struct FileEntry {
    /// Resident bytes for this file.
    bytes: u64,
    /// Last-use stamp; the key of this file's slot in `order`.
    stamp: u64,
}

/// The model's state. The LRU order is a stamp-indexed map rather than a
/// `Vec<String>`: refresh/evict are `O(log n)` map operations instead of
/// `O(n)` vector scans, and keys are shared `Arc<str>`s so the observe
/// path performs no string allocation for files the model already knows —
/// this sits on every chunk-served request, so it must not grow with the
/// working set.
#[derive(Debug)]
struct CacheState {
    capacity: u64,
    used: u64,
    /// file → (resident bytes, LRU stamp). `Arc<str>` keys are shared
    /// with `order`, so lookups take `&str` and refreshes clone a
    /// refcount, not a string.
    resident: HashMap<Arc<str>, FileEntry>,
    /// LRU order: stamp → file; first entry = coldest. Eviction is
    /// `pop_first`, refresh is remove + insert at a new stamp.
    order: BTreeMap<u64, Arc<str>>,
    /// Monotonic counter backing the stamps.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheModel {
    /// Creates a model of a cache holding `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            inner: Mutex::named(
                "transfer.cache",
                210,
                CacheState {
                    capacity,
                    used: 0,
                    resident: HashMap::new(),
                    order: BTreeMap::new(),
                    tick: 0,
                    hits: 0,
                    misses: 0,
                },
            ),
        }
    }

    /// The modelled capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    /// Bytes currently believed resident.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Predicts whether a read of `file` (of `size` bytes) would hit: true
    /// when the model believes the whole file is resident.
    pub fn predict_resident(&self, file: &str, size: u64) -> bool {
        let st = self.inner.lock();
        st.resident.get(file).is_some_and(|e| e.bytes >= size)
    }

    /// Records that NeST served a read or write of `file` with `size`
    /// bytes: the kernel will now (most likely) hold it, evicting LRU
    /// data. Takes `&str` and allocates only the first time a file is
    /// seen; refreshes of known files are allocation-free `O(log n)`.
    pub fn observe_access(&self, file: &str, size: u64) {
        let mut st = self.inner.lock();
        let was_hit = st.resident.get(file).is_some_and(|e| e.bytes >= size);
        if was_hit {
            st.hits += 1;
        } else {
            st.misses += 1;
        }

        // A file larger than the whole cache leaves only its tail resident;
        // model that as "not resident" (predicting a hit for it would be
        // wrong for a subsequent full-file read). It flushed everything
        // else on its way through.
        if size > st.capacity {
            st.resident.clear();
            st.order.clear();
            st.used = 0;
            return;
        }

        // Refresh or insert this file at the MRU end. A refresh reuses the
        // existing shared key (refcount bump, no allocation).
        st.tick += 1;
        let stamp = st.tick;
        let key: Arc<str> = match st.resident.remove_entry(file) {
            Some((key, old)) => {
                st.used -= old.bytes;
                st.order.remove(&old.stamp);
                key
            }
            None => Arc::from(file),
        };
        // Evict from the LRU end until it fits.
        while st.used + size > st.capacity {
            let Some((_, victim)) = st.order.pop_first() else {
                break;
            };
            if let Some(e) = st.resident.remove(&*victim) {
                st.used -= e.bytes;
            }
        }
        st.order.insert(stamp, Arc::clone(&key));
        st.resident.insert(key, FileEntry { bytes: size, stamp });
        st.used += size;
    }

    /// Invalidates a file (it was deleted or truncated).
    pub fn invalidate(&self, file: &str) {
        let mut st = self.inner.lock();
        if let Some(e) = st.resident.remove(file) {
            st.used -= e.bytes;
            st.order.remove(&e.stamp);
        }
    }

    /// Observed (hits, misses) since creation — the model's own accuracy
    /// bookkeeping, useful for adaptive tuning and tests.
    pub fn hit_stats(&self) -> (u64, u64) {
        let st = self.inner.lock();
        (st.hits, st.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recently_accessed_files_predicted_resident() {
        let c = CacheModel::new(1000);
        c.observe_access("a", 300);
        assert!(c.predict_resident("a", 300));
        assert!(!c.predict_resident("b", 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = CacheModel::new(1000);
        c.observe_access("a", 400);
        c.observe_access("b", 400);
        // Touch a so b becomes LRU.
        c.observe_access("a", 400);
        c.observe_access("c", 400); // evicts b
        assert!(c.predict_resident("a", 400));
        assert!(!c.predict_resident("b", 400));
        assert!(c.predict_resident("c", 400));
        assert_eq!(c.used(), 800);
    }

    #[test]
    fn oversized_file_flushes_cache_and_stays_cold() {
        let c = CacheModel::new(1000);
        c.observe_access("small", 500);
        c.observe_access("huge", 5000);
        assert!(!c.predict_resident("huge", 5000));
        assert!(!c.predict_resident("small", 500));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn invalidate_removes_residency() {
        let c = CacheModel::new(1000);
        c.observe_access("f", 100);
        c.invalidate("f");
        assert!(!c.predict_resident("f", 100));
        assert_eq!(c.used(), 0);
        // Invalidating again is a no-op.
        c.invalidate("f");
    }

    #[test]
    fn resize_via_reaccess_updates_bytes() {
        let c = CacheModel::new(1000);
        c.observe_access("f", 100);
        c.observe_access("f", 700); // file grew
        assert_eq!(c.used(), 700);
        assert!(c.predict_resident("f", 700));
        assert!(!c.predict_resident("f", 800));
    }

    #[test]
    fn hit_miss_accounting() {
        let c = CacheModel::new(1000);
        c.observe_access("a", 100); // miss
        c.observe_access("a", 100); // hit
        c.observe_access("b", 100); // miss
        assert_eq!(c.hit_stats(), (1, 2));
    }

    #[test]
    fn exact_fit_works() {
        let c = CacheModel::new(100);
        c.observe_access("a", 100);
        assert!(c.predict_resident("a", 100));
        c.observe_access("b", 100);
        assert!(!c.predict_resident("a", 100));
        assert!(c.predict_resident("b", 100));
    }
}
