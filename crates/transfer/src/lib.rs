//! # nest-transfer
//!
//! The NeST **transfer manager** (paper §4): "at the heart of data flow
//! within NeST ... responsible for moving data between disk and network for
//! a given request. The transfer manager is protocol agnostic."
//!
//! * [`flow`] — a transfer is a [`flow::Flow`]: a chunk-oriented pump
//!   between a [`flow::DataSource`] and a [`flow::DataSink`], tagged with
//!   its protocol class so schedulers can treat classes differently.
//! * [`sched`] — pluggable schedulers: FCFS, **proportional-share stride
//!   scheduling with byte-based strides** (paper §4.2, after Waldspurger &
//!   Weihl), and **cache-aware** scheduling that serves predicted
//!   cache-resident files first. Includes the non-work-conserving variant
//!   the paper says it was "currently implementing".
//! * [`bufpool`] — recycled chunk staging buffers, so steady-state
//!   transfers allocate nothing per flow or per chunk.
//! * [`cache`] — the gray-box buffer-cache model behind cache-aware
//!   scheduling: an LRU simulation of the kernel page cache.
//! * [`concurrency`] — the three concurrency models (threads, processes,
//!   events) behind one executor interface.
//! * [`adaptive`] — the model selector: "distributing requests among the
//!   architectures equally at first, monitoring their progress, and then
//!   slowly biasing requests toward the most effective choice."
//! * [`manager`] — the [`manager::TransferManager`] façade: admits flows,
//!   picks a model, applies the scheduling policy, and reports per-class
//!   statistics.
//! * [`fairness`] — Jain's fairness index, the metric Figure 4 reports.
//! * [`fault`] — the failure domain: transient-vs-permanent error
//!   classification, retry/backoff policies, and deterministic
//!   fault-injection sources/sinks for testing the failure path.
//! * [`zerocopy`] — the `sendfile`/`copy_file_range`/`writev` primitives
//!   behind the non-transforming disk→socket fast path, with the
//!   unsupported-fd classification that demotes a flow back to the
//!   pooled loop.

pub mod adaptive;
pub mod bufpool;
pub mod cache;
pub mod concurrency;
pub mod fairness;
pub mod fault;
pub mod flow;
pub mod manager;
pub mod sched;
pub mod zerocopy;

pub use adaptive::AdaptiveSelector;
pub use bufpool::{BufPool, BufPoolStats, PooledBuf};
pub use cache::CacheModel;
pub use concurrency::ModelKind;
pub use fairness::jain_fairness;
pub use fault::{
    classify, ErrorClass, FailureKind, FaultBudget, FaultingSink, FaultingSource, FlakySource,
    RetryPolicy,
};
pub use flow::{DataSink, DataSource, Flow, FlowId, FlowMeta, MemSource, RawWindow};
pub use manager::{SchedPolicy, TransferManager, TransferStats};
pub use sched::{CacheAwareScheduler, FcfsScheduler, Scheduler, StrideScheduler};
