//! Jain's fairness index (paper §7.2, footnote 2).
//!
//! For N components each with ratio `x_i` of delivered to desired
//! allocation, fairness is `(Σx)² / (N · Σx²)`; 1.0 is a perfectly
//! proportional allocation.

/// Computes Jain's fairness index over allocation ratios.
///
/// Returns 1.0 for an empty slice (vacuously fair) and handles all-zero
/// inputs without dividing by zero.
///
/// ```
/// use nest_transfer::fairness::jain_fairness;
/// assert_eq!(jain_fairness(&[1.0, 1.0, 1.0, 1.0]), 1.0);
/// assert_eq!(jain_fairness(&[1.0, 0.0, 0.0, 0.0]), 0.25);
/// ```
pub fn jain_fairness(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sum_sq: f64 = ratios.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (ratios.len() as f64 * sum_sq)
}

/// Convenience: fairness of delivered bandwidths against desired weights.
/// `delivered[i]` is compared to `desired[i]`; slices must be equal length.
pub fn jain_fairness_weighted(delivered: &[f64], desired: &[f64]) -> f64 {
    assert_eq!(delivered.len(), desired.len());
    let ratios: Vec<f64> = delivered
        .iter()
        .zip(desired)
        .map(|(d, w)| if *w > 0.0 { d / w } else { 0.0 })
        .collect();
    jain_fairness(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_allocation_is_one() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Any uniform scaling of ratios is still perfectly fair.
        assert!((jain_fairness(&[2.5, 2.5, 2.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_component_is_one() {
        assert!((jain_fairness(&[0.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn totally_unfair_approaches_one_over_n() {
        let f = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn moderate_skew_between_bounds() {
        let f = jain_fairness(&[1.0, 1.0, 1.0, 0.5]);
        assert!(f > 0.25 && f < 1.0);
    }

    #[test]
    fn empty_and_zero_are_vacuously_fair() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn weighted_form_matches_manual_ratios() {
        // delivered 10,20 vs desired 1:2 is perfectly fair.
        let f = jain_fairness_weighted(&[10.0, 20.0], &[1.0, 2.0]);
        assert!((f - 1.0).abs() < 1e-12);
        // delivered equal despite desired 1:2 is not.
        let f = jain_fairness_weighted(&[10.0, 10.0], &[1.0, 2.0]);
        assert!(f < 1.0);
    }
}
