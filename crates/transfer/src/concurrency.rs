//! The three concurrency models (paper §4.1).
//!
//! "NeST currently supports three models of concurrency (threads, processes,
//! and events)... there is no single standard for concurrency across
//! operating systems: on some platforms, the best choice is to use threads,
//! on others, processes, and in other cases, events."
//!
//! * **Events** — a single engine thread interleaves all flows chunk by
//!   chunk under the active [`crate::sched::Scheduler`]. Cheapest dispatch,
//!   no context switches; serialized I/O.
//! * **Threads** — one thread per transfer, pumped to completion. Pays
//!   thread spawn + context-switch cost; overlaps I/O.
//! * **Processes** — transfers dispatched to worker *processes*. Rust's
//!   standard library cannot pass file descriptors between processes, so
//!   the launcher is pluggable ([`ProcessLauncher`]): `nest-core` provides
//!   a real child-process pool that stages file I/O over pipes, and the
//!   default in-crate launcher emulates the model's cost profile
//!   (per-dispatch process overhead) on threads. The simulation substrate
//!   costs the model directly.

use crate::fault::{cancelled_error, classify, deadline_error, ErrorClass, FailureKind};
use crate::flow::{Flow, StepOutcome};
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The available concurrency models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// One OS thread per transfer.
    Threads,
    /// Worker processes (or an emulation; see [`ProcessLauncher`]).
    Processes,
    /// Single-threaded event loop.
    Events,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::Threads => write!(f, "threads"),
            ModelKind::Processes => write!(f, "processes"),
            ModelKind::Events => write!(f, "events"),
        }
    }
}

/// What an executor reports when a flow completes.
#[derive(Debug)]
pub struct Completion {
    /// The finished flow's metadata.
    pub meta: crate::flow::FlowMeta,
    /// Bytes moved (by the final attempt, on failure).
    pub bytes: u64,
    /// Wall-clock duration from dispatch to completion.
    pub elapsed: Duration,
    /// Which model ran the flow.
    pub model: ModelKind,
    /// The I/O outcome.
    pub result: io::Result<()>,
    /// Transient-failure retries consumed before the final outcome.
    pub retries: u32,
    /// Whether terminal-failure sink cleanup ([`crate::flow::DataSink::abort`])
    /// was performed.
    pub aborted: bool,
    /// Failure category when `result` is `Err` (I/O vs deadline vs
    /// cancellation), so the engine's instruments stay exact.
    pub failure: Option<FailureKind>,
    /// Whether any bytes moved through the zero-copy (`sendfile`) path.
    pub zc_engaged: bool,
    /// Whether the flow attempted zero-copy and was demoted to the pooled
    /// loop (capability withdrawn or fd pair unsupported).
    pub zc_fell_back: bool,
}

impl Completion {
    /// Builds a completion from a plain I/O result (no retries, no abort
    /// performed). Failures are classed as ordinary I/O failures.
    pub fn from_result(
        meta: crate::flow::FlowMeta,
        bytes: u64,
        elapsed: Duration,
        model: ModelKind,
        result: io::Result<()>,
    ) -> Self {
        let failure = result.as_ref().err().map(|_| FailureKind::Io);
        Self {
            meta,
            bytes,
            elapsed,
            model,
            result,
            retries: 0,
            aborted: false,
            failure,
            zc_engaged: false,
            zc_fell_back: false,
        }
    }
}

/// Launches a flow under the process model.
///
/// The default [`EmulatedProcessLauncher`] runs the flow on a fresh thread
/// after paying a configurable per-dispatch overhead, reproducing the
/// model's cost profile. `nest-core` provides a launcher backed by real
/// child worker processes for disk-sourced flows.
pub trait ProcessLauncher: Send + Sync + 'static {
    /// Runs the flow to completion, invoking `on_done` with the outcome.
    fn launch(&self, flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>);
}

/// Thread-backed emulation of the process model with explicit dispatch
/// overhead (process creation is the model's defining cost).
pub struct EmulatedProcessLauncher {
    /// Simulated per-dispatch process-creation cost.
    pub dispatch_overhead: Duration,
}

impl EmulatedProcessLauncher {
    /// Creates a launcher with the given per-dispatch overhead.
    pub fn new(dispatch_overhead: Duration) -> Self {
        Self { dispatch_overhead }
    }
}

impl Default for EmulatedProcessLauncher {
    fn default() -> Self {
        // A fork+exec on 2002-era hardware was on the order of a
        // millisecond; modern machines are faster but the *relative* cost
        // versus threads/events is what matters to the adaptation logic.
        Self::new(Duration::from_micros(500))
    }
}

impl ProcessLauncher for EmulatedProcessLauncher {
    fn launch(&self, flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>) {
        let overhead = self.dispatch_overhead;
        std::thread::spawn(move || {
            let start = Instant::now();
            if !overhead.is_zero() {
                std::thread::sleep(overhead);
            }
            let completion = run_flow(flow, ModelKind::Processes, start);
            on_done(completion);
        });
    }
}

/// One attempt's outcome, distinguished so the retry loop knows what is
/// retryable.
enum PumpEnd {
    Finished,
    Cancelled,
    Deadline,
    Io(io::Error),
}

/// Pumps a flow chunk by chunk, honoring the cancellation token and the
/// absolute deadline between chunks.
fn pump(flow: &mut Flow, deadline: Option<Instant>) -> PumpEnd {
    loop {
        if flow.meta.is_cancelled() {
            return PumpEnd::Cancelled;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return PumpEnd::Deadline;
        }
        match flow.step() {
            Ok(StepOutcome::Moved(_)) => continue,
            Ok(StepOutcome::Finished) => return PumpEnd::Finished,
            Err(e) => return PumpEnd::Io(e),
        }
    }
}

/// Runs a flow to completion on the current thread, producing a completion
/// record. Shared by the thread and process executors.
///
/// This is the external models' failure domain: transient I/O errors are
/// retried (with backoff) within the flow's
/// [`crate::fault::RetryPolicy`] budget as long as both endpoints can be
/// replayed; the cancellation token and deadline are honored between
/// chunks; and a terminal failure aborts the sink so partial output is
/// cleaned up.
pub fn run_flow(mut flow: Flow, model: ModelKind, start: Instant) -> Completion {
    let deadline = flow.meta.deadline.map(|d| start + d);
    let policy = flow.meta.retry.clone();
    let mut retries = 0u32;
    let done = |flow: &Flow, result: io::Result<()>, retries, aborted, failure| Completion {
        bytes: flow.moved(),
        meta: flow.meta.clone(),
        elapsed: start.elapsed(),
        model,
        result,
        retries,
        aborted,
        failure,
        zc_engaged: flow.zc_engaged(),
        zc_fell_back: flow.zc_fell_back(),
    };
    loop {
        match pump(&mut flow, deadline) {
            PumpEnd::Finished => return done(&flow, Ok(()), retries, false, None),
            PumpEnd::Cancelled => {
                flow.abort();
                return done(
                    &flow,
                    Err(cancelled_error()),
                    retries,
                    true,
                    Some(FailureKind::Cancelled),
                );
            }
            PumpEnd::Deadline => {
                flow.abort();
                return done(
                    &flow,
                    Err(deadline_error()),
                    retries,
                    true,
                    Some(FailureKind::DeadlineExceeded),
                );
            }
            PumpEnd::Io(e) => {
                let backoff = policy.backoff(retries + 1);
                let within_deadline = deadline.is_none_or(|d| Instant::now() + backoff < d);
                if classify(e.kind()) == ErrorClass::Transient
                    && policy.allows_retry(retries)
                    && within_deadline
                    && flow.reset_for_retry().is_ok()
                {
                    retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    continue;
                }
                flow.abort();
                return done(&flow, Err(e), retries, true, Some(FailureKind::Io));
            }
        }
    }
}

/// Spawns a thread-model execution of a flow.
pub fn launch_thread(flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>) {
    std::thread::spawn(move || {
        let start = Instant::now();
        let completion = run_flow(flow, ModelKind::Threads, start);
        on_done(completion);
    });
}

/// A shared handle to a process launcher.
pub type SharedProcessLauncher = Arc<dyn ProcessLauncher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowId, FlowMeta, PatternSource};
    use std::sync::mpsc;

    fn test_flow(id: u64, len: u64) -> Flow {
        Flow::new(
            FlowMeta::new(FlowId(id), "test", Some(len)),
            Box::new(PatternSource::new(len)),
            Box::new(Vec::new()),
            4096,
        )
    }

    #[test]
    fn thread_model_completes_flow() {
        let (tx, rx) = mpsc::channel();
        launch_thread(
            test_flow(1, 100_000),
            Box::new(move |c| tx.send(c).unwrap()),
        );
        let c = rx.recv().unwrap();
        assert_eq!(c.bytes, 100_000);
        assert_eq!(c.model, ModelKind::Threads);
        assert!(c.result.is_ok());
    }

    #[test]
    fn emulated_process_model_pays_overhead() {
        let launcher = EmulatedProcessLauncher::new(Duration::from_millis(20));
        let (tx, rx) = mpsc::channel();
        launcher.launch(test_flow(2, 10), Box::new(move |c| tx.send(c).unwrap()));
        let c = rx.recv().unwrap();
        assert_eq!(c.model, ModelKind::Processes);
        assert!(
            c.elapsed >= Duration::from_millis(20),
            "elapsed {:?} below dispatch overhead",
            c.elapsed
        );
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::Threads.to_string(), "threads");
        assert_eq!(ModelKind::Processes.to_string(), "processes");
        assert_eq!(ModelKind::Events.to_string(), "events");
    }

    #[test]
    fn run_flow_reports_errors() {
        struct FailingSource;
        impl crate::flow::DataSource for FailingSource {
            fn read_chunk(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "boom"))
            }
        }
        let flow = Flow::new(
            FlowMeta::new(FlowId(3), "test", None),
            Box::new(FailingSource),
            Box::new(Vec::new()),
            1024,
        );
        let c = run_flow(flow, ModelKind::Events, Instant::now());
        assert!(c.result.is_err());
        assert_eq!(c.bytes, 0);
    }
}
