//! Failure classification, retry policy, and deterministic fault injection.
//!
//! Real Grid storage peers treat transient-failure recovery as table
//! stakes: GridFTP specifies restartable, fault-tolerant transfers and
//! CASTOR's stager is built around retrying failed moves. This module is
//! the transfer manager's failure domain:
//!
//! * [`ErrorClass`] / [`classify`] — split `io::ErrorKind`s into transient
//!   faults (worth retrying) and permanent ones (fail fast).
//! * [`RetryPolicy`] — an attempt budget with exponential backoff and
//!   deterministic jitter, carried per flow in
//!   [`crate::flow::FlowMeta::retry`].
//! * [`FaultingSource`] / [`FaultingSink`] — deterministic wrappers that
//!   fail at byte *N* with a chosen `ErrorKind`, either a fixed number of
//!   times (to exercise the retry path) or on every attempt (to exercise
//!   the abort path).
//! * [`FlakySource`] — seeded probabilistic faults for stress loops.
//!
//! The injection wrappers are a supported public testing API: protocol
//! handlers, the simulator, and downstream users can wrap any
//! `DataSource`/`DataSink` to prove their cleanup paths work.

use crate::flow::{DataSink, DataSource};
use std::io;
use std::time::Duration;

/// How a transfer failure should be treated by the retry machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying after a backoff (network hiccups, interruptions).
    Transient,
    /// Retrying cannot help (missing file, permission, corrupt request).
    Permanent,
}

/// Classifies an `io::ErrorKind` into a retry class.
///
/// Connection-level and timing-level faults are transient; namespace,
/// permission, and data-integrity faults are permanent.
pub fn classify(kind: io::ErrorKind) -> ErrorClass {
    use io::ErrorKind::*;
    match kind {
        Interrupted | WouldBlock | TimedOut | ConnectionReset | ConnectionAborted
        | ConnectionRefused | NotConnected | HostUnreachable | NetworkUnreachable | NetworkDown
        | ResourceBusy => ErrorClass::Transient,
        _ => ErrorClass::Permanent,
    }
}

/// Why a transfer ultimately failed (beyond the raw `io::Error`), so the
/// engine can count deadline expiries and cancellations separately from
/// ordinary I/O failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An I/O error (after any retries were exhausted or were not
    /// applicable).
    Io,
    /// The flow's deadline elapsed before it finished.
    DeadlineExceeded,
    /// The submitter cancelled the flow via
    /// [`crate::manager::TransferHandle::cancel`].
    Cancelled,
}

/// The error returned when a flow's deadline elapses.
pub fn deadline_error() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "transfer deadline exceeded")
}

/// The error returned when a flow is cancelled.
pub fn cancelled_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "transfer cancelled")
}

/// Per-flow retry budget: exponential backoff with deterministic jitter.
///
/// `max_attempts` counts *total* attempts, so `1` means "no retries" —
/// the default for flows whose endpoints cannot be replayed (live
/// sockets). Retries additionally require the flow's source to support
/// [`DataSource::rewind`] and its sink [`DataSink::reset`]; a flow whose
/// endpoints cannot be replayed fails on the first error regardless of
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (same seed ⇒ same schedule).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The appliance default: 4 total attempts, 5 ms base backoff capped
    /// at 500 ms.
    pub fn standard() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// Overrides the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the jitter seed (tests pin this for determinism).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Whether another attempt is allowed after `retries_so_far` retries.
    pub fn allows_retry(&self, retries_so_far: u32) -> bool {
        retries_so_far + 1 < self.max_attempts
    }

    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped, with deterministic jitter in the upper half of the window
    /// (`[cap/2, cap]`), so concurrent retries decorrelate without a
    /// global RNG.
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = retry.saturating_sub(1).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        let cap = exp.min(self.max_backoff.max(self.base_backoff));
        let cap_us = cap.as_micros().min(u128::from(u64::MAX)) as u64;
        let jitter_span = cap_us / 2;
        if jitter_span == 0 {
            return cap;
        }
        let r = splitmix64(self.jitter_seed ^ u64::from(retry).wrapping_mul(0x9e37_79b9));
        Duration::from_micros(cap_us - jitter_span + r % (jitter_span + 1))
    }
}

/// The default jitter seed; callers pin their own via
/// [`RetryPolicy::with_seed`] when they need reproducible schedules.
const DEFAULT_JITTER_SEED: u64 = 0x5eed_5eed_5eed_5eed;

/// SplitMix64: tiny, high-quality deterministic mixing for jitter and the
/// flaky source (no dependency on a global RNG).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many times an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultBudget {
    /// Fire on the first `n` attempts that reach the trigger, then behave
    /// normally (exercises the retry-then-succeed path).
    Times(u32),
    /// Fire on every attempt (exercises the retries-exhausted/abort path).
    Always,
}

impl FaultBudget {
    fn take(&mut self) -> bool {
        match self {
            FaultBudget::Always => true,
            FaultBudget::Times(0) => false,
            FaultBudget::Times(n) => {
                *n -= 1;
                true
            }
        }
    }

    /// Whether the budget would still fire, without consuming it.
    fn armed(&self) -> bool {
        match self {
            FaultBudget::Always => true,
            FaultBudget::Times(n) => *n > 0,
        }
    }
}

/// A [`DataSource`] wrapper that fails with a chosen `ErrorKind` once the
/// cumulative bytes read reach `fail_at`. Deterministic: same
/// construction, same behavior.
pub struct FaultingSource<S> {
    inner: S,
    fail_at: u64,
    kind: io::ErrorKind,
    budget: FaultBudget,
    read: u64,
}

impl<S: DataSource> FaultingSource<S> {
    /// Fails reads with `kind` once `fail_at` bytes have been produced,
    /// as many times as `budget` allows.
    pub fn new(inner: S, fail_at: u64, kind: io::ErrorKind, budget: FaultBudget) -> Self {
        Self {
            inner,
            fail_at,
            kind,
            budget,
            read: 0,
        }
    }
}

impl<S: DataSource> DataSource for FaultingSource<S> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read >= self.fail_at && self.budget.take() {
            return Err(io::Error::new(self.kind, "injected source fault"));
        }
        let n = self.inner.read_chunk(buf)?;
        self.read += n as u64;
        Ok(n)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.inner.rewind()?;
        self.read = 0;
        Ok(())
    }

    /// Forwards the zero-copy capability until the trigger byte, then
    /// withdraws it — a deterministic way to prove a `sendfile` flow
    /// demotes to the pooled loop mid-transfer without corrupting or
    /// duplicating wire bytes. The budget is only *peeked* here: the
    /// injected error itself still fires (and is consumed) in
    /// `read_chunk`, which the flow falls back to after the withdrawal.
    fn raw_window(&mut self) -> Option<crate::flow::RawWindow> {
        if self.read >= self.fail_at && self.budget.armed() {
            return None; // injected capability withdrawal
        }
        self.inner.raw_window()
    }

    fn zc_advance(&mut self, n: u64) {
        self.read += n;
        self.inner.zc_advance(n);
    }
}

/// A [`DataSink`] wrapper that fails with a chosen `ErrorKind` once the
/// cumulative bytes written reach `fail_at`.
pub struct FaultingSink<K> {
    inner: K,
    fail_at: u64,
    kind: io::ErrorKind,
    budget: FaultBudget,
    written: u64,
    /// Number of times [`DataSink::abort`] reached this sink (cleanup
    /// observability for tests).
    aborts: u32,
}

impl<K: DataSink> FaultingSink<K> {
    /// Fails writes with `kind` once `fail_at` bytes have been accepted,
    /// as many times as `budget` allows.
    pub fn new(inner: K, fail_at: u64, kind: io::ErrorKind, budget: FaultBudget) -> Self {
        Self {
            inner,
            fail_at,
            kind,
            budget,
            written: 0,
            aborts: 0,
        }
    }

    /// How many times the engine aborted this sink.
    pub fn abort_count(&self) -> u32 {
        self.aborts
    }
}

impl<K: DataSink> DataSink for FaultingSink<K> {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if self.written + data.len() as u64 > self.fail_at && self.budget.take() {
            return Err(io::Error::new(self.kind, "injected sink fault"));
        }
        self.inner.write_chunk(data)?;
        self.written += data.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }

    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()?;
        self.written = 0;
        Ok(())
    }

    fn abort(&mut self) {
        self.aborts += 1;
        self.inner.abort();
    }
}

/// A [`DataSource`] wrapper that injects seeded, reproducible transient
/// faults with probability `fail_per_mille`/1000 per chunk. Used by the
/// `fault_stress` loop; the same seed always yields the same fault
/// schedule.
pub struct FlakySource<S> {
    inner: S,
    fail_per_mille: u32,
    kind: io::ErrorKind,
    state: u64,
    /// Saved so `rewind` replays the *remaining* schedule deterministically
    /// per attempt (each attempt draws fresh values, like a real network).
    draws: u64,
}

impl<S: DataSource> FlakySource<S> {
    /// Wraps `inner`; each chunk fails with probability
    /// `fail_per_mille / 1000` using a SplitMix64 stream from `seed`.
    pub fn new(inner: S, fail_per_mille: u32, kind: io::ErrorKind, seed: u64) -> Self {
        Self {
            inner,
            fail_per_mille: fail_per_mille.min(1000),
            kind,
            state: seed,
            draws: 0,
        }
    }
}

impl<S: DataSource> DataSource for FlakySource<S> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.draws += 1;
        let r = splitmix64(self.state.wrapping_add(self.draws));
        if r % 1000 < u64::from(self.fail_per_mille) {
            return Err(io::Error::new(self.kind, "flaky source fault"));
        }
        self.inner.read_chunk(buf)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.inner.rewind()
        // `draws` keeps advancing: each retry sees a fresh slice of the
        // deterministic stream, so a flaky flow eventually gets through.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{CountingSink, PatternSource};

    #[test]
    fn classify_splits_transient_from_permanent() {
        assert_eq!(classify(io::ErrorKind::TimedOut), ErrorClass::Transient);
        assert_eq!(
            classify(io::ErrorKind::ConnectionReset),
            ErrorClass::Transient
        );
        assert_eq!(classify(io::ErrorKind::Interrupted), ErrorClass::Transient);
        assert_eq!(classify(io::ErrorKind::NotFound), ErrorClass::Permanent);
        assert_eq!(
            classify(io::ErrorKind::PermissionDenied),
            ErrorClass::Permanent
        );
        assert_eq!(classify(io::ErrorKind::Other), ErrorClass::Permanent);
    }

    #[test]
    fn retry_policy_budget_and_backoff() {
        let p = RetryPolicy::standard().with_seed(7);
        assert!(p.allows_retry(0));
        assert!(p.allows_retry(2));
        assert!(!p.allows_retry(3)); // 4 total attempts = 3 retries
                                     // Backoff grows (modulo jitter the cap doubles each retry).
        let b1 = p.backoff(1);
        let b4 = p.backoff(4);
        assert!(b1 >= p.base_backoff / 2, "{:?}", b1);
        assert!(b4 > b1, "{:?} vs {:?}", b4, b1);
        assert!(b4 <= p.max_backoff);
        // Deterministic: same policy, same schedule.
        assert_eq!(
            p.backoff(2),
            RetryPolicy::standard().with_seed(7).backoff(2)
        );
        // No-retry policy backs off not at all.
        assert_eq!(RetryPolicy::none().backoff(1), Duration::ZERO);
    }

    #[test]
    fn faulting_source_fails_at_byte_n_then_recovers() {
        let mut src = FaultingSource::new(
            PatternSource::new(1000),
            256,
            io::ErrorKind::ConnectionReset,
            FaultBudget::Times(1),
        );
        let mut buf = [0u8; 256];
        assert_eq!(src.read_chunk(&mut buf).unwrap(), 256);
        let err = src.read_chunk(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Budget exhausted: subsequent reads pass through.
        assert_eq!(src.read_chunk(&mut buf).unwrap(), 256);
    }

    #[test]
    fn faulting_source_always_refires_after_rewind() {
        let mut src = FaultingSource::new(
            PatternSource::new(1000),
            0,
            io::ErrorKind::TimedOut,
            FaultBudget::Always,
        );
        let mut buf = [0u8; 64];
        assert!(src.read_chunk(&mut buf).is_err());
        src.rewind().unwrap();
        assert!(src.read_chunk(&mut buf).is_err());
    }

    #[test]
    fn faulting_sink_counts_aborts() {
        let mut sink = FaultingSink::new(
            CountingSink::default(),
            10,
            io::ErrorKind::Other,
            FaultBudget::Always,
        );
        sink.write_chunk(&[0u8; 8]).unwrap();
        assert!(sink.write_chunk(&[0u8; 8]).is_err());
        sink.abort();
        assert_eq!(sink.abort_count(), 1);
    }

    #[test]
    fn flaky_source_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FlakySource::new(
                PatternSource::new(64 * 1024),
                200,
                io::ErrorKind::ConnectionReset,
                seed,
            );
            let mut buf = [0u8; 1024];
            let mut pattern = Vec::new();
            for _ in 0..64 {
                pattern.push(s.read_chunk(&mut buf).is_ok());
            }
            pattern
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // Roughly 20% failures at 200 per mille.
        let fails = run(42).iter().filter(|ok| !**ok).count();
        assert!((3..30).contains(&fails), "fails = {}", fails);
    }
}
