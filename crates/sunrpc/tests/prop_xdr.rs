//! Property tests for the XDR codec and RPC message framing.

use nest_sunrpc::rpc::RpcMessage;
use nest_sunrpc::xdr::{padded, XdrDecoder, XdrEncoder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn u32_i64_roundtrip(a in any::<u32>(), b in any::<i64>()) {
        let mut e = XdrEncoder::new();
        e.put_u32(a).put_i64(b);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_u32().unwrap(), a);
        prop_assert_eq!(d.get_i64().unwrap(), b);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn opaque_roundtrip_any_length(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut e = XdrEncoder::new();
        e.put_opaque(&data);
        let bytes = e.into_bytes();
        // Encoded size is always 4 (length) + padded payload.
        prop_assert_eq!(bytes.len(), 4 + padded(data.len()));
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_opaque().unwrap(), &data[..]);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,64}") {
        let mut e = XdrEncoder::new();
        e.put_str(&s);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_str().unwrap(), s);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        n in any::<i32>(),
        flag in any::<bool>(),
        items in prop::collection::vec(any::<u64>(), 0..16),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut e = XdrEncoder::new();
        e.put_i32(n).put_bool(flag);
        e.put_array(&items, |e, v| { e.put_u64(*v); });
        e.put_opaque(&tail);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_i32().unwrap(), n);
        prop_assert_eq!(d.get_bool().unwrap(), flag);
        prop_assert_eq!(d.get_array(|d| d.get_u64()).unwrap(), items);
        prop_assert_eq!(d.get_opaque().unwrap(), &tail[..]);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn rpc_call_roundtrip(
        xid in any::<u32>(),
        prog in any::<u32>(),
        vers in any::<u32>(),
        proc in any::<u32>(),
        // Args must be 4-byte aligned (they are always XDR-encoded payloads
        // in practice); the header decoder takes the remainder verbatim.
        words in prop::collection::vec(any::<u32>(), 0..32),
    ) {
        let mut args = Vec::new();
        for w in &words {
            args.extend_from_slice(&w.to_be_bytes());
        }
        let msg = RpcMessage::call(xid, prog, vers, proc, args);
        let decoded = RpcMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(msg, decoded);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, decoding must fail gracefully, not panic.
        let _ = RpcMessage::decode(&data);
        let mut d = XdrDecoder::new(&data);
        let _ = d.get_u32();
        let _ = d.get_opaque();
        let _ = d.get_str();
    }

    #[test]
    fn record_marking_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        nest_sunrpc::record::write_record(&mut buf, &payload).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let back = nest_sunrpc::record::read_record(&mut cur).unwrap().unwrap();
        prop_assert_eq!(back, payload);
    }
}
