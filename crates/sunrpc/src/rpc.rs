//! ONC RPC version 2 message structures (RFC 5531).

use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// The RPC protocol version this crate implements.
pub const RPC_VERSION: u32 = 2;

/// Authentication flavors. NeST's NFS handler accepts `AUTH_NONE` and
/// `AUTH_SYS` (classic Unix credentials); stronger authentication happens at
/// the Chirp/GridFTP layer per the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthFlavor {
    /// No authentication.
    None,
    /// Unix-style credentials (uid/gid).
    Sys,
    /// Any flavor we do not interpret; carried opaquely.
    Other(u32),
}

impl AuthFlavor {
    fn to_u32(self) -> u32 {
        match self {
            AuthFlavor::None => 0,
            AuthFlavor::Sys => 1,
            AuthFlavor::Other(v) => v,
        }
    }

    fn from_u32(v: u32) -> Self {
        match v {
            0 => AuthFlavor::None,
            1 => AuthFlavor::Sys,
            v => AuthFlavor::Other(v),
        }
    }
}

/// An opaque authenticator: flavor plus up to 400 bytes of body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpaqueAuth {
    /// The authentication flavor.
    pub flavor: AuthFlavor,
    /// Flavor-specific body.
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// The `AUTH_NONE` authenticator.
    pub fn none() -> Self {
        Self {
            flavor: AuthFlavor::None,
            body: Vec::new(),
        }
    }

    /// An `AUTH_SYS` authenticator for the given machine/uid/gid.
    pub fn sys(machine: &str, uid: u32, gid: u32) -> Self {
        let mut e = XdrEncoder::new();
        e.put_u32(0); // stamp
        e.put_str(machine);
        e.put_u32(uid);
        e.put_u32(gid);
        e.put_array(&[] as &[u32], |e, g| {
            e.put_u32(*g);
        });
        Self {
            flavor: AuthFlavor::Sys,
            body: e.into_bytes(),
        }
    }

    /// Parses the uid out of an `AUTH_SYS` body, if this is one.
    pub fn sys_uid(&self) -> Option<u32> {
        if self.flavor != AuthFlavor::Sys {
            return None;
        }
        let mut d = XdrDecoder::new(&self.body);
        d.get_u32().ok()?; // stamp
        d.get_str().ok()?; // machine
        d.get_u32().ok()
    }

    fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.flavor.to_u32());
        e.put_opaque(&self.body);
    }

    fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let flavor = AuthFlavor::from_u32(d.get_u32()?);
        let body = d.get_opaque()?.to_vec();
        Ok(Self { flavor, body })
    }
}

/// The body of an RPC call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallBody {
    /// Remote program number (e.g. 100003 for NFS).
    pub prog: u32,
    /// Program version (e.g. 2 for NFSv2).
    pub vers: u32,
    /// Procedure number within the program.
    pub proc: u32,
    /// Caller credentials.
    pub cred: OpaqueAuth,
    /// Caller verifier.
    pub verf: OpaqueAuth,
    /// Procedure-specific arguments, already XDR-encoded.
    pub args: Vec<u8>,
}

/// Why a call was accepted-but-failed or executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// Call executed successfully; results follow.
    Success = 0,
    /// The program is not served here.
    ProgUnavail = 1,
    /// The program version is not served; low/high supported versions follow
    /// on the wire (we encode 0/0 for simplicity of the mismatch path).
    ProgMismatch = 2,
    /// Unknown procedure number.
    ProcUnavail = 3,
    /// Arguments could not be decoded.
    GarbageArgs = 4,
    /// Internal server error.
    SystemErr = 5,
}

impl AcceptStat {
    fn from_u32(v: u32) -> Result<Self, XdrError> {
        Ok(match v {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch,
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            5 => AcceptStat::SystemErr,
            other => return Err(XdrError::BadDiscriminant(other)),
        })
    }
}

/// The body of an RPC reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// The call was accepted (it may still have failed; see the status).
    Accepted {
        /// Server verifier.
        verf: OpaqueAuth,
        /// Execution status.
        stat: AcceptStat,
        /// Procedure-specific results (only meaningful on `Success`).
        results: Vec<u8>,
    },
    /// The call was rejected outright (version mismatch or auth error).
    Denied {
        /// 0 = RPC version mismatch, 1 = authentication error.
        reject_stat: u32,
    },
}

/// A complete RPC message: transaction id plus call or reply body.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcMessage {
    /// An outgoing or incoming call.
    Call {
        /// Transaction id chosen by the caller.
        xid: u32,
        /// Call body.
        body: CallBody,
    },
    /// An outgoing or incoming reply.
    Reply {
        /// Transaction id echoed from the call.
        xid: u32,
        /// Reply body.
        body: ReplyBody,
    },
}

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;
const REPLY_ACCEPTED: u32 = 0;
const REPLY_DENIED: u32 = 1;

impl RpcMessage {
    /// Builds a call message.
    pub fn call(xid: u32, prog: u32, vers: u32, proc: u32, args: Vec<u8>) -> Self {
        RpcMessage::Call {
            xid,
            body: CallBody {
                prog,
                vers,
                proc,
                cred: OpaqueAuth::none(),
                verf: OpaqueAuth::none(),
                args,
            },
        }
    }

    /// Builds a successful reply carrying `results`.
    pub fn success_reply(xid: u32, results: Vec<u8>) -> Self {
        RpcMessage::Reply {
            xid,
            body: ReplyBody::Accepted {
                verf: OpaqueAuth::none(),
                stat: AcceptStat::Success,
                results,
            },
        }
    }

    /// Builds an accepted-but-failed reply with the given status.
    pub fn error_reply(xid: u32, stat: AcceptStat) -> Self {
        RpcMessage::Reply {
            xid,
            body: ReplyBody::Accepted {
                verf: OpaqueAuth::none(),
                stat,
                results: Vec::new(),
            },
        }
    }

    /// The transaction id.
    pub fn xid(&self) -> u32 {
        match self {
            RpcMessage::Call { xid, .. } | RpcMessage::Reply { xid, .. } => *xid,
        }
    }

    /// Encodes the message to XDR bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = XdrEncoder::with_capacity(64);
        match self {
            RpcMessage::Call { xid, body } => {
                e.put_u32(*xid);
                e.put_u32(MSG_CALL);
                e.put_u32(RPC_VERSION);
                e.put_u32(body.prog);
                e.put_u32(body.vers);
                e.put_u32(body.proc);
                body.cred.encode(&mut e);
                body.verf.encode(&mut e);
                let mut bytes = e.into_bytes();
                bytes.extend_from_slice(&body.args);
                return bytes;
            }
            RpcMessage::Reply { xid, body } => {
                e.put_u32(*xid);
                e.put_u32(MSG_REPLY);
                match body {
                    ReplyBody::Accepted {
                        verf,
                        stat,
                        results,
                    } => {
                        e.put_u32(REPLY_ACCEPTED);
                        verf.encode(&mut e);
                        e.put_u32(*stat as u32);
                        if *stat == AcceptStat::ProgMismatch {
                            // mismatch_info { low, high } — we serve exactly
                            // the registered version, so encode it twice
                            // upstream; here a conservative 0/0.
                            e.put_u32(0);
                            e.put_u32(0);
                        }
                        let mut bytes = e.into_bytes();
                        bytes.extend_from_slice(results);
                        return bytes;
                    }
                    ReplyBody::Denied { reject_stat } => {
                        e.put_u32(REPLY_DENIED);
                        e.put_u32(*reject_stat);
                        if *reject_stat == 0 {
                            // RPC_MISMATCH carries low/high versions.
                            e.put_u32(RPC_VERSION);
                            e.put_u32(RPC_VERSION);
                        } else {
                            // AUTH_ERROR carries an auth_stat.
                            e.put_u32(1); // AUTH_BADCRED
                        }
                    }
                }
            }
        }
        e.into_bytes()
    }

    /// Decodes a message from XDR bytes. The remainder of the buffer after
    /// the RPC header is captured as `args`/`results`.
    pub fn decode(bytes: &[u8]) -> Result<Self, XdrError> {
        let mut d = XdrDecoder::new(bytes);
        let xid = d.get_u32()?;
        match d.get_u32()? {
            MSG_CALL => {
                let rpcvers = d.get_u32()?;
                if rpcvers != RPC_VERSION {
                    return Err(XdrError::BadDiscriminant(rpcvers));
                }
                let prog = d.get_u32()?;
                let vers = d.get_u32()?;
                let proc = d.get_u32()?;
                let cred = OpaqueAuth::decode(&mut d)?;
                let verf = OpaqueAuth::decode(&mut d)?;
                let args = bytes[bytes.len() - d.remaining()..].to_vec();
                Ok(RpcMessage::Call {
                    xid,
                    body: CallBody {
                        prog,
                        vers,
                        proc,
                        cred,
                        verf,
                        args,
                    },
                })
            }
            MSG_REPLY => match d.get_u32()? {
                REPLY_ACCEPTED => {
                    let verf = OpaqueAuth::decode(&mut d)?;
                    let stat = AcceptStat::from_u32(d.get_u32()?)?;
                    if stat == AcceptStat::ProgMismatch {
                        d.get_u32()?;
                        d.get_u32()?;
                    }
                    let results = bytes[bytes.len() - d.remaining()..].to_vec();
                    Ok(RpcMessage::Reply {
                        xid,
                        body: ReplyBody::Accepted {
                            verf,
                            stat,
                            results,
                        },
                    })
                }
                REPLY_DENIED => {
                    let reject_stat = d.get_u32()?;
                    Ok(RpcMessage::Reply {
                        xid,
                        body: ReplyBody::Denied { reject_stat },
                    })
                }
                other => Err(XdrError::BadDiscriminant(other)),
            },
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let msg = RpcMessage::call(42, 100003, 2, 6, vec![1, 2, 3, 4]);
        let bytes = msg.encode();
        let decoded = RpcMessage::decode(&bytes).unwrap();
        assert_eq!(msg, decoded);
    }

    #[test]
    fn success_reply_roundtrip() {
        let msg = RpcMessage::success_reply(7, vec![9, 9, 9, 9]);
        let decoded = RpcMessage::decode(&msg.encode()).unwrap();
        assert_eq!(msg, decoded);
    }

    #[test]
    fn error_reply_roundtrip() {
        for stat in [
            AcceptStat::ProgUnavail,
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
            AcceptStat::ProgMismatch,
        ] {
            let msg = RpcMessage::error_reply(1, stat);
            let decoded = RpcMessage::decode(&msg.encode()).unwrap();
            match decoded {
                RpcMessage::Reply {
                    body: ReplyBody::Accepted { stat: s, .. },
                    ..
                } => assert_eq!(s, stat),
                other => panic!("unexpected decode: {:?}", other),
            }
        }
    }

    #[test]
    fn denied_reply_roundtrip() {
        let msg = RpcMessage::Reply {
            xid: 3,
            body: ReplyBody::Denied { reject_stat: 1 },
        };
        let decoded = RpcMessage::decode(&msg.encode()).unwrap();
        match decoded {
            RpcMessage::Reply {
                xid: 3,
                body: ReplyBody::Denied { reject_stat: 1 },
            } => {}
            other => panic!("unexpected decode: {:?}", other),
        }
    }

    #[test]
    fn auth_sys_uid_parses() {
        let auth = OpaqueAuth::sys("testhost", 1001, 100);
        assert_eq!(auth.sys_uid(), Some(1001));
        assert_eq!(OpaqueAuth::none().sys_uid(), None);
    }

    #[test]
    fn wrong_rpc_version_rejected() {
        let msg = RpcMessage::call(1, 100003, 2, 0, vec![]);
        let mut bytes = msg.encode();
        // Corrupt the rpcvers field (bytes 8..12).
        bytes[11] = 9;
        assert!(RpcMessage::decode(&bytes).is_err());
    }

    #[test]
    fn xid_accessor() {
        assert_eq!(RpcMessage::call(5, 1, 1, 1, vec![]).xid(), 5);
        assert_eq!(RpcMessage::success_reply(6, vec![]).xid(), 6);
    }

    #[test]
    fn truncated_message_rejected() {
        let msg = RpcMessage::call(42, 100003, 2, 6, vec![]);
        let bytes = msg.encode();
        assert!(RpcMessage::decode(&bytes[..8]).is_err());
    }
}
