//! A blocking ONC RPC client over UDP (with retransmission) or TCP.

use crate::record::{read_record, write_record};
use crate::rpc::{AcceptStat, ReplyBody, RpcMessage};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Errors surfaced to RPC callers.
#[derive(Debug)]
pub enum RpcError {
    /// Transport-level failure.
    Io(io::Error),
    /// The server accepted the call but reported a failure status.
    Rpc(AcceptStat),
    /// The server denied the call outright.
    Denied(u32),
    /// No reply arrived within the configured retries.
    TimedOut,
    /// The reply could not be decoded.
    BadReply,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc I/O error: {}", e),
            RpcError::Rpc(stat) => write!(f, "rpc call failed: {:?}", stat),
            RpcError::Denied(s) => write!(f, "rpc call denied (reject_stat {})", s),
            RpcError::TimedOut => write!(f, "rpc call timed out"),
            RpcError::BadReply => write!(f, "rpc reply could not be decoded"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<io::Error> for RpcError {
    fn from(e: io::Error) -> Self {
        RpcError::Io(e)
    }
}

enum Transport {
    Udp { socket: UdpSocket, peer: SocketAddr },
    Tcp(TcpStream),
}

/// A blocking RPC client bound to one server program endpoint.
pub struct RpcClient {
    transport: Transport,
    next_xid: u32,
    /// Per-attempt receive timeout for UDP.
    pub timeout: Duration,
    /// Number of UDP retransmissions before giving up.
    pub retries: u32,
}

impl RpcClient {
    /// Connects over UDP.
    pub fn udp(server: impl ToSocketAddrs) -> Result<Self, RpcError> {
        let peer = server
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(Self {
            transport: Transport::Udp { socket, peer },
            next_xid: 1,
            timeout: Duration::from_millis(500),
            retries: 4,
        })
    }

    /// Connects over TCP.
    pub fn tcp(server: impl ToSocketAddrs) -> Result<Self, RpcError> {
        let stream = TcpStream::connect(server)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            transport: Transport::Tcp(stream),
            next_xid: 1,
            timeout: Duration::from_millis(2000),
            retries: 0,
        })
    }

    /// Issues one call and waits for its reply, returning the XDR-encoded
    /// results.
    pub fn call(
        &mut self,
        prog: u32,
        vers: u32,
        proc: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let msg = RpcMessage::call(xid, prog, vers, proc, args).encode();

        match &mut self.transport {
            Transport::Udp { socket, peer } => {
                socket.set_read_timeout(Some(self.timeout))?;
                let mut buf = vec![0u8; 64 * 1024];
                for _attempt in 0..=self.retries {
                    socket.send_to(&msg, *peer)?;
                    loop {
                        match socket.recv_from(&mut buf) {
                            Ok((n, from)) => {
                                if from != *peer {
                                    continue; // stray datagram
                                }
                                match RpcMessage::decode(&buf[..n]) {
                                    Ok(reply) if reply.xid() == xid => {
                                        return extract_results(reply)
                                    }
                                    // Late reply to an earlier xid: keep
                                    // waiting for ours.
                                    Ok(_) => continue,
                                    Err(_) => return Err(RpcError::BadReply),
                                }
                            }
                            Err(e)
                                if e.kind() == io::ErrorKind::WouldBlock
                                    || e.kind() == io::ErrorKind::TimedOut =>
                            {
                                break; // retransmit
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                Err(RpcError::TimedOut)
            }
            Transport::Tcp(stream) => {
                stream.set_read_timeout(Some(self.timeout))?;
                write_record(stream, &msg)?;
                match read_record(stream)? {
                    None => Err(RpcError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed connection",
                    ))),
                    Some(record) => {
                        let reply = RpcMessage::decode(&record).map_err(|_| RpcError::BadReply)?;
                        if reply.xid() != xid {
                            return Err(RpcError::BadReply);
                        }
                        extract_results(reply)
                    }
                }
            }
        }
    }
}

fn extract_results(reply: RpcMessage) -> Result<Vec<u8>, RpcError> {
    match reply {
        RpcMessage::Reply {
            body:
                ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    results,
                    ..
                },
            ..
        } => Ok(results),
        RpcMessage::Reply {
            body: ReplyBody::Accepted { stat, .. },
            ..
        } => Err(RpcError::Rpc(stat)),
        RpcMessage::Reply {
            body: ReplyBody::Denied { reject_stat },
            ..
        } => Err(RpcError::Denied(reject_stat)),
        RpcMessage::Call { .. } => Err(RpcError::BadReply),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::CallBody;
    use crate::server::{RpcServer, SpawnedRpcServer};

    const PROG: u32 = 300_000;

    fn spawn_echo() -> SpawnedRpcServer {
        let mut server = RpcServer::new();
        server.register(PROG, 1, |call: &CallBody, _peer: SocketAddr| {
            match call.proc {
                0 => Ok(Vec::new()),        // NULL proc
                1 => Ok(call.args.clone()), // echo
                2 => Err(AcceptStat::SystemErr),
                _ => Err(AcceptStat::ProcUnavail),
            }
        });
        SpawnedRpcServer::spawn(server).unwrap()
    }

    /// UDP server plus a test-only TCP front sharing the same programs.
    fn spawn_echo_tcp() -> (SpawnedRpcServer, SocketAddr, std::thread::JoinHandle<()>) {
        let server = spawn_echo();
        let (tcp_addr, front) =
            crate::server::testutil::spawn_tcp_front(std::sync::Arc::clone(server.server()));
        (server, tcp_addr, front)
    }

    #[test]
    fn udp_echo_roundtrip() {
        let server = spawn_echo();
        let mut client = RpcClient::udp(server.udp_addr).unwrap();
        let result = client.call(PROG, 1, 1, vec![5, 6, 7, 8]).unwrap();
        assert_eq!(result, vec![5, 6, 7, 8]);
        server.shutdown();
    }

    #[test]
    fn tcp_echo_roundtrip() {
        let (server, tcp_addr, front) = spawn_echo_tcp();
        let mut client = RpcClient::tcp(tcp_addr).unwrap();
        let result = client.call(PROG, 1, 1, vec![9, 9, 9, 9]).unwrap();
        assert_eq!(result, vec![9, 9, 9, 9]);
        server.shutdown();
        front.join().unwrap();
    }

    #[test]
    fn tcp_multiple_calls_on_one_connection() {
        let (server, tcp_addr, front) = spawn_echo_tcp();
        let mut client = RpcClient::tcp(tcp_addr).unwrap();
        for i in 0..5u8 {
            let result = client.call(PROG, 1, 1, vec![i, i, i, i]).unwrap();
            assert_eq!(result, vec![i, i, i, i]);
        }
        server.shutdown();
        front.join().unwrap();
    }

    #[test]
    fn server_error_surfaces_as_rpc_error() {
        let server = spawn_echo();
        let mut client = RpcClient::udp(server.udp_addr).unwrap();
        match client.call(PROG, 1, 2, vec![]) {
            Err(RpcError::Rpc(AcceptStat::SystemErr)) => {}
            other => panic!("expected SystemErr, got {:?}", other.map(|_| ())),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_proc_unavail() {
        let (server, tcp_addr, front) = spawn_echo_tcp();
        let mut client = RpcClient::tcp(tcp_addr).unwrap();
        match client.call(PROG, 1, 99, vec![]) {
            Err(RpcError::Rpc(AcceptStat::ProcUnavail)) => {}
            other => panic!("expected ProcUnavail, got {:?}", other.map(|_| ())),
        }
        server.shutdown();
        front.join().unwrap();
    }

    #[test]
    fn udp_timeout_when_no_server() {
        // Bind a socket and never serve it: client must time out, not hang.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut client = RpcClient::udp(dead.local_addr().unwrap()).unwrap();
        client.timeout = Duration::from_millis(30);
        client.retries = 1;
        match client.call(PROG, 1, 0, vec![]) {
            Err(RpcError::TimedOut) => {}
            other => panic!("expected timeout, got {:?}", other.map(|_| ())),
        }
    }
}
