//! # nest-sunrpc
//!
//! A from-scratch implementation of XDR (RFC 4506) and ONC/Sun RPC
//! (RFC 5531, protocol version 2), the substrate beneath NeST's NFS protocol
//! handler. The paper notes that NeST "uses the Sun RPC package for the RPC
//! communication in NFS"; this crate plays that role.
//!
//! Provided:
//!
//! * [`xdr`] — XDR encoding/decoding of the primitive types NFS needs
//!   (integers, booleans, opaque data, strings, options, arrays) with the
//!   mandatory 4-byte alignment.
//! * [`rpc`] — RPC call/reply message bodies, `AUTH_NONE`/`AUTH_SYS`
//!   credentials, accept/deny status codes.
//! * [`record`] — record marking for RPC over TCP (fragment headers).
//! * [`server`] — a transport-generic RPC server: register programs by
//!   `(prog, vers)`, serve over UDP datagrams or TCP record streams.
//! * [`client`] — a blocking RPC client for UDP and TCP.

pub mod client;
pub mod record;
pub mod rpc;
pub mod server;
pub mod xdr;

pub use client::{RpcClient, RpcError};
pub use rpc::{AcceptStat, AuthFlavor, CallBody, OpaqueAuth, ReplyBody, RpcMessage};
pub use server::{RpcHandler, RpcServer};
pub use xdr::{XdrDecoder, XdrEncoder, XdrError};
