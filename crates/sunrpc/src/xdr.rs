//! XDR (External Data Representation, RFC 4506) encoding and decoding.
//!
//! XDR represents all items in multiples of four bytes, big-endian, with
//! opaque/string data zero-padded up to the next 4-byte boundary.

use std::fmt;

/// Errors produced while decoding XDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The buffer ended before the requested item.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeded the decoder's configured maximum.
    LengthTooLarge { len: usize, max: usize },
    /// A boolean was encoded as something other than 0 or 1.
    BadBool(u32),
    /// A string contained invalid UTF-8.
    BadUtf8,
    /// An enum discriminant was not a known value.
    BadDiscriminant(u32),
    /// Non-zero padding bytes (tolerated by some decoders; we reject).
    BadPadding,
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { needed, remaining } => write!(
                f,
                "truncated XDR data: needed {} bytes, {} remaining",
                needed, remaining
            ),
            XdrError::LengthTooLarge { len, max } => {
                write!(f, "XDR length {} exceeds maximum {}", len, max)
            }
            XdrError::BadBool(v) => write!(f, "invalid XDR boolean {}", v),
            XdrError::BadUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::BadDiscriminant(v) => write!(f, "unknown XDR discriminant {}", v),
            XdrError::BadPadding => write!(f, "non-zero XDR padding"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Pads a length up to the next multiple of four.
#[inline]
pub fn padded(len: usize) -> usize {
    (len + 3) & !3
}

/// An XDR encoder writing into an owned byte vector.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes (always a multiple of 4).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encodes an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Encodes an unsigned 64-bit hyper integer.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a signed 64-bit hyper integer.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Encodes a boolean as 0/1.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Encodes fixed-length opaque data (caller guarantees the length is
    /// known to both sides); pads to a 4-byte boundary.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        for _ in data.len()..padded(data.len()) {
            self.buf.push(0);
        }
        self
    }

    /// Encodes variable-length opaque data with a length prefix.
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data)
    }

    /// Encodes a string (length-prefixed UTF-8 bytes).
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_opaque(s.as_bytes())
    }

    /// Encodes an XDR optional (`*T` in XDR language): a presence boolean
    /// followed by the value when present.
    pub fn put_option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) -> &mut Self {
        match v {
            Some(inner) => {
                self.put_bool(true);
                f(self, inner);
            }
            None => {
                self.put_bool(false);
            }
        }
        self
    }

    /// Encodes a counted array.
    pub fn put_array<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// An XDR decoder reading from a borrowed byte slice.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Maximum accepted length for any variable-length item, protecting
    /// against hostile length prefixes.
    max_len: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Creates a decoder with a 16 MiB variable-length cap.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            max_len: 16 << 20,
        }
    }

    /// Overrides the variable-length item cap.
    pub fn with_max_len(buf: &'a [u8], max_len: usize) -> Self {
        Self {
            buf,
            pos: 0,
            max_len,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the buffer is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decodes a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Decodes an unsigned 64-bit hyper.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Decodes a signed 64-bit hyper.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Decodes a boolean, rejecting values other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::BadBool(v)),
        }
    }

    /// Decodes fixed-length opaque data of known size, consuming padding.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(len)?;
        let pad = padded(len) - len;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError::BadPadding);
        }
        Ok(data)
    }

    /// Decodes variable-length opaque data.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()? as usize;
        if len > self.max_len {
            return Err(XdrError::LengthTooLarge {
                len,
                max: self.max_len,
            });
        }
        self.get_opaque_fixed(len)
    }

    /// Decodes a string.
    pub fn get_str(&mut self) -> Result<&'a str, XdrError> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes).map_err(|_| XdrError::BadUtf8)
    }

    /// Decodes an owned string.
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        self.get_str().map(str::to_owned)
    }

    /// Decodes an optional.
    pub fn get_option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, XdrError>,
    ) -> Result<Option<T>, XdrError> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Decodes a counted array.
    pub fn get_array<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, XdrError>,
    ) -> Result<Vec<T>, XdrError> {
        let n = self.get_u32()? as usize;
        if n > self.max_len {
            return Err(XdrError::LengthTooLarge {
                len: n,
                max: self.max_len,
            });
        }
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_is_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x01020304);
        let bytes = e.into_bytes();
        assert_eq!(bytes, [1, 2, 3, 4]);
        assert_eq!(XdrDecoder::new(&bytes).get_u32().unwrap(), 0x01020304);
    }

    #[test]
    fn signed_values_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_i32(-5).put_i64(-1234567890123);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_i32().unwrap(), -5);
        assert_eq!(d.get_i64().unwrap(), -1234567890123);
        assert!(d.is_exhausted());
    }

    #[test]
    fn string_padding_to_four_bytes() {
        let mut e = XdrEncoder::new();
        e.put_str("abcde");
        let b = e.into_bytes();
        // 4 (length) + 5 (data) + 3 (padding) = 12.
        assert_eq!(b.len(), 12);
        assert_eq!(&b[4..9], b"abcde");
        assert_eq!(&b[9..12], &[0, 0, 0]);
        assert_eq!(XdrDecoder::new(&b).get_str().unwrap(), "abcde");
    }

    #[test]
    fn exact_multiple_of_four_has_no_padding() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcd");
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn nonzero_padding_rejected() {
        // length 1, data 'x', then non-zero padding.
        let raw = [0, 0, 0, 1, b'x', 9, 0, 0];
        assert_eq!(
            XdrDecoder::new(&raw).get_opaque(),
            Err(XdrError::BadPadding)
        );
    }

    #[test]
    fn bool_strictness() {
        let raw = 2u32.to_be_bytes();
        assert_eq!(XdrDecoder::new(&raw).get_bool(), Err(XdrError::BadBool(2)));
    }

    #[test]
    fn truncation_detected() {
        let raw = [0, 0];
        assert!(matches!(
            XdrDecoder::new(&raw).get_u32(),
            Err(XdrError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX);
        let b = e.into_bytes();
        assert!(matches!(
            XdrDecoder::new(&b).get_opaque(),
            Err(XdrError::LengthTooLarge { .. })
        ));
    }

    #[test]
    fn option_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_option(Some(&7u32), |e, v| {
            e.put_u32(*v);
        });
        e.put_option(None::<&u32>, |e, v| {
            e.put_u32(*v);
        });
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_option(|d| d.get_u32()).unwrap(), Some(7));
        assert_eq!(d.get_option(|d| d.get_u32()).unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_array(&[1u32, 2, 3], |e, v| {
            e.put_u32(*v);
        });
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_array(|d| d.get_u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xFF, 0xFE]);
        let b = e.into_bytes();
        assert_eq!(XdrDecoder::new(&b).get_str(), Err(XdrError::BadUtf8));
    }

    #[test]
    fn padded_helper() {
        assert_eq!(padded(0), 0);
        assert_eq!(padded(1), 4);
        assert_eq!(padded(4), 4);
        assert_eq!(padded(5), 8);
    }
}
