//! RPC record marking for stream transports (RFC 5531 §11).
//!
//! Each record is sent as one or more fragments; a fragment header is a
//! 4-byte big-endian word whose high bit marks the final fragment and whose
//! low 31 bits give the fragment length.

use std::io::{self, IoSlice, Read, Write};

/// Maximum accepted fragment size (sanity cap against hostile headers).
pub const MAX_FRAGMENT: usize = 16 << 20;

/// Writes one complete record as a single final fragment.
///
/// The 4-byte fragment header and the payload leave in one `writev`
/// instead of two `write` calls: on an unbuffered socket the split write
/// costs a syscall *and* (with Nagle disabled) can put the tiny header in
/// its own TCP segment ahead of every NFS reply. The loop advances the
/// slice pair across short writes, so partial vectored writes on a
/// throttled socket are completed rather than dropped.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() < (1 << 31));
    let header = ((payload.len() as u32) | 0x8000_0000).to_be_bytes();
    let mut slices = [IoSlice::new(&header), IoSlice::new(payload)];
    let mut bufs = &mut slices[..];
    while bufs.iter().map(|b| b.len()).sum::<usize>() > 0 {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write RPC record",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Reads one complete record, reassembling fragments. Returns `Ok(None)` on
/// a clean EOF at a record boundary.
pub fn read_record(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut out = Vec::new();
    loop {
        let mut header = [0u8; 4];
        match read_exact_or_eof(r, &mut header)? {
            ReadOutcome::Eof if out.is_empty() => return Ok(None),
            ReadOutcome::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a fragmented RPC record",
                ))
            }
            ReadOutcome::Full => {}
        }
        let word = u32::from_be_bytes(header);
        let last = word & 0x8000_0000 != 0;
        let len = (word & 0x7FFF_FFFF) as usize;
        if len > MAX_FRAGMENT {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("RPC fragment of {} bytes exceeds cap", len),
            ));
        }
        let start = out.len();
        out.resize(start + len, 0);
        r.read_exact(&mut out[start..])?;
        if last {
            return Ok(Some(out));
        }
    }
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF before any
/// byte from a mid-item EOF.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside an RPC fragment header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn single_fragment_roundtrip() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"hello rpc").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_record(&mut cur).unwrap().unwrap(), b"hello rpc");
        assert_eq!(read_record(&mut cur).unwrap(), None);
    }

    #[test]
    fn multi_fragment_reassembly() {
        // Hand-build two fragments: "hel" (not last) + "lo" (last).
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"hel");
        buf.extend_from_slice(&(2u32 | 0x8000_0000).to_be_bytes());
        buf.extend_from_slice(b"lo");
        let mut cur = Cursor::new(buf);
        assert_eq!(read_record(&mut cur).unwrap().unwrap(), b"hello");
    }

    #[test]
    fn eof_mid_record_is_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes()); // non-final fragment
        buf.extend_from_slice(b"hel");
        // stream ends without the final fragment
        let mut cur = Cursor::new(buf);
        assert!(read_record(&mut cur).is_err());
    }

    #[test]
    fn truncated_payload_is_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(10u32 | 0x8000_0000).to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut cur = Cursor::new(buf);
        assert!(read_record(&mut cur).is_err());
    }

    #[test]
    fn oversized_fragment_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAGMENT as u32 + 1) | 0x8000_0000).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(read_record(&mut cur).is_err());
    }

    #[test]
    fn empty_record_roundtrip() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_record(&mut cur).unwrap().unwrap(), b"");
    }

    /// A writer that accepts at most `cap` bytes per call and reports
    /// `len = 1` for vectored writes, forcing the short-write loop.
    struct ShortWriter {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn record_survives_short_vectored_writes() {
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for cap in [1, 3, 7] {
            let mut w = ShortWriter {
                out: Vec::new(),
                cap,
            };
            write_record(&mut w, &payload).unwrap();
            let mut cur = Cursor::new(w.out);
            assert_eq!(read_record(&mut cur).unwrap().unwrap(), payload);
        }
    }

    #[test]
    fn back_to_back_records() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"one").unwrap();
        write_record(&mut buf, b"two").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_record(&mut cur).unwrap().unwrap(), b"one");
        assert_eq!(read_record(&mut cur).unwrap().unwrap(), b"two");
        assert_eq!(read_record(&mut cur).unwrap(), None);
    }
}
