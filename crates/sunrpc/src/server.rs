//! A transport-generic ONC RPC server.
//!
//! Programs register by `(program, version)`; the server decodes incoming
//! calls, dispatches, and encodes replies. Both UDP datagrams (classic NFS)
//! and TCP record streams are supported.

use crate::record::{read_record, write_record};
use crate::rpc::{AcceptStat, CallBody, RpcMessage};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A handler for one `(program, version)` pair.
///
/// Returns the XDR-encoded procedure results on success, or an
/// [`AcceptStat`] describing the failure.
pub trait RpcHandler: Send + Sync + 'static {
    /// Handles one call. `call.proc` selects the procedure; `call.args`
    /// holds the XDR-encoded arguments.
    fn handle(&self, call: &CallBody, peer: SocketAddr) -> Result<Vec<u8>, AcceptStat>;
}

impl<F> RpcHandler for F
where
    F: Fn(&CallBody, SocketAddr) -> Result<Vec<u8>, AcceptStat> + Send + Sync + 'static,
{
    fn handle(&self, call: &CallBody, peer: SocketAddr) -> Result<Vec<u8>, AcceptStat> {
        self(call, peer)
    }
}

/// An RPC server multiplexing registered programs over UDP and/or TCP.
pub struct RpcServer {
    programs: HashMap<(u32, u32), Arc<dyn RpcHandler>>,
    stop: Arc<AtomicBool>,
}

impl Default for RpcServer {
    fn default() -> Self {
        Self::new()
    }
}

impl RpcServer {
    /// Creates a server with no programs registered.
    pub fn new() -> Self {
        Self {
            programs: HashMap::new(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Registers a program handler.
    pub fn register(&mut self, prog: u32, vers: u32, handler: impl RpcHandler) -> &mut Self {
        self.programs.insert((prog, vers), Arc::new(handler));
        self
    }

    /// A flag that, when set, causes serving loops to exit at their next
    /// poll interval.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Dispatches one decoded message, producing the reply to send (if any;
    /// replies to replies are dropped).
    pub fn dispatch(&self, msg: &RpcMessage, peer: SocketAddr) -> Option<RpcMessage> {
        let (xid, call) = match msg {
            RpcMessage::Call { xid, body } => (*xid, body),
            RpcMessage::Reply { .. } => return None,
        };
        let reply = match self.programs.get(&(call.prog, call.vers)) {
            None => {
                // Distinguish unknown program from known program at the
                // wrong version.
                let known_prog = self.programs.keys().any(|(p, _)| *p == call.prog);
                if known_prog {
                    RpcMessage::error_reply(xid, AcceptStat::ProgMismatch)
                } else {
                    RpcMessage::error_reply(xid, AcceptStat::ProgUnavail)
                }
            }
            Some(handler) => match handler.handle(call, peer) {
                Ok(results) => RpcMessage::success_reply(xid, results),
                Err(stat) => RpcMessage::error_reply(xid, stat),
            },
        };
        Some(reply)
    }

    /// Dispatches raw bytes (one datagram or one record), returning encoded
    /// reply bytes. Undecodable data yields `None` (dropped, as real RPC
    /// servers do for garbage datagrams).
    pub fn dispatch_bytes(&self, bytes: &[u8], peer: SocketAddr) -> Option<Vec<u8>> {
        let msg = RpcMessage::decode(bytes).ok()?;
        self.dispatch(&msg, peer).map(|r| r.encode())
    }

    /// Serves UDP datagrams on the given socket until the stop flag is set.
    pub fn serve_udp(self: Arc<Self>, socket: UdpSocket) -> io::Result<()> {
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut buf = vec![0u8; 64 * 1024];
        // nestlint: allow(atomic-ordering): stop flag polled each 50ms timeout; eventual visibility suffices
        while !self.stop.load(Ordering::Relaxed) {
            match socket.recv_from(&mut buf) {
                Ok((n, peer)) => {
                    if let Some(reply) = self.dispatch_bytes(&buf[..n], peer) {
                        let _ = socket.send_to(&reply, peer);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Serves one TCP connection until EOF or the server's stop flag.
    ///
    /// Accepting the connection is the caller's business: production
    /// fronts accept through the nest-core session layer and hand each
    /// stream here (or to [`RpcServer::serve_tcp_conn_until`] for
    /// drain/idle awareness).
    pub fn serve_tcp_conn(&self, stream: TcpStream, peer: SocketAddr) -> io::Result<()> {
        let stop = Arc::clone(&self.stop);
        // nestlint: allow(atomic-ordering): stop flag polled between requests; eventual visibility suffices
        self.serve_tcp_conn_until(stream, peer, &move || stop.load(Ordering::Relaxed), None)
    }

    /// Serves one TCP connection until EOF, `should_stop` returns true, or
    /// the connection sits idle (no complete record) past `idle`.
    ///
    /// Idle expiry returns `ErrorKind::TimedOut` so callers (the session
    /// layer) can classify the close as a reap rather than a clean finish.
    pub fn serve_tcp_conn_until(
        &self,
        mut stream: TcpStream,
        peer: SocketAddr,
        should_stop: &dyn Fn() -> bool,
        idle: Option<Duration>,
    ) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let mut last_activity = Instant::now();
        loop {
            if should_stop() {
                return Ok(());
            }
            match read_record(&mut stream) {
                Ok(None) => return Ok(()),
                Ok(Some(record)) => {
                    if let Some(reply) = self.dispatch_bytes(&record, peer) {
                        write_record(&mut stream, &reply)?;
                    }
                    last_activity = Instant::now();
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if let Some(d) = idle {
                        if last_activity.elapsed() >= d {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "rpc connection idle past deadline",
                            ));
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A running RPC server bound to an ephemeral UDP port, for tests and
/// embedding in NeST. Dropping stops the serving thread.
///
/// TCP fronts are *not* spawned here: the appliance accepts NFS TCP
/// connections through its session layer (bounded pools, admission
/// control, drain) and feeds each stream to
/// [`RpcServer::serve_tcp_conn_until`].
pub struct SpawnedRpcServer {
    server: Arc<RpcServer>,
    /// UDP address the server listens on.
    pub udp_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl SpawnedRpcServer {
    /// Binds UDP on a loopback ephemeral port and spawns the serving
    /// thread.
    pub fn spawn(server: RpcServer) -> io::Result<Self> {
        let server = Arc::new(server);
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        let udp_addr = udp.local_addr()?;
        let s1 = Arc::clone(&server);
        let threads = vec![std::thread::spawn(move || {
            let _ = s1.serve_udp(udp);
        })];
        Ok(Self {
            server,
            udp_addr,
            threads,
        })
    }

    /// The underlying RPC server, for serving additional transports (the
    /// appliance's session layer drives NFS-over-TCP through this).
    pub fn server(&self) -> &Arc<RpcServer> {
        &self.server
    }

    /// Signals the serving loops to stop and joins them.
    pub fn shutdown(mut self) {
        // nestlint: allow(atomic-ordering): stop flag; the thread joins below are the real sync point
        self.server.stop_flag().store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for SpawnedRpcServer {
    fn drop(&mut self) {
        // nestlint: allow(atomic-ordering): stop flag; the thread joins below are the real sync point
        self.server.stop_flag().store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Test-only TCP front: the historical accept loop, so transport tests
    //! can exercise record streams without a full appliance session layer.
    use super::*;
    use std::net::TcpListener;

    /// Binds a loopback TCP listener for `server` and serves it until the
    /// server's stop flag is set. Returns the bound address and the
    /// acceptor's join handle.
    pub fn spawn_tcp_front(server: Arc<RpcServer>) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !server.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let s = Arc::clone(&server);
                        workers.push(std::thread::spawn(move || {
                            let _ = s.serve_tcp_conn(stream, peer);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        (addr, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::RpcMessage;

    fn echo_server() -> RpcServer {
        let mut server = RpcServer::new();
        server.register(200_000, 1, |call: &CallBody, _peer: SocketAddr| {
            Ok(call.args.clone())
        });
        server
    }

    fn peer() -> SocketAddr {
        "127.0.0.1:9".parse().unwrap()
    }

    #[test]
    fn dispatch_success() {
        let server = echo_server();
        let call = RpcMessage::call(1, 200_000, 1, 0, vec![1, 2, 3, 4]);
        let reply = server.dispatch(&call, peer()).unwrap();
        match reply {
            RpcMessage::Reply {
                xid: 1,
                body:
                    crate::rpc::ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
            } => assert_eq!(results, vec![1, 2, 3, 4]),
            other => panic!("unexpected reply {:?}", other),
        }
    }

    #[test]
    fn unknown_program_unavail() {
        let server = echo_server();
        let call = RpcMessage::call(2, 999, 1, 0, vec![]);
        let reply = server.dispatch(&call, peer()).unwrap();
        match reply {
            RpcMessage::Reply {
                body:
                    crate::rpc::ReplyBody::Accepted {
                        stat: AcceptStat::ProgUnavail,
                        ..
                    },
                ..
            } => {}
            other => panic!("unexpected reply {:?}", other),
        }
    }

    #[test]
    fn wrong_version_mismatch() {
        let server = echo_server();
        let call = RpcMessage::call(3, 200_000, 9, 0, vec![]);
        let reply = server.dispatch(&call, peer()).unwrap();
        match reply {
            RpcMessage::Reply {
                body:
                    crate::rpc::ReplyBody::Accepted {
                        stat: AcceptStat::ProgMismatch,
                        ..
                    },
                ..
            } => {}
            other => panic!("unexpected reply {:?}", other),
        }
    }

    #[test]
    fn replies_are_not_dispatched() {
        let server = echo_server();
        let msg = RpcMessage::success_reply(9, vec![]);
        assert!(server.dispatch(&msg, peer()).is_none());
    }

    #[test]
    fn garbage_bytes_dropped() {
        let server = echo_server();
        assert!(server.dispatch_bytes(&[0, 1], peer()).is_none());
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use crate::client::RpcClient;
    use crate::rpc::CallBody;

    const PROG: u32 = 400_000;

    /// Many clients over both transports at once: every reply must match
    /// its own request (no cross-wiring of xids or payloads).
    #[test]
    fn concurrent_clients_get_their_own_replies() {
        let mut server = RpcServer::new();
        server.register(PROG, 1, |call: &CallBody, _peer: SocketAddr| {
            // Echo with a transform so a swapped reply is detectable.
            let mut out = call.args.clone();
            for b in &mut out {
                *b = b.wrapping_add(1);
            }
            Ok(out)
        });
        let spawned = SpawnedRpcServer::spawn(server).unwrap();
        let udp_addr = spawned.udp_addr;
        let (tcp_addr, front) = super::testutil::spawn_tcp_front(Arc::clone(spawned.server()));

        let mut handles = Vec::new();
        for i in 0..4u8 {
            handles.push(std::thread::spawn(move || {
                let mut c = RpcClient::udp(udp_addr).unwrap();
                for j in 0..20u8 {
                    let args = vec![i, j, i ^ j, 0];
                    let reply = c.call(PROG, 1, 0, args.clone()).unwrap();
                    let expect: Vec<u8> = args.iter().map(|b| b.wrapping_add(1)).collect();
                    assert_eq!(reply, expect);
                }
            }));
            handles.push(std::thread::spawn(move || {
                let mut c = RpcClient::tcp(tcp_addr).unwrap();
                for j in 0..20u8 {
                    let args = vec![i, j, j.wrapping_mul(3), 1];
                    let reply = c.call(PROG, 1, 0, args.clone()).unwrap();
                    let expect: Vec<u8> = args.iter().map(|b| b.wrapping_add(1)).collect();
                    assert_eq!(reply, expect);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        spawned.shutdown();
        front.join().unwrap();
    }
}
