//! `nest-lint` binary: scans the workspace and exits nonzero on any
//! repo-rule violation. Wired into `scripts/check.sh`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Compiled location: <root>/crates/lint — the root is two levels up.
    // Falls back to an explicit argument for out-of-tree runs.
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = workspace_root();
    match nest_lint::scan_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "nestlint: workspace clean ({} rules)",
                nest_lint::RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprintln!("nestlint: {} violation(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "(suppress a deliberate exception with `// nestlint: allow(<rule>): <reason>`)"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nestlint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
