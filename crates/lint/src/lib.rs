//! `nestlint` — the workspace's source-level quality ratchet.
//!
//! The appliance's concurrency and observability guarantees rest on a few
//! *repo rules* that the compiler cannot enforce: all locks flow through
//! the vendored `parking_lot` shim (so the lock-order detector and the
//! contention statistics see them), poison is recovered centrally (never
//! `.lock().unwrap()`), hot transfer paths draw chunk buffers from the
//! `BufPool`, disk chunk I/O goes through the FD handle cache, and every
//! metric registered in code is documented in DESIGN.md's metrics table.
//! This crate scans the workspace line-by-line and fails the build gate
//! (`scripts/check.sh`) on the first drift.
//!
//! ## Rules
//!
//! | id | what it rejects |
//! |---|---|
//! | `raw-std-sync` | `std::sync::{Mutex,RwLock,Condvar}` outside the shim |
//! | `lock-unwrap` | `.lock().unwrap()`-style poison handling |
//! | `unnamed-lock` | shim locks constructed with `::new` (not `::named`) in non-test code |
//! | `transfer-alloc` | `vec![0…]` chunk allocations in `crates/transfer` (use `BufPool`) |
//! | `backend-open` | direct `File::open`/`OpenOptions` in `storage/backend.rs` (use the handle cache) |
//! | `undocumented-metric` | metric name literals registered in code but absent from DESIGN.md |
//! | `conn-spawn` | `thread::spawn`/`thread::Builder` in files that handle `TcpListener`s (connection lifecycles belong to `nest-core::session`) |
//! | `front-registry` | `SessionLayer::register` calls or raw `SessionHandler` closures outside `core/src/front.rs` (protocol fronts register through the `FrontRegistry`) |
//! | `raw-socket-write` | bare `.write(` on reply streams in front/handler reply paths (short writes truncate replies; use `write_all` or the vectored helpers) |
//! | `tier-bypass` | direct raw-backend reads (`.backend().read_at` / `.backend().stat`) or `LocalFsBackend` construction in appliance serving paths — bypassing `StorageManager` skips the memory tier and the handle cache, and can serve stale bytes past a dirty write-back copy |
//! | `unsafe-safety-comment` | `unsafe` blocks/fns/impls without a `// SAFETY:` comment immediately above (or trailing on the same line) stating the obligation being discharged |
//! | `atomic-ordering` | bare `Ordering::Relaxed` outside the stats module (`crates/obs/src/metrics.rs`) — every relaxed access elsewhere carries a reasoned `nestlint: allow(atomic-ordering)` explaining why no synchronization rides on it |
//! | `sharded-bypass` | direct shard-cell access (`.lock_idx(` / `.shard_cell(`) in a file that does not itself declare a `ShardedMutex<` — the wrapper module owns the ascending-index discipline; outside callers go through its API |
//!
//! ## Suppression
//!
//! A deliberate exception is annotated at the site, with a reason:
//!
//! ```text
//! // nestlint: allow(backend-open): create() must open the file it creates
//! ```
//!
//! on the offending line or the line directly above it. Suppressions are
//! per-rule; a bare `allow` matches nothing.
//!
//! ## Scope
//!
//! Production sources only: `crates/*/src` and the root `src/`, skipping
//! the shim crates (`crates/shims`), this crate, `tests/`, `benches/`,
//! `examples/`, comment lines, and everything after the first
//! `#[cfg(test)]` in a file (by convention test modules sit at the end).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One repo-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (e.g. `raw-std-sync`).
    pub rule: &'static str,
    /// File, relative to the workspace root when produced by
    /// [`scan_workspace`].
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.text
        )
    }
}

/// All rule ids, for reporting and tests.
pub const RULES: &[&str] = &[
    "raw-std-sync",
    "lock-unwrap",
    "unnamed-lock",
    "transfer-alloc",
    "backend-open",
    "undocumented-metric",
    "conn-spawn",
    "front-registry",
    "raw-socket-write",
    "tier-bypass",
    "unsafe-safety-comment",
    "atomic-ordering",
    "sharded-bypass",
];

/// Whether `path` (workspace-relative, `/`-separated) is in scope.
fn in_scope(path: &str) -> bool {
    if !path.ends_with(".rs") {
        return false;
    }
    let parts: Vec<&str> = path.split('/').collect();
    // Only crate sources: crates/<name>/src/... or src/...
    let under_src = parts.first() == Some(&"src")
        || (parts.first() == Some(&"crates") && parts.get(2) == Some(&"src"));
    if !under_src {
        return false;
    }
    // The shim implements the rules; this crate tests them (its sources
    // spell the banned patterns out as string fixtures).
    if parts.get(1) == Some(&"shims") || parts.get(1) == Some(&"lint") {
        return false;
    }
    !parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
}

/// Does `line` (or the line above it) carry `// nestlint: allow(<rule>)`?
fn allowed(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let marker = format!("nestlint: allow({rule})");
    line.contains(&marker) || prev.is_some_and(|p| p.contains(&marker))
}

/// Extracts `"…"` literal arguments of `.counter(` / `.gauge(` /
/// `.meter(` / `.histogram(` registrations on one line.
fn metric_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for call in [".counter(\"", ".gauge(\"", ".meter(\"", ".histogram(\""] {
        let mut rest = line;
        while let Some(pos) = rest.find(call) {
            rest = &rest[pos + call.len()..];
            if let Some(end) = rest.find('"') {
                out.push(rest[..end].to_owned());
            }
        }
    }
    out
}

/// A documented metric pattern: segments split on `.`, where a segment
/// that was `<…>` in DESIGN.md matches any single name segment.
#[derive(Debug, Clone)]
struct MetricPattern {
    segments: Vec<Option<String>>, // None = wildcard segment
}

impl MetricPattern {
    fn matches(&self, name: &str) -> bool {
        let parts: Vec<&str> = name.split('.').collect();
        if parts.len() != self.segments.len() {
            return false;
        }
        self.segments
            .iter()
            .zip(parts)
            .all(|(seg, part)| seg.as_deref().is_none_or(|s| s == part))
    }
}

/// Expands one backtick span from DESIGN.md into concrete patterns:
/// `{a,b}` groups multiply out, `<x>` becomes a wildcard segment.
fn expand_span(span: &str) -> Vec<MetricPattern> {
    // Brace expansion first (handles multiple groups, no nesting).
    fn expand_braces(s: &str) -> Vec<String> {
        let (Some(open), Some(close)) = (s.find('{'), s.find('}')) else {
            return vec![s.to_owned()];
        };
        if close < open {
            return vec![s.to_owned()];
        }
        let mut out = Vec::new();
        for alt in s[open + 1..close].split(',') {
            let candidate = format!("{}{}{}", &s[..open], alt.trim(), &s[close + 1..]);
            out.extend(expand_braces(&candidate));
        }
        out
    }
    expand_braces(span)
        .into_iter()
        .map(|s| MetricPattern {
            segments: s
                .split('.')
                .map(|seg| {
                    if seg.starts_with('<') && seg.ends_with('>') {
                        None
                    } else {
                        Some(seg.to_owned())
                    }
                })
                .collect(),
        })
        .collect()
}

/// Parses DESIGN.md: every backtick code span that looks like a metric
/// name (contains a `.`, uses only name characters plus `{},<>`) becomes
/// one or more [`MetricPattern`]s.
fn documented_metrics(design: &str) -> Vec<MetricPattern> {
    let mut out = Vec::new();
    for (i, span) in design.split('`').enumerate() {
        if i % 2 == 0 || !span.contains('.') {
            continue; // outside backticks, or not dotted
        }
        let ok = span
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "._{},<>".contains(c));
        if ok && !span.is_empty() {
            out.extend(expand_span(span));
        }
    }
    out
}

/// Scans one in-scope source file. `path` must be workspace-relative with
/// `/` separators; `design_patterns` comes from [`documented_metrics`].
fn scan_file(path: &str, content: &str, design_patterns: &[MetricPattern]) -> Vec<Violation> {
    let mut out = Vec::new();
    let is_transfer = path.starts_with("crates/transfer/src");
    let is_backend = path == "crates/storage/src/backend.rs";
    // conn-spawn applies to files that touch listening sockets in
    // production code (pre-`#[cfg(test)]`): connection lifecycles —
    // accept, worker pooling, idle reaping, drain — are owned by
    // `nest-core::session`, the one file allowed to spawn per
    // connection. Hand-rolled `thread::spawn` acceptors bypass the
    // admission caps and the drain joins.
    let pre_test = content.split("#[cfg(test)]").next().unwrap_or("");
    let is_conn_file = path != "crates/core/src/session.rs" && pre_test.contains("TcpListener");
    // sharded-bypass: locking one cell of a striped table directly is a
    // wrapper-module privilege — the module that declares the
    // `ShardedMutex<` owns the ascending-index discipline and the sloppy
    // aggregation protocol. Any other file reaching for a raw cell
    // bypasses both (and can deadlock against ordered multi-cell holds).
    let owns_shards = pre_test.contains("ShardedMutex<");
    // The registry implements the front API; the session layer defines it.
    let is_front_api = path == "crates/core/src/front.rs" || path == "crates/core/src/session.rs";
    // raw-socket-write applies where protocol replies are written: the
    // built-in handlers and plugin front crates. A bare `.write(` may
    // return short on a throttled socket and silently truncate the
    // reply; reply bytes leave through `write_all` or the vectored
    // helpers, which loop to completion.
    let is_reply_path =
        path.starts_with("crates/core/src/handlers/") || path.starts_with("crates/s3front/src");
    // tier-bypass applies to appliance serving paths: the core (fronts,
    // dispatcher, handlers), plugin fronts, and the benches that drive the
    // appliance. Reads there go through `StorageManager::read_chunk`,
    // which consults the §15 memory tier and the FD handle cache; a raw
    // `.backend().read_at` silently skips both and can read stale bytes
    // under a dirty write-back copy. `crates/jbos` is exempt by design:
    // the "just a bunch of servers" baseline deliberately lacks the
    // appliance architecture — that contrast *is* the experiment.
    let is_serving_path = path.starts_with("crates/core/src")
        || path.starts_with("crates/s3front/src")
        || path.starts_with("crates/bench/src");
    // The dispatcher is the one sanctioned LocalFsBackend construction
    // site: it builds the backend and immediately wraps it in the
    // StorageManager.
    let is_backend_ctor_site = path == "crates/core/src/dispatcher.rs";
    // atomic-ordering: the metrics module is the sanctioned home of
    // relaxed counters — monotonic stats nobody synchronizes on.
    let is_stats_module = path == "crates/obs/src/metrics.rs";
    let mut prev: Option<&str> = None;
    // Whether the contiguous comment block (plus any attributes)
    // directly above the current line contains `SAFETY:`.
    let mut safety_above = false;
    for (idx, raw) in content.lines().enumerate() {
        let line = raw.trim();
        // Test modules sit at the end of files by repo convention.
        if line == "#[cfg(test)]" {
            break;
        }
        if line.starts_with("//") {
            if line.contains("SAFETY:") {
                safety_above = true;
            }
            prev = Some(raw);
            continue;
        }
        let mut report = |rule: &'static str| {
            if !allowed(rule, raw, prev) {
                out.push(Violation {
                    rule,
                    path: PathBuf::from(path),
                    line: idx + 1,
                    text: line.to_owned(),
                });
            }
        };

        // raw-std-sync: all locks flow through the shim.
        if line.contains("std::sync::Mutex")
            || line.contains("std::sync::RwLock")
            || line.contains("std::sync::Condvar")
        {
            report("raw-std-sync");
        } else if line.starts_with("use std::sync::") || line.contains(" std::sync::{") {
            let items = line.split("std::sync::").nth(1).unwrap_or("");
            if ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|t| items.contains(t))
            {
                report("raw-std-sync");
            }
        }

        // lock-unwrap: poison is recovered in the shim, never unwrapped.
        for pat in [
            ".lock().unwrap()",
            ".read().unwrap()",
            ".write().unwrap()",
            ".lock().expect(",
            ".read().expect(",
            ".write().expect(",
        ] {
            if line.contains(pat) {
                report("lock-unwrap");
                break;
            }
        }

        // unnamed-lock: production locks must join a named class so the
        // detector and the stats table see them.
        for pat in ["Mutex::new(", "RwLock::new(", "Condvar::new("] {
            if let Some(pos) = line.find(pat) {
                // `sync::Mutex::new(…)` is already a raw-std-sync hit;
                // `ShardedMutex::new(…)` takes a class name and rank, so
                // it is a *named* constructor despite the `::new` suffix.
                if !line[..pos].ends_with("sync::") && !line[..pos].ends_with("Sharded") {
                    report("unnamed-lock");
                }
                break;
            }
        }

        // transfer-alloc: chunk staging buffers come from the BufPool.
        if is_transfer && line.contains("vec![0") {
            report("transfer-alloc");
        }

        // backend-open: disk chunk I/O goes through the FD handle cache.
        if is_backend && (line.contains("File::open(") || line.contains("OpenOptions::new(")) {
            report("backend-open");
        }

        // conn-spawn: connection threads come from the session layer's
        // bounded pools, never ad-hoc spawns next to a listener.
        if is_conn_file && (line.contains("thread::spawn(") || line.contains("thread::Builder")) {
            report("conn-spawn");
        }

        // front-registry: protocol fronts implement `ProtocolFront` and
        // register through the `FrontRegistry` — the one sanctioned
        // `SessionLayer::register` caller. Direct registration (or a raw
        // `SessionHandler` closure) bypasses the per-front dialect,
        // pool-spec and metric wiring the registry owns.
        if !is_front_api {
            for pat in [
                "SessionLayer::register",
                "session.register(",
                "SessionHandler",
            ] {
                if line.contains(pat) {
                    report("front-registry");
                    break;
                }
            }
        }

        // raw-socket-write: reply bytes leave through write_all / the
        // vectored helpers, never an unguarded `.write(`.
        if is_reply_path {
            let mut rest = line;
            while let Some(pos) = rest.find(".write(") {
                let after = &rest[pos + ".write(".len()..];
                // An argument-less `.write()` is an RwLock guard
                // acquisition, not stream I/O.
                if !after.starts_with(')') {
                    report("raw-socket-write");
                    break;
                }
                rest = after;
            }
        }

        // tier-bypass: serving paths read through the storage manager,
        // never the raw backend (see §15 in DESIGN.md).
        if is_serving_path {
            for pat in [".backend().read_at(", ".backend().stat("] {
                if line.contains(pat) {
                    report("tier-bypass");
                    break;
                }
            }
            if line.contains("LocalFsBackend::new(") && !is_backend_ctor_site {
                report("tier-bypass");
            }
        }

        // unsafe-safety-comment: every unsafe region states the proof
        // obligation it discharges, where the reviewer reads it.
        for pat in [
            "unsafe {",
            "unsafe fn ",
            "unsafe impl ",
            "unsafe trait ",
            "unsafe extern",
        ] {
            if line.contains(pat) {
                if !safety_above && !line.contains("SAFETY:") {
                    report("unsafe-safety-comment");
                }
                break;
            }
        }

        // sharded-bypass: raw cell access outside the declaring wrapper.
        if !owns_shards && (line.contains(".lock_idx(") || line.contains(".shard_cell(")) {
            report("sharded-bypass");
        }

        // atomic-ordering: a bare Relaxed access is either a pure
        // statistic (then it lives in, or is annotated like, the stats
        // module) or a latent reordering bug.
        if !is_stats_module && line.contains("Ordering::Relaxed") {
            report("atomic-ordering");
        }

        // undocumented-metric: registered names must be in DESIGN.md.
        for name in metric_literals(line) {
            if !design_patterns.iter().any(|p| p.matches(&name))
                && !allowed("undocumented-metric", raw, prev)
            {
                out.push(Violation {
                    rule: "undocumented-metric",
                    path: PathBuf::from(path),
                    line: idx + 1,
                    text: format!("metric {name:?} is not in DESIGN.md's metrics table"),
                });
            }
        }

        // Attributes between a SAFETY comment and its unsafe item
        // (e.g. `#[inline]`) keep the comment attached.
        if !line.starts_with("#[") {
            safety_above = false;
        }
        prev = Some(raw);
    }
    out
}

/// Scans arbitrary source text under a synthetic workspace-relative path
/// against a DESIGN.md body. Exposed for the rule tests; out-of-scope
/// paths return no violations.
pub fn scan_source(path: &str, content: &str, design: &str) -> Vec<Violation> {
    if !in_scope(path) {
        return Vec::new();
    }
    scan_file(path, content, &documented_metrics(design))
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root`. Reads `DESIGN.md` for the
/// metrics table; missing files surface as `io::Error`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let design = std::fs::read_to_string(root.join("DESIGN.md"))?;
    let patterns = documented_metrics(&design);
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if !in_scope(&rel) {
            continue;
        }
        let content = std::fs::read_to_string(&file)?;
        out.extend(scan_file(&rel, &content, &patterns));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "table: `transfer.bytes_total`, `dispatch.op.<verb>`, \
                          `storage.lot.{count,committed_bytes}`";

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn seeded_raw_std_sync_is_caught() {
        let src = "use std::sync::Mutex;\nfn f() { let m = std::sync::RwLock::new(0); }\n";
        let v = scan_source("crates/grid/src/x.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["raw-std-sync", "raw-std-sync"]);
    }

    #[test]
    fn seeded_lock_unwrap_is_caught() {
        let src = "fn f(m: &M) { m.lock().unwrap().push(1); g.read().expect(\"x\"); }\n";
        let v = scan_source("crates/core/src/x.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["lock-unwrap"]);
    }

    #[test]
    fn seeded_unnamed_lock_is_caught() {
        let src = "fn f() { let m = Mutex::new(0); let c = Condvar::new(); }\n";
        let v = scan_source("crates/storage/src/x.rs", src, DESIGN);
        // One per line (first match reports; both lines here are one line).
        assert_eq!(rules_of(&v), vec!["unnamed-lock"]);
        let named = "fn f() { let m = Mutex::named(\"a.b\", 1, 0); }\n";
        assert!(scan_source("crates/storage/src/x.rs", named, DESIGN).is_empty());
        // ShardedMutex::new carries a class name and rank: named.
        let striped = "fn f() { let s = ShardedMutex::new(\"a.b\", 1, 4, |_| 0); }\n";
        assert!(scan_source("crates/storage/src/x.rs", striped, DESIGN).is_empty());
    }

    #[test]
    fn seeded_transfer_alloc_is_caught_only_in_transfer() {
        let src = "fn f() { let b = vec![0u8; 65536]; }\n";
        let v = scan_source("crates/transfer/src/flow.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["transfer-alloc"]);
        assert!(scan_source("crates/storage/src/flow.rs", src, DESIGN).is_empty());
    }

    #[test]
    fn seeded_backend_open_is_caught_only_in_backend() {
        let src = "fn f() { let f = fs::File::open(p)?; }\n";
        let v = scan_source("crates/storage/src/backend.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["backend-open"]);
        assert!(scan_source("crates/storage/src/other.rs", src, DESIGN).is_empty());
    }

    #[test]
    fn seeded_undocumented_metric_is_caught() {
        let src = "fn f(m: &R) { m.counter(\"transfer.bytes_total\").inc(); \
                   m.gauge(\"sneaky.metric\").set(1); }\n";
        let v = scan_source("crates/obs/src/x.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["undocumented-metric"]);
        assert!(v[0].text.contains("sneaky.metric"));
    }

    #[test]
    fn seeded_conn_spawn_is_caught_only_near_listeners() {
        // A hand-rolled acceptor: listener + per-connection spawn.
        let src = "use std::net::TcpListener;\n\
                   fn serve(l: TcpListener) {\n\
                   for c in l.incoming() { std::thread::spawn(move || handle(c)); }\n\
                   let _ = std::thread::Builder::new();\n\
                   }\n";
        let v = scan_source("crates/core/src/server.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["conn-spawn", "conn-spawn"]);
        // The session layer is the one place allowed to spawn workers.
        assert!(scan_source("crates/core/src/session.rs", src, DESIGN).is_empty());
        // Spawns in files with no listener (e.g. background compaction)
        // are out of the rule's scope.
        let no_listener = "fn f() { std::thread::spawn(|| work()); }\n";
        assert!(scan_source("crates/core/src/server.rs", no_listener, DESIGN).is_empty());
        // A listener that only appears inside tests does not arm the rule.
        let test_only = "fn f() { std::thread::spawn(|| work()); }\n\
                         #[cfg(test)]\n\
                         mod tests { use std::net::TcpListener; }\n";
        assert!(scan_source("crates/core/src/server.rs", test_only, DESIGN).is_empty());
        // Suppression works as for every other rule.
        let allowed = "use std::net::TcpListener;\n\
                       // nestlint: allow(conn-spawn): bootstrap probe thread\n\
                       fn f() { std::thread::spawn(|| probe()); }\n";
        assert!(scan_source("crates/core/src/server.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn seeded_front_registry_is_caught_outside_the_registry() {
        let src = "use nest_core::session::SessionHandler;\n\
                   fn f() { let addr = session.register(\"x\", l, reply, h)?; }\n\
                   fn g() { SessionLayer::register(s, \"y\", l, reply, h); }\n";
        let v = scan_source("crates/jbos/src/common.rs", src, DESIGN);
        assert_eq!(
            rules_of(&v),
            vec!["front-registry", "front-registry", "front-registry"]
        );
        // The registry implements the API; the session layer defines it.
        assert!(scan_source("crates/core/src/front.rs", src, DESIGN).is_empty());
        assert!(scan_source("crates/core/src/session.rs", src, DESIGN).is_empty());
        // Suppression works as for every other rule.
        let allowed = "// nestlint: allow(front-registry): migration fixture\n\
                       fn f() { let h: SessionHandler = mk(); }\n";
        assert!(scan_source("crates/core/src/x.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn seeded_raw_socket_write_is_caught_only_in_reply_paths() {
        let src = "fn f(s: &mut TcpStream) { s.write(b\"HTTP/1.1 200 OK\\r\\n\")?; }\n";
        let v = scan_source("crates/core/src/handlers/http.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["raw-socket-write"]);
        assert_eq!(
            rules_of(&scan_source("crates/s3front/src/lib.rs", src, DESIGN)),
            vec!["raw-socket-write"]
        );
        // write_all is the sanctioned spelling: it loops to completion.
        let ok = "fn f(s: &mut TcpStream) { s.write_all(b\"x\")?; }\n";
        assert!(scan_source("crates/core/src/handlers/http.rs", ok, DESIGN).is_empty());
        // An argument-less `.write()` is an RwLock guard, not stream I/O.
        let guard = "fn f() { let mut g = table.write(); g.push(1); }\n";
        assert!(scan_source("crates/core/src/handlers/http.rs", guard, DESIGN).is_empty());
        // Outside the reply paths the rule does not apply (the transfer
        // crate's sinks handle short writes by contract, with tests).
        assert!(scan_source("crates/transfer/src/flow.rs", src, DESIGN).is_empty());
        // Suppression works as for every other rule.
        let allowed = "// nestlint: allow(raw-socket-write): best-effort probe, short write ok\n\
                       fn f(s: &mut S) { s.write(b)?; }\n";
        assert!(scan_source("crates/core/src/handlers/http.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn seeded_tier_bypass_is_caught_only_in_serving_paths() {
        let src = "fn f(sm: &StorageManager) {\n\
                   let n = sm.backend().read_at(&p, 0, &mut buf)?;\n\
                   let st = sm.backend().stat(&p)?;\n\
                   }\n";
        let v = scan_source("crates/core/src/handlers/http.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["tier-bypass", "tier-bypass"]);
        // Benches drive the appliance, so they are serving paths too.
        assert_eq!(
            rules_of(&scan_source("crates/bench/src/bin/x.rs", src, DESIGN)),
            vec!["tier-bypass", "tier-bypass"]
        );
        // The storage crate IS the manager/tier/handle-cache; exempt.
        assert!(scan_source("crates/storage/src/manager.rs", src, DESIGN).is_empty());
        // JBOS is the deliberately tier-less baseline; exempt by design.
        assert!(scan_source("crates/jbos/src/httpd.rs", src, DESIGN).is_empty());
        // Raw backend construction outside the dispatcher is the same
        // bypass smell; the dispatcher is the sanctioned assembly site.
        let ctor = "fn f() { let b = LocalFsBackend::new(&root)?; }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/server.rs", ctor, DESIGN)),
            vec!["tier-bypass"]
        );
        assert!(scan_source("crates/core/src/dispatcher.rs", ctor, DESIGN).is_empty());
        // Suppression works as for every other rule (benches stage
        // fixture files through the raw backend with a reasoned allow).
        let allowed = "// nestlint: allow(tier-bypass): staging fixture bytes, not serving\n\
                       fn f() { let b = LocalFsBackend::new(&root)?; }\n";
        assert!(scan_source("crates/bench/src/bin/x.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn seeded_unsafe_without_safety_comment_is_caught() {
        let src = "fn f() { let x = unsafe { *p };\n\
                   unsafe fn g() {}\n\
                   unsafe impl Send for T {}\n\
                   }\n";
        let v = scan_source("crates/core/src/x.rs", src, DESIGN);
        assert_eq!(
            rules_of(&v),
            vec![
                "unsafe-safety-comment",
                "unsafe-safety-comment",
                "unsafe-safety-comment"
            ]
        );
        // A SAFETY comment directly above discharges the rule...
        let above = "// SAFETY: p is valid for reads for the guard's lifetime\n\
                     fn f() { let x = unsafe { *p }; }\n";
        assert!(scan_source("crates/core/src/x.rs", above, DESIGN).is_empty());
        // ...including as a later line of a longer comment block, and
        // across an interposed attribute.
        let block = "// Reads the mapped page.\n\
                     // SAFETY: mapping outlives self; see new().\n\
                     #[inline]\n\
                     fn f() { let x = unsafe { *p }; }\n";
        assert!(scan_source("crates/core/src/x.rs", block, DESIGN).is_empty());
        // ...or trailing on the same line.
        let same = "fn f() { unsafe { syscall() } } // SAFETY: fds outlive the call\n";
        assert!(scan_source("crates/core/src/x.rs", same, DESIGN).is_empty());
        // An unrelated comment above does not.
        let unrelated = "// fast path\nfn f() { let x = unsafe { *p }; }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/x.rs", unrelated, DESIGN)),
            vec!["unsafe-safety-comment"]
        );
        // A SAFETY comment only attaches to the adjacent item: code in
        // between detaches it.
        let detached = "// SAFETY: for g only\nfn g() {}\nfn f() { unsafe { h() } }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/x.rs", detached, DESIGN)),
            vec!["unsafe-safety-comment"]
        );
        // The word inside prose or a string is not an unsafe region.
        let prose = "fn f(s: &str) { assert!(!s.contains('\"'), \"JSON-unsafe string\"); }\n";
        assert!(scan_source("crates/core/src/x.rs", prose, DESIGN).is_empty());
    }

    #[test]
    fn seeded_atomic_ordering_is_caught_outside_stats() {
        let src = "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n";
        let v = scan_source("crates/core/src/x.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["atomic-ordering"]);
        // The stats module is the sanctioned home of relaxed counters.
        assert!(scan_source("crates/obs/src/metrics.rs", src, DESIGN).is_empty());
        // Stronger orderings are always fine.
        let seq = "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::SeqCst); }\n";
        assert!(scan_source("crates/core/src/x.rs", seq, DESIGN).is_empty());
        // A reasoned allow documents why no synchronization rides on it.
        let allowed =
            "// nestlint: allow(atomic-ordering): monotonic id tick, nothing reads it for sync\n\
                       fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(scan_source("crates/core/src/x.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn seeded_sharded_bypass_is_caught_outside_the_wrapper() {
        let src = "fn f(t: &LotManager) {\n\
                   let g = t.cells.lock_idx(0);\n\
                   let c = t.cells.shard_cell(1);\n\
                   }\n";
        let v = scan_source("crates/core/src/x.rs", src, DESIGN);
        assert_eq!(rules_of(&v), vec!["sharded-bypass", "sharded-bypass"]);
        // The wrapper module — the file declaring the striped table —
        // owns the cell-access discipline and is exempt.
        let wrapper = "struct T { cells: ShardedMutex<Cell> }\n\
                       fn f(t: &T) { let g = t.cells.lock_idx(0); }\n";
        assert!(scan_source("crates/storage/src/x.rs", wrapper, DESIGN).is_empty());
        // A declaration that only appears inside tests does not exempt
        // the production half of the file.
        let test_only = "fn f(t: &T) { let g = t.cells.lock_idx(0); }\n\
                         #[cfg(test)]\n\
                         mod tests { struct S { c: ShardedMutex<u8> } }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/x.rs", test_only, DESIGN)),
            vec!["sharded-bypass"]
        );
        // Suppression works as for every other rule.
        let allowed = "// nestlint: allow(sharded-bypass): single-cell probe, no nesting\n\
                       fn f(t: &T) { let g = t.cells.lock_idx(0); }\n";
        assert!(scan_source("crates/core/src/x.rs", allowed, DESIGN).is_empty());
    }

    #[test]
    fn design_brace_and_wildcard_expansion() {
        let src = "fn f(m: &R) { m.counter(\"dispatch.op.get\").inc(); \
                   m.gauge(\"storage.lot.count\").set(1); \
                   m.gauge(\"storage.lot.committed_bytes\").set(1); }\n";
        assert!(scan_source("crates/core/src/x.rs", src, DESIGN).is_empty());
        // Wildcards match exactly one segment.
        let deep = "fn f(m: &R) { m.counter(\"dispatch.op.get.extra\").inc(); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/x.rs", deep, DESIGN)),
            vec!["undocumented-metric"]
        );
    }

    #[test]
    fn allow_comment_suppresses_same_and_previous_line() {
        let same = "fn f() { let b = vec![0u8; 4]; } // nestlint: allow(transfer-alloc): fixture\n";
        assert!(scan_source("crates/transfer/src/x.rs", same, DESIGN).is_empty());
        let prev = "// nestlint: allow(transfer-alloc): one-off probe buffer\nfn f() { let b = vec![0u8; 4]; }\n";
        assert!(scan_source("crates/transfer/src/x.rs", prev, DESIGN).is_empty());
        // A different rule's allow does not suppress.
        let wrong = "// nestlint: allow(backend-open): nope\nfn f() { let b = vec![0u8; 4]; }\n";
        assert_eq!(
            rules_of(&scan_source("crates/transfer/src/x.rs", wrong, DESIGN)),
            vec!["transfer-alloc"]
        );
    }

    #[test]
    fn test_modules_comments_and_out_of_scope_paths_are_skipped() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(scan_source("crates/core/src/x.rs", src, DESIGN).is_empty());
        let comment = "// std::sync::Mutex is banned; see DESIGN.md\n";
        assert!(scan_source("crates/core/src/x.rs", comment, DESIGN).is_empty());
        let banned = "use std::sync::Mutex;\n";
        assert!(scan_source("crates/core/tests/x.rs", banned, DESIGN).is_empty());
        assert!(scan_source("crates/shims/parking_lot/src/lib.rs", banned, DESIGN).is_empty());
        assert!(scan_source("crates/lint/src/lib.rs", banned, DESIGN).is_empty());
        assert!(scan_source("crates/core/src/x.txt", banned, DESIGN).is_empty());
    }

    /// The permanent ratchet: the actual workspace is clean. A violation
    /// here means new code broke a repo rule (or needs a reasoned
    /// `nestlint: allow`).
    #[test]
    fn actual_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let violations = scan_workspace(root).expect("scan");
        assert!(
            violations.is_empty(),
            "repo-rule violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
