//! `nest-check` — the appliance's self-checking layer.
//!
//! NeST's core claim is *manageability*: an appliance that administers and
//! checks itself. This crate is the code half of that claim (the lint gate
//! in `crates/lint` is the source half). It bundles:
//!
//! 1. **[`invariant!`]** — debug-build state assertions for the cross-lock
//!    consistency properties that PR 2's live bugs violated: stride
//!    scheduler flow conservation, lot byte conservation, buffer-pool
//!    outstanding accounting, and FD-handle-cache capacity.
//! 2. **[`lock_order`]** — re-export of the vendored lock shim's
//!    Eraser-style acquisition-order deadlock detector (see
//!    `crates/shims/parking_lot/src/order.rs`). Enable at runtime with
//!    [`lock_order::enable`] or `NEST_LOCK_ORDER=1`.
//! 3. **[`lockstats`]** — re-export of the per-lock-class contention
//!    statistics (`acquires / contended / wait_ns / hold_ns`) that named
//!    locks record in every build.
//!
//! The invariant macro compiles to nothing in plain release builds: the
//! condition expression sits behind a `const` gate ([`enforcing`]) that
//! the optimizer removes when it is `false`.

pub use parking_lot::lock_order;
pub use parking_lot::lockstats;

/// Whether [`invariant!`] conditions are evaluated in this build.
///
/// `true` under `debug_assertions` or when the `invariants` cargo feature
/// is enabled; `const` so release builds fold the whole check away.
pub const fn enforcing() -> bool {
    cfg!(any(debug_assertions, feature = "invariants"))
}

/// Asserts an internal state invariant, with formatted context.
///
/// Unlike `debug_assert!`, the failure message is prefixed so invariant
/// trips are grep-able in test logs, and enforcement can be turned on in
/// release builds via the `invariants` feature (e.g. for a soak run).
///
/// ```
/// # use nest_check::invariant;
/// let committed: u64 = 10;
/// let charges: u64 = 4 + 6;
/// invariant!(
///     committed == charges,
///     "lot byte conservation: committed={} != sum(charges)={}",
///     committed,
///     charges
/// );
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr) => {
        $crate::invariant!($cond, stringify!($cond));
    };
    ($cond:expr, $($arg:tt)+) => {
        if $crate::enforcing() && !($cond) {
            panic!("nest-check invariant violated: {}", format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        invariant!(1 + 1 == 2);
        invariant!(true, "never printed {}", 42);
    }

    #[test]
    #[cfg_attr(not(any(debug_assertions, feature = "invariants")), ignore)]
    fn failing_invariant_panics_with_prefix() {
        let err = std::panic::catch_unwind(|| {
            invariant!(2 + 2 == 5, "arithmetic drifted: {}", 4);
        })
        .expect_err("must panic when enforcing");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| format!("<unknown payload type: {:?}>", err.type_id()));
        assert!(
            msg.contains("nest-check invariant violated: arithmetic drifted: 4"),
            "message = {msg:?}"
        );
    }

    #[test]
    fn enforcing_matches_build_profile() {
        assert_eq!(
            super::enforcing(),
            cfg!(any(debug_assertions, feature = "invariants"))
        );
    }
}
