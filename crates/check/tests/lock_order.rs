//! Regression tests for the lock-order (deadlock-potential) detector.
//!
//! These run with detection enabled programmatically. All lock classes
//! here use `test.order.*` names unique to their test, because the
//! acquisition-order graph is process-global and the harness runs tests
//! on concurrent threads.

use nest_check::lock_order;
use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_default()
}

/// A constructed AB/BA pair panics on the cycle-forming edge — before the
/// acquisition could block — and the report carries both acquisition
/// backtraces plus the inverted order.
#[test]
fn ab_ba_deadlock_pair_is_detected_with_both_stacks() {
    lock_order::enable();
    let a = Mutex::named("test.order.abba-a", 1, ());
    let b = Mutex::named("test.order.abba-b", 2, ());

    // Establish the order a → b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Now invert it: b → a must panic at check time, not deadlock.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock(); // cycle-forming edge
    }))
    .expect_err("inverted acquisition order must panic");
    let msg = panic_message(err);

    assert!(
        msg.contains("lock-order cycle detected"),
        "message = {msg:?}"
    );
    assert!(
        msg.contains("acquiring 'test.order.abba-a'")
            && msg.contains("while holding 'test.order.abba-b'"),
        "message = {msg:?}"
    );
    // Both backtraces are present: the acquisition that is closing the
    // cycle now, and the one that recorded the opposing edge earlier.
    assert!(
        msg.contains("current acquisition backtrace"),
        "message = {msg:?}"
    );
    assert!(
        msg.contains("recorded acquisition backtrace"),
        "message = {msg:?}"
    );
    // The report names the inverted cycle path.
    assert!(
        msg.contains("test.order.abba-a -> test.order.abba-b -> test.order.abba-a"),
        "message = {msg:?}"
    );

    // The detector's thread-local held stack is clean after unwinding
    // (guards released via Drop during the panic).
    assert_eq!(lock_order::held_depth(), 0);
}

/// Cycles through an intermediate class are found, not just direct AB/BA:
/// recording x → y and y → z makes a later z → x acquisition a cycle.
#[test]
fn transitive_cycle_is_detected() {
    lock_order::enable();
    let x = Mutex::named("test.order.tri-x", 1, ());
    let y = Mutex::named("test.order.tri-y", 2, ());
    let z = Mutex::named("test.order.tri-z", 3, ());

    {
        let _gx = x.lock();
        let _gy = y.lock();
    }
    {
        let _gy = y.lock();
        let _gz = z.lock();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gz = z.lock();
        let _gx = x.lock(); // closes x → y → z → x
    }))
    .expect_err("transitive inversion must panic");
    let msg = panic_message(err);
    assert!(
        msg.contains("test.order.tri-x -> test.order.tri-y -> test.order.tri-z"),
        "message = {msg:?}"
    );
}

/// The appliance's canonical rank-ascending nesting (dispatcher →
/// scheduler → bufpool, modeled here with matching ranks) never trips the
/// detector, in either repetition or partial prefixes.
#[test]
fn rank_consistent_nesting_passes() {
    lock_order::enable();
    let dispatcher = Mutex::named("test.order.dispatcher", 110, ());
    let scheduler = Mutex::named("test.order.scheduler", 200, ());
    let bufpool = Mutex::named("test.order.bufpool", 400, ());

    for _ in 0..3 {
        let _gd = dispatcher.lock();
        let _gs = scheduler.lock();
        let _gb = bufpool.lock();
        assert_eq!(lock_order::held_depth(), 3);
    }
    // Partial prefixes and skip-level nesting in the same direction are
    // also consistent with the established order.
    {
        let _gd = dispatcher.lock();
        let _gb = bufpool.lock();
    }
    {
        let _gs = scheduler.lock();
        let _gb = bufpool.lock();
    }
    assert_eq!(lock_order::held_depth(), 0);
}

/// Same-class acquisitions are exempt: RwLock read-read recursion (one
/// instance or two instances of one class) is not reported, because a
/// name identifies a class and instances cannot be distinguished.
#[test]
fn rwlock_read_read_recursion_is_not_a_false_positive() {
    lock_order::enable();
    let l1 = RwLock::named("test.order.rr", 10, 1u32);
    let l2 = RwLock::named("test.order.rr", 10, 2u32);

    let outer = l1.read();
    let inner_same = l1.read(); // same instance, recursive read
    let inner_other = l2.read(); // sibling instance, same class
    assert_eq!(*outer + *inner_same + *inner_other, 4);
    drop(inner_other);
    drop(inner_same);
    drop(outer);

    // Mixed with another class in a consistent order, reads still pass.
    let m = Mutex::named("test.order.rr-outer", 9, ());
    for _ in 0..2 {
        let _g = m.lock();
        let _r1 = l1.read();
        let _r2 = l2.read();
    }
}

/// `try_lock` can be the *held* side of an inversion (it holds the lock),
/// but never the blocking side — acquiring via try_lock records no
/// inbound edge, so opportunistic try-then-bail patterns are exempt.
#[test]
fn try_lock_records_no_inbound_edge() {
    lock_order::enable();
    let p = Mutex::named("test.order.try-p", 1, ());
    let q = Mutex::named("test.order.try-q", 2, ());

    // Establish p → q.
    {
        let _gp = p.lock();
        let _gq = q.lock();
    }
    // q held, then p via try_lock: would be an inversion if try_lock
    // recorded an edge, but it cannot block, so it must pass.
    {
        let _gq = q.lock();
        let _gp = p.try_lock().expect("uncontended");
    }
    // The blocking inversion is still caught afterwards.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gq = q.lock();
        let _gp = p.lock();
    }))
    .expect_err("blocking inversion still panics");
    assert!(panic_message(err).contains("lock-order cycle detected"));
}
