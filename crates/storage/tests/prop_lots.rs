//! Property tests for lot accounting and path virtualization invariants.

use nest_storage::lot::LotOwner;
use nest_storage::{LotManager, QuotaTable, ReclaimPolicy, VPath};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random sequence of lot-manager operations.
#[derive(Debug, Clone)]
enum Op {
    Create {
        user: u8,
        capacity: u64,
        duration: u64,
    },
    Charge {
        user: u8,
        file: u8,
        bytes: u64,
    },
    Release {
        file: u8,
    },
    Terminate {
        index: usize,
    },
    Advance {
        secs: u64,
    },
    Touch {
        file: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u64..400, 1u64..50).prop_map(|(user, capacity, duration)| Op::Create {
            user,
            capacity,
            duration
        }),
        (0u8..4, 0u8..8, 1u64..300).prop_map(|(user, file, bytes)| Op::Charge {
            user,
            file,
            bytes
        }),
        (0u8..8).prop_map(|file| Op::Release { file }),
        (0usize..16).prop_map(|index| Op::Terminate { index }),
        (1u64..30).prop_map(|secs| Op::Advance { secs }),
        (0u8..8).prop_map(|file| Op::Touch { file }),
    ]
}

fn username(u: u8) -> String {
    format!("user{}", u)
}

fn filename(f: u8) -> VPath {
    VPath::parse(&format!("/f{}", f)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any operation sequence the guarantee invariant holds: the sum
    /// of active lot capacities plus lingering best-effort bytes never
    /// exceeds the total capacity, and no lot is ever overfull.
    #[test]
    fn lot_invariants_hold_under_random_ops(
        ops in prop::collection::vec(arb_op(), 1..60),
        policy in prop_oneof![
            Just(ReclaimPolicy::ExpiredFirst),
            Just(ReclaimPolicy::LargestFirst),
            Just(ReclaimPolicy::Lru)
        ],
    ) {
        const TOTAL: u64 = 1000;
        let lm = LotManager::new(TOTAL, policy);
        let mut now = 0u64;
        let mut created = Vec::new();
        let no_groups: HashSet<String> = HashSet::new();

        for op in ops {
            match op {
                Op::Create { user, capacity, duration } => {
                    if let Ok((id, _)) = lm.create(
                        LotOwner::User(username(user)), capacity, duration, now) {
                        created.push(id);
                    }
                }
                Op::Charge { user, file, bytes } => {
                    let _ = lm.charge_file(&username(user), &no_groups,
                                           &filename(file), bytes, now);
                }
                Op::Release { file } => {
                    lm.release_file(&filename(file));
                }
                Op::Terminate { index } => {
                    if !created.is_empty() {
                        let id = created[index % created.len()];
                        let _ = lm.terminate(id);
                    }
                }
                Op::Advance { secs } => now += secs,
                Op::Touch { file } => lm.touch_file(&filename(file), now),
            }

            // Invariants after every step.
            let lots = lm.all_lots();
            let active_cap: u64 = lots.iter()
                .filter(|l| !l.is_expired(now)).map(|l| l.capacity).sum();
            let best_used: u64 = lots.iter()
                .filter(|l| l.is_expired(now)).map(|l| l.used).sum();
            prop_assert!(active_cap + best_used <= TOTAL,
                "guarantee violated: {} + {} > {}", active_cap, best_used, TOTAL);
            for lot in &lots {
                prop_assert!(lot.used <= lot.capacity, "overfull lot {:?}", lot.id);
                let file_sum: u64 = lot.files.values().sum();
                prop_assert_eq!(lot.used, file_sum, "per-file accounting drift");
            }
        }
    }

    /// Quota charges and releases always balance: usage equals the sum of
    /// outstanding successful charges.
    #[test]
    fn quota_usage_matches_ledger(
        limit in 0u64..10_000,
        ops in prop::collection::vec((any::<bool>(), 1u64..500), 1..100),
    ) {
        let q = QuotaTable::new();
        q.set_limit("u", limit);
        let mut outstanding: Vec<u64> = Vec::new();
        for (is_charge, amount) in ops {
            if is_charge {
                if q.charge("u", amount).is_ok() {
                    outstanding.push(amount);
                }
            } else if let Some(amt) = outstanding.pop() {
                q.release("u", amt);
            }
            let expected: u64 = outstanding.iter().sum();
            prop_assert_eq!(q.usage("u"), expected);
            prop_assert!(q.usage("u") <= limit);
        }
    }

    /// VPath parsing never panics, and anything it accepts is normalized:
    /// reparsing the display form is the identity.
    #[test]
    fn vpath_parse_normalizes(raw in "[a-zA-Z0-9_ ./-]{0,40}") {
        if let Ok(p) = VPath::parse(&raw) {
            let printed = p.to_string();
            let reparsed = VPath::parse(&printed).unwrap();
            prop_assert_eq!(&p, &reparsed);
            // Normal form: no dot components, always absolute.
            prop_assert!(printed.starts_with('/'));
            for c in p.components() {
                prop_assert!(c != "." && c != ".." && !c.is_empty());
            }
        }
    }

    /// join never produces a path outside the base's root, and absolute
    /// joins ignore the base.
    #[test]
    fn vpath_join_stays_rooted(base in "[a-z/]{0,20}", rel in "[a-z./]{0,20}") {
        if let Ok(b) = VPath::parse(&if base.is_empty() { "/".into() } else { base }) {
            if let Ok(j) = b.join(&rel) {
                prop_assert!(j.starts_with(&VPath::root()));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// snapshot → restore is lossless for any reachable lot-table state:
    /// every lot's owner, capacity, expiry and per-file charges survive.
    #[test]
    fn snapshot_restore_is_lossless(
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        const TOTAL: u64 = 1000;
        let lm = LotManager::new(TOTAL, ReclaimPolicy::ExpiredFirst);
        let mut now = 0u64;
        let no_groups: HashSet<String> = HashSet::new();
        let mut created = Vec::new();
        for op in ops {
            match op {
                Op::Create { user, capacity, duration } => {
                    if let Ok((id, _)) = lm.create(
                        LotOwner::User(username(user)), capacity, duration, now) {
                        created.push(id);
                    }
                }
                Op::Charge { user, file, bytes } => {
                    let _ = lm.charge_file(&username(user), &no_groups,
                                           &filename(file), bytes, now);
                }
                Op::Release { file } => { lm.release_file(&filename(file)); }
                Op::Terminate { index } => {
                    if !created.is_empty() {
                        let id = created[index % created.len()];
                        let _ = lm.terminate(id);
                    }
                }
                Op::Advance { secs } => now += secs,
                Op::Touch { file } => lm.touch_file(&filename(file), now),
            }
        }
        let snap = lm.snapshot();
        let restored = LotManager::restore(&snap, TOTAL, ReclaimPolicy::ExpiredFirst, now);
        let before = lm.all_lots();
        let after = restored.all_lots();
        prop_assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(b.id, a.id);
            prop_assert_eq!(&b.owner, &a.owner);
            prop_assert_eq!(b.capacity, a.capacity);
            prop_assert_eq!(b.expires_at, a.expires_at);
            prop_assert_eq!(b.used, a.used);
            prop_assert_eq!(&b.files, &a.files);
        }
        // And a second snapshot is byte-identical (stable format).
        prop_assert_eq!(snap, restored.snapshot());
    }
}

/// Not a property test, but it belongs with the invariants: concurrent
/// charges from many threads never over-commit a lot.
#[test]
fn concurrent_charges_never_overfill() {
    use std::sync::Arc;
    let lm = Arc::new(LotManager::new(100_000, ReclaimPolicy::ExpiredFirst));
    lm.create(LotOwner::User("shared".into()), 50_000, 3600, 0)
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..8 {
        let lm = Arc::clone(&lm);
        handles.push(std::thread::spawn(move || {
            let groups = HashSet::new();
            let mut granted = 0u64;
            for i in 0..200u64 {
                let path = VPath::parse(&format!("/t{}-f{}", t, i)).unwrap();
                if lm.charge_file("shared", &groups, &path, 100, 1).is_ok() {
                    granted += 100;
                }
            }
            granted
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // 8 threads x 200 x 100 bytes = 160k offered against a 50k lot.
    assert_eq!(total, 50_000);
    let lots = lm.all_lots();
    assert_eq!(lots[0].used, 50_000);
    let file_sum: u64 = lots[0].files.values().sum();
    assert_eq!(file_sum, 50_000);
}
