//! Integration tests for the FD handle cache behind [`LocalFsBackend`].
//!
//! The cache must be invisible: every namespace mutation (rename, remove,
//! truncate, aborted PUT) has to invalidate cached handles so that no read
//! or write ever lands on a stale file object. And in steady state it must
//! actually work: chunked reads of a hot file open the file once.

use nest_storage::acl::{AclTable, Principal};
use nest_storage::backend::{LocalFsBackend, StorageBackend};
use nest_storage::lot::ReclaimPolicy;
use nest_storage::manager::StorageManager;
use nest_storage::namespace::VPath;
use std::path::PathBuf;
use std::sync::Arc;

/// Unique scratch dir per test (no tempfile crate in the container).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nest-hcache-it-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend(tag: &str) -> LocalFsBackend {
    LocalFsBackend::new(scratch(tag)).unwrap()
}

fn vp(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn write_file(b: &LocalFsBackend, path: &VPath, data: &[u8]) {
    b.create(path).unwrap();
    b.write_at(path, 0, data).unwrap();
}

fn read_all(b: &LocalFsBackend, path: &VPath, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    let n = b.read_at(path, 0, &mut buf).unwrap();
    buf.truncate(n);
    buf
}

#[test]
fn rename_invalidates_both_names() {
    let b = backend("rename");
    let a = vp("/a.dat");
    let c = vp("/c.dat");
    write_file(&b, &a, b"old-a");
    // Warm the cache for the source name.
    assert_eq!(read_all(&b, &a, 16), b"old-a");

    b.rename(&a, &c).unwrap();

    // Destination reads the moved bytes (no stale-miss on the new name).
    assert_eq!(read_all(&b, &c, 16), b"old-a");
    // A new file created under the old name must not be served from the
    // pre-rename handle.
    write_file(&b, &a, b"new-a!");
    assert_eq!(read_all(&b, &a, 16), b"new-a!");
    // And the old name is genuinely a different file now.
    assert_eq!(read_all(&b, &c, 16), b"old-a");
}

#[test]
fn remove_then_recreate_does_not_serve_stale_handle() {
    let b = backend("remove");
    let f = vp("/f.dat");
    write_file(&b, &f, b"first version");
    assert_eq!(read_all(&b, &f, 32), b"first version");

    b.remove(&f).unwrap();
    assert!(b.read_at(&f, 0, &mut [0u8; 4]).is_err());

    write_file(&b, &f, b"second");
    assert_eq!(read_all(&b, &f, 32), b"second");
}

#[test]
fn truncate_mid_transfer_is_seen_by_cached_reader() {
    let b = backend("trunc");
    let f = vp("/big.dat");
    let payload = vec![0x5Au8; 4096];
    write_file(&b, &f, &payload);

    // Simulate a chunked GET in progress: first chunk read caches the FD.
    let mut chunk = vec![0u8; 1024];
    assert_eq!(b.read_at(&f, 0, &mut chunk).unwrap(), 1024);

    // Concurrent admin truncates the file under the transfer.
    b.truncate(&f, 512).unwrap();

    // Reads past the new EOF must observe the truncation, not stale cache.
    assert_eq!(b.read_at(&f, 1024, &mut chunk).unwrap(), 0);
    assert_eq!(b.read_at(&f, 0, &mut chunk).unwrap(), 512);
    // Truncate-extend back out: the zero fill is visible too.
    b.truncate(&f, 2048).unwrap();
    assert_eq!(b.read_at(&f, 0, &mut chunk).unwrap(), 1024);
    assert!(chunk[512..1024].iter().all(|&x| x == 0));
}

#[test]
fn abort_put_drops_partial_file_and_cached_handle() {
    let backend: Arc<dyn StorageBackend> = Arc::new(self::backend("abort"));
    let mgr = StorageManager::new(
        Arc::clone(&backend),
        AclTable::open_by_default(),
        1 << 20,
        ReclaimPolicy::Lru,
    )
    .with_lots_disabled();
    let who = Principal::user("alice");
    let f = vp("/partial.dat");

    // Admit a PUT and stream a couple of chunks (these cache the FD).
    mgr.begin_put(&who, "gridftp", &f, 4096).unwrap();
    mgr.write_chunk(&who, &f, 0, b"chunk-one").unwrap();
    mgr.write_chunk(&who, &f, 9, b"chunk-two").unwrap();

    // The transfer fails; abort must remove the partial file.
    mgr.abort_put(&f);
    assert!(backend.stat(&f).is_err());

    // A retry of the PUT starts from a clean slate — no resurrected bytes
    // from a stale cached handle.
    mgr.begin_put(&who, "gridftp", &f, 16).unwrap();
    mgr.write_chunk(&who, &f, 0, b"fresh").unwrap();
    let mut buf = vec![0u8; 64];
    let n = mgr.read_chunk(&f, 0, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"fresh");
}

#[test]
fn steady_state_chunked_read_opens_once() {
    let b = backend("steady");
    let f = vp("/hot.dat");
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    write_file(&b, &f, &payload);

    let before = b.handle_cache_stats();
    // A 64 KiB GET in 8 KiB NFS-block chunks: 8 reads, 1 open.
    let mut out = Vec::new();
    let mut chunk = vec![0u8; 8192];
    let mut off = 0u64;
    loop {
        let n = b.read_at(&f, off, &mut chunk).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&chunk[..n]);
        off += n as u64;
    }
    assert_eq!(out, payload);

    let after = b.handle_cache_stats();
    // At most one open for the whole chunked read (the write that staged
    // the file may already have cached the handle); every chunk hits.
    assert!(after.misses - before.misses <= 1, "stats: {after:?}");
    assert!(after.hits - before.hits >= 8, "stats: {after:?}");
    assert!(after.open >= 1);
}

#[test]
fn capacity_zero_disables_caching_but_stays_correct() {
    let b = LocalFsBackend::new(scratch("disabled"))
        .unwrap()
        .with_handle_cache_capacity(0);
    let f = vp("/f.dat");
    write_file(&b, &f, b"data");
    assert_eq!(read_all(&b, &f, 16), b"data");
    let st = b.handle_cache_stats();
    assert_eq!((st.hits, st.misses, st.open), (0, 0, 0));
}

#[test]
fn eviction_keeps_fd_count_bounded() {
    let b = LocalFsBackend::new(scratch("evict"))
        .unwrap()
        .with_handle_cache_capacity(4);
    for i in 0..32 {
        let f = vp(&format!("/f{i}.dat"));
        write_file(&b, &f, b"x");
        assert_eq!(read_all(&b, &f, 4), b"x");
    }
    let st = b.handle_cache_stats();
    assert!(st.open <= 4, "stats: {st:?}");
    assert!(st.evictions > 0);
}
