//! The storage manager façade (paper §2.1, §5).
//!
//! "The storage manager has four main responsibilities: virtualizing and
//! controlling the physical storage of the machine, directly executing
//! non-transfer requests, implementing and enforcing access control, and
//! managing guaranteed storage space in the form of lots."
//!
//! Every operation here is synchronous and thread-safe; the dispatcher
//! serializes macro-requests, and data transfers are only *admitted* here
//! (`begin_put`/`begin_get`) before being handed to the transfer manager.

use crate::acl::{request_ad, AccessRight, AclEntry, AclTable, Principal};
use crate::backend::{FileKind, FileStat, StorageBackend};
use crate::lot::{Evicted, Lot, LotError, LotId, LotManager, LotOwner, ReclaimPolicy};
use crate::mem_tier::{DirtyObject, MemTier, MemTierStats, WritePolicy};
use crate::namespace::{PathError, VPath};
use nest_classad::{ClassAd, Value};
use nest_obs::{Counter, Gauge, Histogram, Obs};
use nest_proto::request::NestError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Predicts whether an object is already memory-resident (the transfer
/// layer's gray-box cache model, injected by the dispatcher so the
/// storage crate needs no dependency on it). Arguments: virtual path
/// (display form) and object size.
pub type ResidencyHint = Arc<dyn Fn(&str, u64) -> bool + Send + Sync>;

/// Errors surfaced to protocol handlers.
#[derive(Debug)]
pub enum StorageError {
    /// Access denied by the ACL.
    Denied,
    /// Lot / space-guarantee failure.
    Lot(LotError),
    /// Invalid virtual path.
    Path(PathError),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Denied => write!(f, "permission denied"),
            StorageError::Lot(e) => write!(f, "lot error: {}", e),
            StorageError::Path(e) => write!(f, "path error: {}", e),
            StorageError::Io(e) => write!(f, "io error: {}", e),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<LotError> for StorageError {
    fn from(e: LotError) -> Self {
        StorageError::Lot(e)
    }
}

impl From<PathError> for StorageError {
    fn from(e: PathError) -> Self {
        StorageError::Path(e)
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Maps storage-layer failures onto the protocol-independent error
/// classes. Living here (rather than as a free function in the
/// dispatcher) means every caller — dispatcher, NFS handler, tests — gets
/// the same mapping through plain `?` / `.into()` conversion.
impl From<&StorageError> for NestError {
    fn from(e: &StorageError) -> Self {
        match e {
            StorageError::Denied => NestError::Denied,
            StorageError::Path(_) => NestError::BadRequest,
            StorageError::Lot(LotError::InsufficientSpace { .. }) => NestError::NoSpace,
            StorageError::Lot(LotError::NoLot(_)) => NestError::NoSpace,
            StorageError::Lot(LotError::Expired(_)) => NestError::NoSpace,
            StorageError::Lot(LotError::NotOwner) => NestError::Denied,
            StorageError::Lot(LotError::NoSuchLot(_)) => NestError::NotFound,
            StorageError::Io(e) => match e.kind() {
                io::ErrorKind::NotFound => NestError::NotFound,
                io::ErrorKind::AlreadyExists => NestError::Exists,
                io::ErrorKind::DirectoryNotEmpty | io::ErrorKind::InvalidInput => {
                    NestError::Invalid
                }
                _ => NestError::Internal,
            },
        }
    }
}

impl From<StorageError> for NestError {
    fn from(e: StorageError) -> Self {
        (&e).into()
    }
}

/// A convenience result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

/// One object in an S3-style listing: a `/`-joined key relative to the
/// listing root, plus its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectEntry {
    /// Key relative to the listing root (no leading slash).
    pub key: String,
    /// Object size in bytes.
    pub size: u64,
}

/// The result of [`StorageManager::list_objects`]: matching objects plus
/// the delimiter-rolled-up common prefixes, both sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectListing {
    /// Objects whose keys matched the prefix (and contain no delimiter
    /// past it).
    pub objects: Vec<ObjectEntry>,
    /// Distinct key prefixes rolled up at the delimiter.
    pub common_prefixes: Vec<String>,
}

/// Clock abstraction so lot expiry works identically under the real clock
/// and the simulation substrate.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Returns a clock reading wall time as Unix seconds.
pub fn system_clock() -> Clock {
    Arc::new(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    })
}

/// Instrument handles for the storage layer, obtained once at
/// construction so the hot path never touches the registry map.
///
/// Metric catalog (all under `storage.`):
/// * `storage.meta_us` — latency histogram for synchronous metadata
///   operations (mkdir/rmdir/list/stat/remove/rename).
/// * `storage.read_us` / `storage.write_us` — backend chunk I/O latency.
/// * `storage.denied` — ACL denials.
/// * `storage.reclaim.events` / `storage.reclaim.files` — best-effort lot
///   reclamation passes and the files they evicted.
/// * `storage.lot.capacity_bytes` / `.guaranteed_bytes` /
///   `.committed_bytes` / `.count` — lot occupancy gauges, refreshed by
///   [`StorageManager::refresh_gauges`].
struct StorageMetrics {
    meta_us: Arc<Histogram>,
    read_us: Arc<Histogram>,
    write_us: Arc<Histogram>,
    denied: Arc<Counter>,
    reclaim_events: Arc<Counter>,
    reclaim_files: Arc<Counter>,
    lot_capacity: Arc<Gauge>,
    lot_guaranteed: Arc<Gauge>,
    lot_committed: Arc<Gauge>,
    lot_count: Arc<Gauge>,
}

impl StorageMetrics {
    fn new(obs: &Obs) -> Self {
        let m = &obs.metrics;
        Self {
            meta_us: m.histogram("storage.meta_us"),
            read_us: m.histogram("storage.read_us"),
            write_us: m.histogram("storage.write_us"),
            denied: m.counter("storage.denied"),
            reclaim_events: m.counter("storage.reclaim.events"),
            reclaim_files: m.counter("storage.reclaim.files"),
            lot_capacity: m.gauge("storage.lot.capacity_bytes"),
            lot_guaranteed: m.gauge("storage.lot.guaranteed_bytes"),
            lot_committed: m.gauge("storage.lot.committed_bytes"),
            lot_count: m.gauge("storage.lot.count"),
        }
    }
}

/// The storage manager.
pub struct StorageManager {
    backend: Arc<dyn StorageBackend>,
    acl: AclTable,
    lots: LotManager,
    clock: Clock,
    /// When false, writes bypass lot accounting entirely (used for the
    /// Figure 6 quota-overhead comparison and for open deployments).
    enforce_lots: bool,
    /// Kept so persisted lot state can be restored with the same policy.
    reclaim_policy: ReclaimPolicy,
    /// Stripe count for the sharded tables (lots, tier index); kept so
    /// restores and the tier rebuild reuse the same configuration.
    shards: usize,
    /// Instrument handles; `None` runs fully uninstrumented.
    metrics: Option<StorageMetrics>,
    /// The actuating memory tier (budget 0 — the default — disables it).
    tier: MemTier,
    /// Cache-model residency prediction for promotion decisions.
    residency_hint: Option<ResidencyHint>,
    /// Per-lot write policies; unlisted lots are write-through.
    write_policies: Mutex<HashMap<LotId, WritePolicy>>,
}

impl StorageManager {
    /// Builds a storage manager over a backend with `capacity` bytes under
    /// lot management.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        acl: AclTable,
        capacity: u64,
        policy: ReclaimPolicy,
    ) -> Self {
        Self {
            backend,
            acl,
            lots: LotManager::new(capacity, policy),
            clock: system_clock(),
            enforce_lots: true,
            reclaim_policy: policy,
            shards: crate::lot::DEFAULT_LOT_SHARDS,
            metrics: None,
            tier: MemTier::new(0),
            residency_hint: None,
            write_policies: Mutex::named("storage.memtier.policy", 334, HashMap::new()),
        }
    }

    /// Registers this manager's instruments on an observability domain.
    /// The handles are resolved once; steady-state updates are plain
    /// atomics. Call after [`Self::with_ram_tier`] so the `memtier.*`
    /// instruments register too.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.metrics = Some(StorageMetrics::new(obs));
        self.tier.register_obs(obs);
        self.refresh_gauges();
        self
    }

    /// Bounds the in-memory storage tier to `bytes` (0 — the default —
    /// disables it entirely; that is the byte-identical ablation
    /// baseline).
    pub fn with_ram_tier(mut self, bytes: u64) -> Self {
        self.tier = MemTier::with_shards(bytes, self.shards);
        self
    }

    /// Injects the cache-model residency prediction used to fast-track
    /// promotion of objects the gray-box model already believes hot.
    pub fn with_residency_hint(mut self, hint: ResidencyHint) -> Self {
        self.residency_hint = Some(hint);
        self
    }

    /// Sets the stripe count for the sharded tables (`1` = the
    /// single-mutex ablation). Call before [`Self::with_lot_state`] and
    /// [`Self::with_ram_tier`]; it rebuilds the (still empty) lot table.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let shards = shards.max(1);
        self.shards = shards;
        self.lots =
            LotManager::with_shards(self.lots.total_capacity(), self.reclaim_policy, shards);
        self
    }

    /// Restores lot state from a [`LotManager::snapshot`] taken by a
    /// previous run — reservations must survive appliance restarts.
    pub fn with_lot_state(mut self, snapshot: &str) -> Self {
        let capacity = self.lots.total_capacity();
        let now = (self.clock)();
        self.lots = LotManager::restore_with_shards(
            snapshot,
            capacity,
            self.reclaim_policy,
            now,
            self.shards,
        );
        self
    }

    /// Replaces the clock (used by tests and the simulator).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Disables lot enforcement (quota-off mode).
    pub fn with_lots_disabled(mut self) -> Self {
        self.enforce_lots = false;
        self
    }

    /// Whether lot enforcement is active.
    pub fn lots_enforced(&self) -> bool {
        self.enforce_lots
    }

    /// The ACL table (for administration).
    pub fn acl(&self) -> &AclTable {
        &self.acl
    }

    /// The lot manager (for inspection).
    pub fn lot_manager(&self) -> &LotManager {
        &self.lots
    }

    /// Direct backend access (used by the transfer manager's data path
    /// after a transfer has been admitted).
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The memory tier (for stats publication and tests).
    pub fn mem_tier(&self) -> &MemTier {
        &self.tier
    }

    /// Memory-tier counters.
    pub fn tier_stats(&self) -> MemTierStats {
        self.tier.stats()
    }

    /// The whole object when fully resident in the memory tier — the
    /// dispatcher wraps it in a `MemSource` so the flow serves straight
    /// from RAM.
    pub fn tier_object(&self, path: &VPath) -> Option<Arc<Vec<u8>>> {
        self.tier.object(path)
    }

    /// Sets the write policy for a lot (default: write-through). Write-back
    /// lots absorb writes into the memory tier and defer the backend copy;
    /// see DESIGN.md §15 for the crash-consistency caveat.
    pub fn set_lot_write_policy(&self, id: LotId, policy: WritePolicy) {
        match policy {
            WritePolicy::WriteThrough => {
                self.write_policies.lock().remove(&id);
            }
            WritePolicy::WriteBack => {
                self.write_policies.lock().insert(id, policy);
            }
        }
    }

    /// Records descriptor-reuse hits for zero-copy lease spans; see
    /// [`StorageBackend::note_lease_hits`].
    pub fn note_lease_hits(&self, n: u64) {
        self.backend.note_lease_hits(n);
    }

    /// True when an unexpired lot charges bytes for `path` — such tier
    /// residents are protected from best-effort demotion.
    fn guaranteed_backed(&self, path: &VPath) -> bool {
        if !self.enforce_lots {
            return false;
        }
        let now = self.now();
        self.lots
            .all_lots()
            .iter()
            .any(|l| !l.is_expired(now) && l.files.contains_key(path))
    }

    /// The effective write policy for `path`: write-back iff any lot
    /// charging it opted in.
    fn write_policy_for(&self, path: &VPath) -> WritePolicy {
        if !self.enforce_lots {
            return WritePolicy::WriteThrough;
        }
        let policies = self.write_policies.lock();
        if policies.is_empty() {
            return WritePolicy::WriteThrough;
        }
        let backing: Vec<LotId> = self
            .lots
            .all_lots()
            .iter()
            .filter(|l| l.files.contains_key(path))
            .map(|l| l.id)
            .collect();
        if backing.iter().any(|id| policies.contains_key(id)) {
            WritePolicy::WriteBack
        } else {
            WritePolicy::WriteThrough
        }
    }

    /// Persists one dirty tier object to the backend (write then shrink,
    /// so a previously longer backend copy cannot leave a stale tail).
    fn persist_dirty(&self, d: &DirtyObject) -> Result<()> {
        self.backend.write_at(&d.path, 0, &d.data)?;
        if let Ok(st) = self.backend.stat(&d.path) {
            if st.size > d.data.len() as u64 {
                self.backend.truncate(&d.path, d.data.len() as u64)?;
            }
        }
        Ok(())
    }

    /// Persists `victims` and marks each clean (a racing newer write keeps
    /// its entry dirty). Best-effort: a failed flush leaves the entry
    /// dirty for the next attempt.
    fn flush_victims(&self, victims: &[DirtyObject]) {
        for d in victims {
            if self.persist_dirty(d).is_ok() {
                self.tier.mark_clean(&d.path, d.version);
            }
        }
    }

    /// Flushes every dirty tier object to the backend. Wired into the
    /// session drain so a graceful shutdown loses no write-back bytes.
    /// Returns the number of objects flushed.
    pub fn flush_writeback(&self) -> usize {
        let dirty = self.tier.snapshot_dirty();
        let mut flushed = 0;
        for d in &dirty {
            if self.persist_dirty(d).is_ok() {
                self.tier.mark_clean(&d.path, d.version);
                flushed += 1;
            }
        }
        flushed
    }

    /// Promotes `path` into the memory tier: whole object when it fits
    /// the per-object cap, head segment otherwise. Best-effort — a read
    /// failure simply leaves the object untiered.
    fn promote(&self, path: &VPath, size: u64) {
        let want = size.min(self.tier.max_object_bytes()) as usize;
        let mut data = vec![0u8; want];
        let mut filled = 0;
        while filled < want {
            match self
                .backend
                .read_at(path, filled as u64, &mut data[filled..])
            {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(_) => return,
            }
        }
        data.truncate(filled);
        if filled < want {
            // The object shrank under us; its true size is unknown here.
            return;
        }
        let victims = self
            .tier
            .insert(path, data, size, self.guaranteed_backed(path));
        self.flush_victims(&victims);
    }

    fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Total bytes currently charged against lots (the ad's
    /// `LotBytesCommitted`).
    pub fn committed_bytes(&self) -> u64 {
        self.lots.all_lots().iter().map(|l| l.used).sum()
    }

    /// Refreshes the lot-occupancy gauges from the lot manager. Cheap
    /// enough to call before every snapshot and after every lot mutation;
    /// a no-op when the manager is uninstrumented.
    pub fn refresh_gauges(&self) {
        let Some(m) = &self.metrics else {
            return;
        };
        let now = self.now();
        m.lot_capacity.set(self.lots.total_capacity() as i64);
        m.lot_guaranteed.set(self.lots.guaranteed(now) as i64);
        m.lot_committed.set(self.committed_bytes() as i64);
        m.lot_count.set(self.lots.all_lots().len() as i64);
    }

    /// Records a metadata-operation latency sample.
    fn note_meta(&self, start: Instant) {
        if let Some(m) = &self.metrics {
            m.meta_us.record(start.elapsed());
        }
    }

    fn authorize(
        &self,
        who: &Principal,
        right: AccessRight,
        path: &VPath,
        protocol: &str,
        op: &str,
    ) -> Result<()> {
        if self.acl.check(who, right, path, &request_ad(protocol, op)) {
            Ok(())
        } else {
            if let Some(m) = &self.metrics {
                m.denied.inc();
            }
            Err(StorageError::Denied)
        }
    }

    fn apply_evictions(&self, evicted: &Evicted) {
        for path in &evicted.files {
            // Best-effort deletion of reclaimed files; a missing file only
            // means the client deleted it first. Any tier copy (dirty or
            // not) dies with the file.
            let _ = self.tier.invalidate(path);
            let _ = self.backend.remove(path);
        }
        if let Some(m) = &self.metrics {
            if !evicted.files.is_empty() {
                m.reclaim_events.inc();
                m.reclaim_files.add(evicted.files.len() as u64);
            }
        }
        self.refresh_gauges();
    }

    // -- directory / metadata operations (executed synchronously) ---------

    /// Creates a directory.
    pub fn mkdir(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<()> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Insert, path, protocol, "mkdir")?;
            Ok(self.backend.mkdir(path)?)
        })();
        self.note_meta(t);
        r
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<()> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Delete, path, protocol, "rmdir")?;
            Ok(self.backend.rmdir(path)?)
        })();
        self.note_meta(t);
        r
    }

    /// Lists a directory.
    pub fn list(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<Vec<String>> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Lookup, path, protocol, "list")?;
            let mut names = self.backend.list(path)?;
            names.sort();
            Ok(names)
        })();
        self.note_meta(t);
        r
    }

    /// Object-store style listing (S3 ListObjectsV2 over the virtual
    /// namespace): walks the subtree under `root`, reporting every file as
    /// a `/`-joined key relative to `root`. Keys are filtered by `prefix`;
    /// with a `delimiter`, everything after the first delimiter past the
    /// prefix collapses into a common prefix (S3's "virtual folders").
    /// Authorization is a single Lookup check at `root` — the bucket is
    /// the unit of access, exactly as a lot is the unit of space.
    pub fn list_objects(
        &self,
        who: &Principal,
        protocol: &str,
        root: &VPath,
        prefix: &str,
        delimiter: Option<&str>,
    ) -> Result<ObjectListing> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Lookup, root, protocol, "list")?;
            let mut out = ObjectListing::default();
            self.walk_objects(root, "", prefix, delimiter, &mut out)?;
            out.objects.sort_by(|a, b| a.key.cmp(&b.key));
            out.common_prefixes.sort();
            out.common_prefixes.dedup();
            Ok(out)
        })();
        self.note_meta(t);
        r
    }

    fn walk_objects(
        &self,
        dir: &VPath,
        rel: &str,
        prefix: &str,
        delimiter: Option<&str>,
        out: &mut ObjectListing,
    ) -> Result<()> {
        let mut names = self.backend.list(dir)?;
        names.sort();
        for name in names {
            let key = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            let child = dir.join(&name)?;
            let st = self.backend.stat(&child)?;
            match st.kind {
                FileKind::File => {
                    if !key.starts_with(prefix) {
                        continue;
                    }
                    match delimiter.and_then(|d| key[prefix.len()..].find(d).map(|i| (i, d))) {
                        Some((i, d)) => {
                            let cut = prefix.len() + i + d.len();
                            out.common_prefixes.push(key[..cut].to_owned());
                        }
                        None => out.objects.push(ObjectEntry { key, size: st.size }),
                    }
                }
                FileKind::Dir => {
                    // Prune subtrees that can't contain matching keys, and
                    // collapse whole subtrees that fall past a delimiter.
                    let dir_key = format!("{key}/");
                    if dir_key.starts_with(prefix) {
                        // Search the slash-terminated form so an *empty*
                        // directory still rolls up to its common prefix
                        // (an empty bucket must appear in ListBuckets).
                        // `prefix == dir_key` leaves no remainder; `get`
                        // sidesteps the out-of-range slice.
                        let roll = dir_key
                            .get(prefix.len()..)
                            .and_then(|rest| delimiter.and_then(|d| rest.find(d).map(|i| (i, d))));
                        if let Some((i, d)) = roll {
                            let cut = prefix.len() + i + d.len();
                            out.common_prefixes.push(dir_key[..cut].to_owned());
                            continue;
                        }
                        self.walk_objects(&child, &key, prefix, delimiter, out)?;
                    } else if prefix.starts_with(&dir_key) {
                        self.walk_objects(&child, &key, prefix, delimiter, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Stats a path.
    pub fn stat(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<FileStat> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Lookup, path, protocol, "stat")?;
            let mut st = self.backend.stat(path)?;
            // Deferred write-back bytes: the tier copy is the truth.
            if let Some(len) = self.tier.dirty_len(path) {
                st.size = len;
            }
            Ok(st)
        })();
        self.note_meta(t);
        r
    }

    /// Deletes a file, releasing its lot charges.
    pub fn remove(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<()> {
        let t = Instant::now();
        let r = (|| {
            self.authorize(who, AccessRight::Delete, path, protocol, "remove")?;
            // The tier copy dies with the file; dirty bytes are dead too.
            let _ = self.tier.invalidate(path);
            self.backend.remove(path)?;
            if self.enforce_lots {
                self.lots.release_file(path);
            }
            Ok(())
        })();
        self.note_meta(t);
        r
    }

    /// Renames a file or directory, carrying lot charges with it.
    pub fn rename(&self, who: &Principal, protocol: &str, from: &VPath, to: &VPath) -> Result<()> {
        let t = Instant::now();
        let r = self.rename_inner(who, protocol, from, to);
        self.note_meta(t);
        r
    }

    fn rename_inner(
        &self,
        who: &Principal,
        protocol: &str,
        from: &VPath,
        to: &VPath,
    ) -> Result<()> {
        self.authorize(who, AccessRight::Delete, from, protocol, "rename")?;
        self.authorize(who, AccessRight::Insert, to, protocol, "rename")?;
        // Deferred write-back bytes must reach the backend *before* the
        // name moves; clean copies under either name just drop.
        if let Some(d) = self.tier.invalidate(from) {
            self.persist_dirty(&d)?;
        }
        let _ = self.tier.invalidate(to);
        self.backend.rename(from, to)?;
        if self.enforce_lots {
            // Re-key the lot charge: release and re-charge under the new
            // name is unsafe (could fail); instead the lot manager keys by
            // path, so we emulate a move by releasing and recharging only
            // in the accounting (always succeeds because the bytes were
            // already charged).
            let bytes = self.lots.release_file(from);
            if bytes > 0 {
                // Recharge under the new path against the same owner's
                // lots; tolerate failure by restoring nothing (data is
                // still within the user's total charge envelope).
                let groups = who.groups.clone();
                let _ = self
                    .lots
                    .charge_file(&who.user, &groups, to, bytes, self.now());
            }
        }
        Ok(())
    }

    // -- transfer admission (paper §2.2) ----------------------------------

    /// Admits an incoming file transfer: checks ACLs, charges the lot, and
    /// creates the file. Called synchronously by the dispatcher before the
    /// transfer manager takes over the data flow.
    pub fn begin_put(
        &self,
        who: &Principal,
        protocol: &str,
        path: &VPath,
        size_hint: u64,
    ) -> Result<()> {
        let exists = self.backend.stat(path).is_ok();
        if exists {
            self.authorize(who, AccessRight::Write, path, protocol, "put")?;
            // Overwrite semantics: the old version's charge is released
            // before the new hint is charged, so an in-place overwrite of a
            // lot-filling file succeeds.
            if self.enforce_lots {
                self.lots.release_file(path);
            }
        } else {
            self.authorize(who, AccessRight::Insert, path, protocol, "put")?;
        }
        if self.enforce_lots && size_hint > 0 {
            self.lots
                .charge_file(&who.user, &who.groups, path, size_hint, self.now())?;
        }
        // The name is about to mean new bytes: any resident tier copy —
        // including dirty write-back bytes being wholesale replaced — is
        // dead.
        let _ = self.tier.invalidate(path);
        if exists {
            self.backend.truncate(path, 0)?;
        } else if let Err(e) = self.backend.create(path) {
            if self.enforce_lots && size_hint > 0 {
                self.lots.release_file(path);
            }
            return Err(e.into());
        }
        Ok(())
    }

    /// Aborts an admitted PUT whose transfer failed: best-effort removal of
    /// the partial file and release of its lot charge, so a failed transfer
    /// leaves neither stray data nor a residual charge against the user's
    /// lot. Safe to call whether or not any chunks were written; errors from
    /// the backend (e.g. the file was never created) are swallowed because
    /// abort runs on an already-failed path.
    pub fn abort_put(&self, path: &VPath) {
        // A failed PUT releases *both* its lot charge and any tier bytes
        // (dirty write-back bytes of an aborted transfer are garbage).
        let _ = self.tier.invalidate(path);
        let _ = self.backend.remove(path);
        if self.enforce_lots {
            self.lots.release_file(path);
        }
        self.refresh_gauges();
    }

    /// Truncates an admitted PUT's partial bytes for a retry from offset
    /// zero. This is the transfer layer's `reset` path; routing it here
    /// (not straight at the backend) keeps the memory tier coherent.
    pub fn truncate_for_retry(&self, path: &VPath) -> Result<()> {
        let _ = self.tier.invalidate(path);
        Ok(self.backend.truncate(path, 0)?)
    }

    /// Admits an outgoing transfer: checks the Read right and returns the
    /// file size. Touches the backing lots for LRU accounting.
    pub fn begin_get(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<u64> {
        self.authorize(who, AccessRight::Read, path, protocol, "get")?;
        let st = self.backend.stat(path)?;
        if st.kind != FileKind::File {
            return Err(StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "not a file",
            )));
        }
        if self.enforce_lots {
            self.lots.touch_file(path, self.now());
        }
        // A dirty write-back resident is the truth; the backend stat is
        // stale until flush.
        let size = self.tier.dirty_len(path).unwrap_or(st.size);
        if self.tier.enabled() {
            let hint = self
                .residency_hint
                .as_ref()
                .map(|f| f(&path.to_string(), size))
                .unwrap_or(false);
            if self.tier.record_access(path, size, hint, self.now()) {
                self.promote(path, size);
            }
        }
        Ok(size)
    }

    /// Writes a chunk during an admitted transfer, charging lots for growth
    /// beyond the admission hint (streaming protocols do not always know
    /// the final size up front).
    pub fn write_chunk(
        &self,
        who: &Principal,
        path: &VPath,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        if self.enforce_lots {
            let current = self.backend.stat(path).map(|s| s.size).unwrap_or(0);
            let new_end = offset + data.len() as u64;
            if new_end > current {
                let charged = self.charged_bytes(path);
                if new_end > charged {
                    self.lots.charge_file(
                        &who.user,
                        &who.groups,
                        path,
                        new_end - charged,
                        self.now(),
                    )?;
                }
            }
        }
        let t = Instant::now();
        let r = self.write_chunk_inner(who, path, offset, data);
        if let Some(m) = &self.metrics {
            m.write_us.record(t.elapsed());
        }
        r
    }

    fn write_chunk_inner(
        &self,
        _who: &Principal,
        path: &VPath,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        if self.tier.enabled() {
            if let WritePolicy::WriteBack = self.write_policy_for(path) {
                // Absorb the write into the tier; the backend copy is
                // deferred. A non-resident object needs its current
                // backend bytes as the base.
                let resident = self.tier.object(path).is_some();
                let base = if resident { None } else { self.load_base(path) };
                if resident || base.is_some() {
                    if let Some(victims) =
                        self.tier
                            .write_back(path, offset, data, base, self.guaranteed_backed(path))
                    {
                        self.flush_victims(&victims);
                        return Ok(());
                    }
                }
            }
            // Write-through: deferred bytes (if any) must reach the
            // backend before this chunk lands on top of them, and any
            // clean resident copy is now stale.
            if let Some(d) = self.tier.invalidate(path) {
                self.persist_dirty(&d)?;
            }
        }
        Ok(self.backend.write_at(path, offset, data)?)
    }

    /// Loads the current backend contents of `path` as a write-back base,
    /// or `None` when the object is too big to hold whole (the write then
    /// goes through).
    fn load_base(&self, path: &VPath) -> Option<Vec<u8>> {
        let size = self.backend.stat(path).ok()?.size;
        if size > self.tier.max_object_bytes() {
            return None;
        }
        let mut data = vec![0u8; size as usize];
        let mut filled = 0;
        while filled < data.len() {
            match self
                .backend
                .read_at(path, filled as u64, &mut data[filled..])
            {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(_) => return None,
            }
        }
        data.truncate(filled);
        Some(data)
    }

    /// Reads a chunk during an admitted transfer — served from the memory
    /// tier when the range is resident, from the backend otherwise.
    pub fn read_chunk(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let t = Instant::now();
        if let Some(n) = self.tier.read_at(path, offset, buf) {
            if let Some(m) = &self.metrics {
                m.read_us.record(t.elapsed());
            }
            return Ok(n);
        }
        let r = self.backend.read_at(path, offset, buf);
        if let Some(m) = &self.metrics {
            m.read_us.record(t.elapsed());
        }
        Ok(r?)
    }

    /// Grants a raw-descriptor read lease for an *already admitted* GET
    /// (same trust boundary as [`Self::read_chunk`]: authorization
    /// happened in [`Self::begin_get`]). `None` when the backend has no
    /// descriptors to lend — the caller falls back to `read_chunk`.
    pub fn read_lease(&self, path: &VPath) -> Option<crate::backend::ReadLease> {
        self.backend.read_lease(path)
    }

    /// The backend's lease-invalidation epoch; see
    /// [`StorageBackend::lease_epoch`].
    pub fn lease_epoch(&self) -> Option<u64> {
        self.backend.lease_epoch()
    }

    fn charged_bytes(&self, path: &VPath) -> u64 {
        self.lots
            .all_lots()
            .iter()
            .filter_map(|l| l.files.get(path).copied())
            .sum()
    }

    // -- lot operations (reachable via Chirp only, per the paper) ----------

    /// Administrative lot grant, bypassing the caller-identity checks —
    /// how "system administrators ... make a set of default lots for
    /// users" (including the anonymous user backing NFS/HTTP/FTP writes).
    pub fn admin_grant_lot(&self, owner: LotOwner, capacity: u64, duration: u64) -> Result<LotId> {
        let (id, evicted) = self.lots.create(owner, capacity, duration, self.now())?;
        self.apply_evictions(&evicted);
        Ok(id)
    }

    /// Creates a lot for a user. Requires authentication (anonymous
    /// principals may not hold lots).
    pub fn lot_create(&self, who: &Principal, capacity: u64, duration: u64) -> Result<LotId> {
        if who.is_anonymous() {
            return Err(StorageError::Denied);
        }
        let (id, evicted) = self.lots.create(
            LotOwner::User(who.user.clone()),
            capacity,
            duration,
            self.now(),
        )?;
        self.apply_evictions(&evicted);
        Ok(id)
    }

    /// Creates a group lot (administrators or group members).
    pub fn lot_create_group(
        &self,
        who: &Principal,
        group: &str,
        capacity: u64,
        duration: u64,
    ) -> Result<LotId> {
        if who.is_anonymous() || !who.groups.contains(group) {
            return Err(StorageError::Denied);
        }
        let (id, evicted) = self.lots.create(
            LotOwner::Group(group.to_owned()),
            capacity,
            duration,
            self.now(),
        )?;
        self.apply_evictions(&evicted);
        Ok(id)
    }

    /// Renews a lot the caller may use.
    pub fn lot_renew(&self, who: &Principal, id: LotId, extra: u64) -> Result<()> {
        self.check_lot_owner(who, id)?;
        Ok(self.lots.renew(id, extra, self.now())?)
    }

    /// Terminates a lot the caller may use, deleting its files.
    pub fn lot_terminate(&self, who: &Principal, id: LotId) -> Result<()> {
        self.check_lot_owner(who, id)?;
        let evicted = self.lots.terminate(id)?;
        self.apply_evictions(&evicted);
        Ok(())
    }

    /// Stats a lot.
    pub fn lot_stat(&self, who: &Principal, id: LotId) -> Result<Lot> {
        self.check_lot_owner(who, id)?;
        Ok(self.lots.stat(id)?)
    }

    /// Lists the caller's lots.
    pub fn lot_list(&self, who: &Principal) -> Vec<Lot> {
        self.lots.lots_for(&who.user, &who.groups)
    }

    fn check_lot_owner(&self, who: &Principal, id: LotId) -> Result<()> {
        let lot = self.lots.stat(id)?;
        if lot.owner.usable_by(&who.user, &who.groups) {
            Ok(())
        } else {
            Err(StorageError::Denied)
        }
    }

    // -- ACL administration ------------------------------------------------

    /// Replaces a directory's ACL (requires the Admin right there).
    pub fn set_acl(
        &self,
        who: &Principal,
        protocol: &str,
        dir: &VPath,
        entries: Vec<AclEntry>,
    ) -> Result<()> {
        self.authorize(who, AccessRight::Admin, dir, protocol, "setacl")?;
        self.acl.set_acl(dir.clone(), entries);
        Ok(())
    }

    /// Reads the effective ACL for a path (requires Lookup).
    pub fn get_acl(&self, who: &Principal, protocol: &str, path: &VPath) -> Result<Vec<AclEntry>> {
        self.authorize(who, AccessRight::Lookup, path, protocol, "getacl")?;
        Ok(self.acl.effective_acl(path))
    }

    // -- resource publication (paper §2.1: dispatcher publishes a ClassAd) --

    /// Builds the storage ad NeST publishes into the discovery system.
    pub fn storage_ad(&self, name: &str, protocols: &[&str]) -> ClassAd {
        let now = self.now();
        let mut ad = ClassAd::new();
        ad.insert_value("Type", Value::str("Storage"));
        ad.insert_value("Name", Value::str(name));
        ad.insert_value("TotalSpace", Value::Int(self.lots.total_capacity() as i64));
        ad.insert_value(
            "GuaranteedSpace",
            Value::Int(self.lots.guaranteed(now) as i64),
        );
        ad.insert_value("FreeSpace", Value::Int(self.lots.reservable(now) as i64));
        ad.insert_value(
            "UsedSpace",
            Value::Int(self.backend.used_bytes().unwrap_or(0) as i64),
        );
        ad.insert_value(
            "Protocols",
            Value::List(protocols.iter().map(|p| Value::str(*p)).collect()),
        );
        ad.insert(
            "Requirements",
            nest_classad::parse_expr(
                "other.Type == \"StorageRequest\" && other.NeedSpace <= my.FreeSpace",
            )
            .expect("static expression parses"),
        );
        ad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Who;
    use crate::backend::MemBackend;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn open_manager(capacity: u64) -> StorageManager {
        StorageManager::new(
            Arc::new(MemBackend::new()),
            AclTable::open_by_default(),
            capacity,
            ReclaimPolicy::ExpiredFirst,
        )
    }

    fn alice() -> Principal {
        Principal::user("alice")
    }

    #[test]
    fn mkdir_list_stat_remove_cycle() {
        let sm = open_manager(1 << 20);
        let who = alice();
        sm.mkdir(&who, "chirp", &vp("/d")).unwrap();
        sm.lot_create(&who, 1000, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/d/f"), 5).unwrap();
        sm.write_chunk(&who, &vp("/d/f"), 0, b"hello").unwrap();
        assert_eq!(sm.list(&who, "chirp", &vp("/d")).unwrap(), ["f"]);
        assert_eq!(sm.stat(&who, "chirp", &vp("/d/f")).unwrap().size, 5);
        sm.remove(&who, "chirp", &vp("/d/f")).unwrap();
        sm.rmdir(&who, "chirp", &vp("/d")).unwrap();
    }

    #[test]
    fn list_objects_prefix_and_delimiter_semantics() {
        let sm = open_manager(1 << 20);
        let who = alice();
        sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.mkdir(&who, "s3", &vp("/b")).unwrap();
        sm.mkdir(&who, "s3", &vp("/b/logs")).unwrap();
        sm.mkdir(&who, "s3", &vp("/b/logs/2026")).unwrap();
        for (path, len) in [
            ("/b/top.txt", 3usize),
            ("/b/logs/app.log", 5),
            ("/b/logs/2026/jan.log", 7),
        ] {
            sm.begin_put(&who, "s3", &vp(path), len as u64).unwrap();
            sm.write_chunk(&who, &vp(path), 0, &vec![b'x'; len])
                .unwrap();
        }

        // Flat recursive listing: every file as a slash-joined key.
        let all = sm.list_objects(&who, "s3", &vp("/b"), "", None).unwrap();
        let keys: Vec<&str> = all.objects.iter().map(|o| o.key.as_str()).collect();
        assert_eq!(keys, ["logs/2026/jan.log", "logs/app.log", "top.txt"]);
        assert_eq!(all.objects[2].size, 3);
        assert!(all.common_prefixes.is_empty());

        // Delimiter rolls the subtree up into one common prefix.
        let rolled = sm
            .list_objects(&who, "s3", &vp("/b"), "", Some("/"))
            .unwrap();
        let keys: Vec<&str> = rolled.objects.iter().map(|o| o.key.as_str()).collect();
        assert_eq!(keys, ["top.txt"]);
        assert_eq!(rolled.common_prefixes, ["logs/"]);

        // Prefix descends into the subtree; delimiter applies past it.
        let under = sm
            .list_objects(&who, "s3", &vp("/b"), "logs/", Some("/"))
            .unwrap();
        let keys: Vec<&str> = under.objects.iter().map(|o| o.key.as_str()).collect();
        assert_eq!(keys, ["logs/app.log"]);
        assert_eq!(under.common_prefixes, ["logs/2026/"]);

        // A prefix that matches nothing returns an empty listing.
        let none = sm
            .list_objects(&who, "s3", &vp("/b"), "zzz", Some("/"))
            .unwrap();
        assert!(none.objects.is_empty() && none.common_prefixes.is_empty());
    }

    #[test]
    fn acl_denies_across_operations() {
        let backend = Arc::new(MemBackend::new());
        let acl = AclTable::new();
        acl.set_acl(
            VPath::root(),
            vec![AclEntry::new(Who::User("alice".into()), "rl")],
        );
        let sm = StorageManager::new(backend, acl, 1 << 20, ReclaimPolicy::ExpiredFirst);
        let who = alice();
        // alice can look but not insert.
        assert!(matches!(
            sm.mkdir(&who, "chirp", &vp("/d")),
            Err(StorageError::Denied)
        ));
        assert!(sm.list(&who, "chirp", &VPath::root()).is_ok());
        // bob can do nothing.
        let bob = Principal::user("bob");
        assert!(matches!(
            sm.list(&bob, "chirp", &VPath::root()),
            Err(StorageError::Denied)
        ));
    }

    #[test]
    fn put_requires_lot_when_enforced() {
        let sm = open_manager(1000);
        let who = alice();
        match sm.begin_put(&who, "chirp", &vp("/f"), 100) {
            Err(StorageError::Lot(LotError::NoLot(_))) => {}
            other => panic!("unexpected: {:?}", other.map(|_| ())),
        }
        sm.lot_create(&who, 500, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 100).unwrap();
    }

    #[test]
    fn put_without_enforcement_needs_no_lot() {
        let sm = open_manager(1000).with_lots_disabled();
        let who = alice();
        sm.begin_put(&who, "chirp", &vp("/f"), 100).unwrap();
        sm.write_chunk(&who, &vp("/f"), 0, &[7; 100]).unwrap();
    }

    #[test]
    fn streaming_growth_charges_incrementally() {
        let sm = open_manager(1000);
        let who = alice();
        sm.lot_create(&who, 300, 3600).unwrap();
        // Admit with no size hint, then stream 3 chunks of 100.
        sm.begin_put(&who, "ftp", &vp("/s"), 0).unwrap();
        for i in 0..3u64 {
            sm.write_chunk(&who, &vp("/s"), i * 100, &[1; 100]).unwrap();
        }
        // A fourth chunk exceeds the 300-byte lot.
        match sm.write_chunk(&who, &vp("/s"), 300, &[1; 100]) {
            Err(StorageError::Lot(LotError::InsufficientSpace { .. })) => {}
            other => panic!("unexpected: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn remove_releases_lot_space() {
        let sm = open_manager(1000);
        let who = alice();
        let lot = sm.lot_create(&who, 300, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 300).unwrap();
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 300);
        sm.remove(&who, "chirp", &vp("/f")).unwrap();
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 0);
        // Space is usable again.
        sm.begin_put(&who, "chirp", &vp("/g"), 300).unwrap();
    }

    #[test]
    fn overwrite_put_releases_old_charge() {
        let sm = open_manager(1000);
        let who = alice();
        let lot = sm.lot_create(&who, 300, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 200).unwrap();
        sm.write_chunk(&who, &vp("/f"), 0, &[1; 200]).unwrap();
        // Overwrite with a new 250-byte version: old 200 released first.
        sm.begin_put(&who, "chirp", &vp("/f"), 250).unwrap();
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 250);
        assert_eq!(sm.stat(&who, "chirp", &vp("/f")).unwrap().size, 0);
    }

    #[test]
    fn anonymous_cannot_hold_lots() {
        let sm = open_manager(1000);
        assert!(matches!(
            sm.lot_create(&Principal::anonymous(), 10, 10),
            Err(StorageError::Denied)
        ));
    }

    #[test]
    fn lot_operations_respect_ownership() {
        let sm = open_manager(1000);
        let a = alice();
        let b = Principal::user("bob");
        let id = sm.lot_create(&a, 100, 3600).unwrap();
        assert!(matches!(sm.lot_stat(&b, id), Err(StorageError::Denied)));
        assert!(matches!(
            sm.lot_renew(&b, id, 10),
            Err(StorageError::Denied)
        ));
        assert!(matches!(
            sm.lot_terminate(&b, id),
            Err(StorageError::Denied)
        ));
        sm.lot_terminate(&a, id).unwrap();
    }

    #[test]
    fn lot_terminate_deletes_backing_files() {
        let sm = open_manager(1000);
        let who = alice();
        let id = sm.lot_create(&who, 500, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 100).unwrap();
        sm.write_chunk(&who, &vp("/f"), 0, &[9; 100]).unwrap();
        sm.lot_terminate(&who, id).unwrap();
        assert!(sm.stat(&who, "chirp", &vp("/f")).is_err());
    }

    #[test]
    fn expiry_under_injected_clock() {
        let now = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&now);
        let sm = open_manager(1000).with_clock(Arc::new(move || n2.load(Ordering::Relaxed)));
        let who = alice();
        let id = sm.lot_create(&who, 600, 10).unwrap();
        sm.begin_put(&who, "chirp", &vp("/data"), 600).unwrap();
        sm.write_chunk(&who, &vp("/data"), 0, &[1; 600]).unwrap();
        // Advance past expiry: data still readable (best-effort)...
        now.store(20, Ordering::Relaxed);
        assert_eq!(sm.begin_get(&who, "chirp", &vp("/data")).unwrap(), 600);
        // ...until bob's new lot forces reclamation.
        let bob = Principal::user("bob");
        sm.lot_create(&bob, 600, 100).unwrap();
        assert!(sm.begin_get(&who, "chirp", &vp("/data")).is_err());
        assert!(sm.lot_stat(&who, id).is_err());
    }

    #[test]
    fn begin_get_rejects_directories() {
        let sm = open_manager(1000);
        let who = alice();
        sm.mkdir(&who, "chirp", &vp("/d")).unwrap();
        assert!(sm.begin_get(&who, "chirp", &vp("/d")).is_err());
    }

    #[test]
    fn storage_ad_reflects_state() {
        let sm = open_manager(10_000);
        let who = alice();
        sm.lot_create(&who, 4_000, 3600).unwrap();
        let ad = sm.storage_ad("turkey", &["chirp", "nfs"]);
        assert_eq!(ad.eval("TotalSpace"), Value::Int(10_000));
        assert_eq!(ad.eval("GuaranteedSpace"), Value::Int(4_000));
        assert_eq!(ad.eval("FreeSpace"), Value::Int(6_000));
        // The ad matches a fitting request and rejects an oversized one.
        let mut req = ClassAd::new();
        req.insert_value("Type", Value::str("StorageRequest"));
        req.insert_value("NeedSpace", Value::Int(5_000));
        assert!(nest_classad::matches(&ad, &req));
        req.insert_value("NeedSpace", Value::Int(50_000));
        assert!(!nest_classad::matches(&ad, &req));
    }

    #[test]
    fn set_acl_requires_admin() {
        let backend = Arc::new(MemBackend::new());
        let acl = AclTable::new();
        acl.set_acl(
            VPath::root(),
            vec![
                AclEntry::new(Who::User("root".into()), "all"),
                AclEntry::new(Who::User("alice".into()), "rl"),
            ],
        );
        let sm = StorageManager::new(backend, acl, 1000, ReclaimPolicy::ExpiredFirst);
        let entries = vec![AclEntry::new(Who::Everyone, "rl")];
        assert!(matches!(
            sm.set_acl(&alice(), "chirp", &VPath::root(), entries.clone()),
            Err(StorageError::Denied)
        ));
        sm.set_acl(&Principal::user("root"), "chirp", &VPath::root(), entries)
            .unwrap();
        // Now everyone can look.
        assert!(sm
            .get_acl(&Principal::user("carol"), "chirp", &vp("/x"))
            .is_ok());
    }

    #[test]
    fn storage_errors_map_to_protocol_classes() {
        use crate::namespace::PathError;
        let cases: Vec<(StorageError, NestError)> = vec![
            (StorageError::Denied, NestError::Denied),
            (
                StorageError::Path(PathError::Escapes),
                NestError::BadRequest,
            ),
            (
                StorageError::Lot(LotError::NoLot("ghost".into())),
                NestError::NoSpace,
            ),
            (StorageError::Lot(LotError::NotOwner), NestError::Denied),
            (
                StorageError::Lot(LotError::NoSuchLot(LotId(9))),
                NestError::NotFound,
            ),
            (
                StorageError::Io(io::Error::from(io::ErrorKind::NotFound)),
                NestError::NotFound,
            ),
            (
                StorageError::Io(io::Error::from(io::ErrorKind::AlreadyExists)),
                NestError::Exists,
            ),
            (
                StorageError::Io(io::Error::from(io::ErrorKind::InvalidInput)),
                NestError::Invalid,
            ),
            (
                StorageError::Io(io::Error::from(io::ErrorKind::Other)),
                NestError::Internal,
            ),
        ];
        for (se, ne) in cases {
            assert_eq!(NestError::from(&se), ne, "{:?}", se);
        }
    }

    #[test]
    fn instrumented_manager_reports_latencies_and_occupancy() {
        let obs = nest_obs::Obs::new();
        let sm = open_manager(10_000).with_obs(&obs);
        let who = alice();
        sm.lot_create(&who, 4_000, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 1_000).unwrap();
        sm.write_chunk(&who, &vp("/f"), 0, &[1; 1_000]).unwrap();
        let mut buf = [0u8; 16];
        sm.read_chunk(&vp("/f"), 0, &mut buf).unwrap();
        sm.stat(&who, "chirp", &vp("/f")).unwrap();
        sm.refresh_gauges();
        let snap = obs.snapshot();
        assert_eq!(snap.count("storage.lot.capacity_bytes"), 10_000);
        assert_eq!(snap.count("storage.lot.guaranteed_bytes"), 4_000);
        assert_eq!(snap.count("storage.lot.committed_bytes"), 1_000);
        assert_eq!(snap.count("storage.lot.count"), 1);
        assert!(snap.latency_count("storage.meta_us") >= 1);
        assert!(snap.latency_count("storage.read_us") >= 1);
        assert!(snap.latency_count("storage.write_us") >= 1);
    }

    #[test]
    fn tier_promotes_on_second_get_and_serves_reads() {
        let sm = open_manager(1 << 20).with_ram_tier(1 << 20);
        let who = alice();
        sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/hot"), 1000).unwrap();
        sm.write_chunk(&who, &vp("/hot"), 0, &[7; 1000]).unwrap();
        // First GET: miss, not yet promoted.
        sm.begin_get(&who, "chirp", &vp("/hot")).unwrap();
        assert!(sm.tier_object(&vp("/hot")).is_none());
        // Second GET inside the window: promoted.
        sm.begin_get(&who, "chirp", &vp("/hot")).unwrap();
        let obj = sm.tier_object(&vp("/hot")).expect("promoted");
        assert_eq!(obj.len(), 1000);
        // Third GET is a hit, and chunk reads serve from the tier.
        sm.begin_get(&who, "chirp", &vp("/hot")).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(sm.read_chunk(&vp("/hot"), 100, &mut buf).unwrap(), 64);
        assert_eq!(buf, [7u8; 64]);
        let s = sm.tier_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.bytes, 1000);
    }

    #[test]
    fn tier_residency_hint_promotes_on_first_get() {
        let sm = open_manager(1 << 20)
            .with_ram_tier(1 << 20)
            .with_residency_hint(Arc::new(|_, _| true));
        let who = alice();
        sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/hot"), 100).unwrap();
        sm.write_chunk(&who, &vp("/hot"), 0, &[1; 100]).unwrap();
        sm.begin_get(&who, "chirp", &vp("/hot")).unwrap();
        assert!(sm.tier_object(&vp("/hot")).is_some());
    }

    #[test]
    fn tier_invalidated_on_overwrite_and_remove() {
        let sm = open_manager(1 << 20)
            .with_ram_tier(1 << 20)
            .with_residency_hint(Arc::new(|_, _| true));
        let who = alice();
        sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/f"), 100).unwrap();
        sm.write_chunk(&who, &vp("/f"), 0, &[1; 100]).unwrap();
        sm.begin_get(&who, "chirp", &vp("/f")).unwrap();
        assert!(sm.tier_object(&vp("/f")).is_some());
        // Overwrite PUT drops the resident copy.
        sm.begin_put(&who, "chirp", &vp("/f"), 50).unwrap();
        assert!(sm.tier_object(&vp("/f")).is_none());
        sm.write_chunk(&who, &vp("/f"), 0, &[2; 50]).unwrap();
        sm.begin_get(&who, "chirp", &vp("/f")).unwrap();
        let obj = sm.tier_object(&vp("/f")).expect("re-promoted");
        assert_eq!(obj.as_slice(), &[2; 50]);
        // Remove drops it too.
        sm.remove(&who, "chirp", &vp("/f")).unwrap();
        assert!(sm.tier_object(&vp("/f")).is_none());
        assert_eq!(sm.tier_stats().bytes, 0);
    }

    #[test]
    fn write_back_defers_and_flushes() {
        let sm = open_manager(1 << 20).with_ram_tier(1 << 20);
        let who = alice();
        let lot = sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.set_lot_write_policy(lot, WritePolicy::WriteBack);
        sm.begin_put(&who, "chirp", &vp("/wb"), 200).unwrap();
        sm.write_chunk(&who, &vp("/wb"), 0, &[3; 200]).unwrap();
        // The backend copy is deferred; the manager's stat is the truth.
        assert_eq!(sm.backend().stat(&vp("/wb")).unwrap().size, 0);
        assert_eq!(sm.stat(&who, "chirp", &vp("/wb")).unwrap().size, 200);
        assert_eq!(sm.begin_get(&who, "chirp", &vp("/wb")).unwrap(), 200);
        assert_eq!(sm.tier_stats().dirty_bytes, 200);
        // Reads serve the dirty copy.
        let mut buf = [0u8; 200];
        assert_eq!(sm.read_chunk(&vp("/wb"), 0, &mut buf).unwrap(), 200);
        assert_eq!(buf[0], 3);
        // Flush persists and cleans.
        assert_eq!(sm.flush_writeback(), 1);
        assert_eq!(sm.backend().stat(&vp("/wb")).unwrap().size, 200);
        assert_eq!(sm.tier_stats().dirty_bytes, 0);
        assert_eq!(sm.tier_stats().writeback_flushes, 1);
        // Back to write-through: the next write invalidates, not absorbs.
        sm.set_lot_write_policy(lot, WritePolicy::WriteThrough);
        sm.write_chunk(&who, &vp("/wb"), 0, &[4; 10]).unwrap();
        assert_eq!(sm.backend().stat(&vp("/wb")).unwrap().size, 200);
        let mut b = [0u8; 1];
        sm.backend().read_at(&vp("/wb"), 0, &mut b).unwrap();
        assert_eq!(b[0], 4);
    }

    #[test]
    fn abort_put_releases_tier_bytes() {
        let sm = open_manager(1 << 20).with_ram_tier(1 << 20);
        let who = alice();
        let lot = sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.set_lot_write_policy(lot, WritePolicy::WriteBack);
        sm.begin_put(&who, "chirp", &vp("/doomed"), 500).unwrap();
        sm.write_chunk(&who, &vp("/doomed"), 0, &[9; 500]).unwrap();
        assert_eq!(sm.tier_stats().bytes, 500);
        sm.abort_put(&vp("/doomed"));
        assert_eq!(sm.tier_stats().bytes, 0);
        assert_eq!(sm.tier_stats().dirty_bytes, 0);
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 0);
    }

    #[test]
    fn rename_flushes_dirty_bytes_first() {
        let sm = open_manager(1 << 20).with_ram_tier(1 << 20);
        let who = alice();
        let lot = sm.lot_create(&who, 1 << 16, 3600).unwrap();
        sm.set_lot_write_policy(lot, WritePolicy::WriteBack);
        sm.begin_put(&who, "chirp", &vp("/a"), 100).unwrap();
        sm.write_chunk(&who, &vp("/a"), 0, &[5; 100]).unwrap();
        sm.rename(&who, "chirp", &vp("/a"), &vp("/b")).unwrap();
        assert_eq!(sm.backend().stat(&vp("/b")).unwrap().size, 100);
        assert_eq!(sm.tier_stats().dirty_bytes, 0);
    }

    #[test]
    fn rename_moves_lot_charge() {
        let sm = open_manager(1000);
        let who = alice();
        let lot = sm.lot_create(&who, 300, 3600).unwrap();
        sm.begin_put(&who, "chirp", &vp("/old"), 100).unwrap();
        sm.write_chunk(&who, &vp("/old"), 0, &[1; 100]).unwrap();
        sm.rename(&who, "chirp", &vp("/old"), &vp("/new")).unwrap();
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 100);
        sm.remove(&who, "chirp", &vp("/new")).unwrap();
        assert_eq!(sm.lot_stat(&who, lot).unwrap().used, 0);
    }
}
