//! User-level quota accounting.
//!
//! The paper implements lots "on the quota mechanism of the underlying
//! filesystem". Running inside a container we cannot program kernel quotas,
//! so NeST enforces the same bookkeeping at user level: a per-owner usage
//! counter checked against a per-owner limit on every write. The *cost* of
//! the kernel's synchronous quota-file updates — what Figure 6 measures — is
//! modelled in `nest-simenv`.

use parking_lot::{shard_hash, ShardedMutex};
use std::collections::HashMap;

/// Per-owner usage/limit bookkeeping. Thread-safe; charges are atomic
/// check-and-update so concurrent writers cannot jointly exceed a limit.
///
/// The table is striped by owner-name hash (every record for one owner
/// lives in exactly one cell, all cells in the `storage.quota` class), so
/// charges by different owners stop serializing on one mutex; an owner's
/// own charges still serialize, which is what makes them atomic.
///
/// ```
/// use nest_storage::QuotaTable;
///
/// let q = QuotaTable::new();
/// q.set_limit("alice", 100);
/// assert!(q.charge("alice", 80).is_ok());
/// assert!(q.charge("alice", 40).is_err()); // would exceed the limit
/// q.release("alice", 50);
/// assert!(q.charge("alice", 40).is_ok());
/// ```
#[derive(Debug)]
pub struct QuotaTable {
    cells: ShardedMutex<HashMap<String, QuotaRecord>>,
}

impl Default for QuotaTable {
    fn default() -> Self {
        Self::with_shards(crate::lot::DEFAULT_LOT_SHARDS)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct QuotaRecord {
    limit: u64,
    used: u64,
}

/// A failed charge: how much was requested and how much headroom remained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// Bytes the caller asked for.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
}

impl QuotaTable {
    /// Creates an empty table. Owners without a record have a limit of 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with an explicit stripe count (`1` = the
    /// single-mutex ablation).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            cells: ShardedMutex::new("storage.quota", 310, shards, |_| HashMap::new()),
        }
    }

    /// Sets an owner's limit (does not disturb current usage).
    pub fn set_limit(&self, owner: &str, limit: u64) {
        self.cells
            .lock(shard_hash(owner))
            .entry(owner.to_owned())
            .or_default()
            .limit = limit;
    }

    /// Raises an owner's limit by `delta`.
    pub fn raise_limit(&self, owner: &str, delta: u64) {
        let mut cell = self.cells.lock(shard_hash(owner));
        let rec = cell.entry(owner.to_owned()).or_default();
        rec.limit = rec.limit.saturating_add(delta);
    }

    /// Lowers an owner's limit by `delta` (floor 0). Usage may then exceed
    /// the limit; further charges fail until usage drops.
    pub fn lower_limit(&self, owner: &str, delta: u64) {
        let mut cell = self.cells.lock(shard_hash(owner));
        let rec = cell.entry(owner.to_owned()).or_default();
        rec.limit = rec.limit.saturating_sub(delta);
    }

    /// The owner's configured limit.
    pub fn limit(&self, owner: &str) -> u64 {
        self.cells
            .lock(shard_hash(owner))
            .get(owner)
            .map_or(0, |r| r.limit)
    }

    /// The owner's current usage.
    pub fn usage(&self, owner: &str) -> u64 {
        self.cells
            .lock(shard_hash(owner))
            .get(owner)
            .map_or(0, |r| r.used)
    }

    /// Atomically charges `bytes` against the owner's quota.
    pub fn charge(&self, owner: &str, bytes: u64) -> Result<(), QuotaExceeded> {
        let mut cell = self.cells.lock(shard_hash(owner));
        let rec = cell.entry(owner.to_owned()).or_default();
        let available = rec.limit.saturating_sub(rec.used);
        if bytes > available {
            return Err(QuotaExceeded {
                requested: bytes,
                available,
            });
        }
        rec.used += bytes;
        Ok(())
    }

    /// Releases previously charged bytes (clamped at zero so releases can
    /// never underflow even if callers double-release defensively).
    pub fn release(&self, owner: &str, bytes: u64) {
        let mut cell = self.cells.lock(shard_hash(owner));
        if let Some(rec) = cell.get_mut(owner) {
            rec.used = rec.used.saturating_sub(bytes);
        }
    }

    /// Total bytes in use across all owners (sloppy: cells are read one
    /// at a time; exact once writers quiesce).
    pub fn total_usage(&self) -> u64 {
        self.cells
            .for_each_cell(|_, c| c.values().map(|r| r.used).sum::<u64>())
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_within_limit_succeeds() {
        let q = QuotaTable::new();
        q.set_limit("alice", 100);
        assert!(q.charge("alice", 60).is_ok());
        assert!(q.charge("alice", 40).is_ok());
        assert_eq!(q.usage("alice"), 100);
    }

    #[test]
    fn charge_over_limit_fails_with_headroom() {
        let q = QuotaTable::new();
        q.set_limit("alice", 100);
        q.charge("alice", 90).unwrap();
        assert_eq!(
            q.charge("alice", 20),
            Err(QuotaExceeded {
                requested: 20,
                available: 10
            })
        );
        // Failed charge does not consume anything.
        assert_eq!(q.usage("alice"), 90);
    }

    #[test]
    fn unknown_owner_has_zero_limit() {
        let q = QuotaTable::new();
        assert!(q.charge("nobody", 1).is_err());
        assert_eq!(q.limit("nobody"), 0);
    }

    #[test]
    fn release_restores_headroom_and_clamps() {
        let q = QuotaTable::new();
        q.set_limit("bob", 50);
        q.charge("bob", 50).unwrap();
        q.release("bob", 20);
        assert_eq!(q.usage("bob"), 30);
        q.release("bob", 1000); // clamped
        assert_eq!(q.usage("bob"), 0);
    }

    #[test]
    fn limits_adjust_without_touching_usage() {
        let q = QuotaTable::new();
        q.set_limit("c", 10);
        q.charge("c", 10).unwrap();
        q.raise_limit("c", 5);
        assert!(q.charge("c", 5).is_ok());
        q.lower_limit("c", 100);
        assert_eq!(q.limit("c"), 0);
        assert_eq!(q.usage("c"), 15); // over-limit usage persists
        assert!(q.charge("c", 1).is_err());
    }

    #[test]
    fn concurrent_charges_never_exceed_limit() {
        use std::sync::Arc;
        let q = Arc::new(QuotaTable::new());
        q.set_limit("shared", 1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut granted = 0u64;
                for _ in 0..1000 {
                    if q.charge("shared", 1).is_ok() {
                        granted += 1;
                    }
                }
                granted
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(q.usage("shared"), 1000);
    }

    #[test]
    fn distinct_owners_land_in_their_hash_cells() {
        // Many owners across a small stripe count: per-owner atomicity
        // and accounting hold regardless of which cell each hashes to.
        let q = QuotaTable::with_shards(4);
        for i in 0..64 {
            let owner = format!("owner-{}", i);
            q.set_limit(&owner, 10);
            q.charge(&owner, 7).unwrap();
        }
        assert_eq!(q.total_usage(), 64 * 7);
        for i in 0..64 {
            let owner = format!("owner-{}", i);
            assert_eq!(q.usage(&owner), 7);
            assert!(q.charge(&owner, 4).is_err());
        }
    }

    #[test]
    fn total_usage_sums_owners() {
        let q = QuotaTable::new();
        q.set_limit("a", 10);
        q.set_limit("b", 10);
        q.charge("a", 3).unwrap();
        q.charge("b", 4).unwrap();
        assert_eq!(q.total_usage(), 7);
    }
}
