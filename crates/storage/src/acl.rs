//! AFS-style access control lists built on ClassAds (paper §5).
//!
//! "AFS-style access control lists determine read, write, modify, insert,
//! and other privileges, and the typical notions of users and groups are
//! maintained. NeST support for access control is generic, as these policies
//! are enforced across any and all protocols."
//!
//! ACLs attach to directories and are inherited by everything beneath until
//! overridden, as in AFS. Each entry grants a rights string to a principal
//! pattern (`user`, `group:name`, `anonymous`, or `*`), optionally guarded
//! by a ClassAd expression evaluated against a per-request ad (so e.g. a
//! right can be limited to a protocol). Every entry round-trips through a
//! ClassAd, which is how NeST stores and publishes them.

use crate::namespace::VPath;
use nest_classad::{ClassAd, EvalContext, Expr, Value};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// The AFS-style rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessRight {
    /// `r` — read file data.
    Read,
    /// `l` — lookup: list directories, stat entries.
    Lookup,
    /// `i` — insert: create new files/directories.
    Insert,
    /// `d` — delete entries.
    Delete,
    /// `w` — write/modify existing file data.
    Write,
    /// `a` — administer: change the ACL itself, manage lots on this subtree.
    Admin,
}

impl AccessRight {
    /// The single-letter AFS code.
    pub fn code(self) -> char {
        match self {
            AccessRight::Read => 'r',
            AccessRight::Lookup => 'l',
            AccessRight::Insert => 'i',
            AccessRight::Delete => 'd',
            AccessRight::Write => 'w',
            AccessRight::Admin => 'a',
        }
    }

    /// Parses a single-letter code.
    pub fn from_code(c: char) -> Option<Self> {
        Some(match c.to_ascii_lowercase() {
            'r' => AccessRight::Read,
            'l' => AccessRight::Lookup,
            'i' => AccessRight::Insert,
            'd' => AccessRight::Delete,
            'w' => AccessRight::Write,
            'a' => AccessRight::Admin,
            _ => return None,
        })
    }

    /// All rights, for "all" grants.
    pub fn all() -> [AccessRight; 6] {
        [
            AccessRight::Read,
            AccessRight::Lookup,
            AccessRight::Insert,
            AccessRight::Delete,
            AccessRight::Write,
            AccessRight::Admin,
        ]
    }
}

/// An authenticated principal: the local user name plus group memberships,
/// as produced by a protocol handler's authentication step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principal {
    /// Local user name; `"anonymous"` for unauthenticated protocols.
    pub user: String,
    /// Groups the user belongs to.
    pub groups: HashSet<String>,
}

impl Principal {
    /// An authenticated user with no groups.
    pub fn user(name: impl Into<String>) -> Self {
        Self {
            user: name.into(),
            groups: HashSet::new(),
        }
    }

    /// The anonymous principal used by protocols without authentication
    /// (HTTP, FTP, NFS in the paper's configuration).
    pub fn anonymous() -> Self {
        Self::user("anonymous")
    }

    /// True for the anonymous principal.
    pub fn is_anonymous(&self) -> bool {
        self.user == "anonymous"
    }

    /// Adds a group membership.
    pub fn with_group(mut self, group: impl Into<String>) -> Self {
        self.groups.insert(group.into());
        self
    }
}

/// Who an ACL entry applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Who {
    /// A specific user.
    User(String),
    /// Members of a group.
    Group(String),
    /// The anonymous principal only.
    Anonymous,
    /// Every principal including anonymous.
    Everyone,
}

impl Who {
    fn applies_to(&self, p: &Principal) -> bool {
        match self {
            Who::User(u) => p.user == *u,
            Who::Group(g) => p.groups.contains(g),
            Who::Anonymous => p.is_anonymous(),
            Who::Everyone => true,
        }
    }

    fn to_spec(&self) -> String {
        match self {
            Who::User(u) => format!("user:{}", u),
            Who::Group(g) => format!("group:{}", g),
            Who::Anonymous => "anonymous".to_owned(),
            Who::Everyone => "*".to_owned(),
        }
    }

    fn from_spec(spec: &str) -> Option<Self> {
        if spec == "*" {
            return Some(Who::Everyone);
        }
        if spec.eq_ignore_ascii_case("anonymous") {
            return Some(Who::Anonymous);
        }
        if let Some(u) = spec.strip_prefix("user:") {
            return Some(Who::User(u.to_owned()));
        }
        if let Some(g) = spec.strip_prefix("group:") {
            return Some(Who::Group(g.to_owned()));
        }
        // Bare name defaults to a user, matching AFS `fs setacl` usage.
        Some(Who::User(spec.to_owned()))
    }
}

impl fmt::Display for Who {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_spec())
    }
}

/// One ACL entry: a principal pattern, a set of rights, and an optional
/// ClassAd guard expression evaluated against the request ad.
#[derive(Debug, Clone, PartialEq)]
pub struct AclEntry {
    /// Who the entry applies to.
    pub who: Who,
    /// The granted rights.
    pub rights: HashSet<AccessRight>,
    /// Optional guard: the entry only applies when this expression
    /// evaluates to `true` against the request ad (attributes such as
    /// `Protocol` and `Operation`).
    pub condition: Option<Expr>,
}

impl AclEntry {
    /// Creates an entry from a rights string like `"rliw"` (or `"all"`).
    pub fn new(who: Who, rights: &str) -> Self {
        let rights = if rights.eq_ignore_ascii_case("all") {
            AccessRight::all().into_iter().collect()
        } else {
            rights.chars().filter_map(AccessRight::from_code).collect()
        };
        Self {
            who,
            rights,
            condition: None,
        }
    }

    /// Attaches a guard condition.
    pub fn when(mut self, condition: Expr) -> Self {
        self.condition = Some(condition);
        self
    }

    /// The canonical rights string, in AFS order.
    pub fn rights_string(&self) -> String {
        AccessRight::all()
            .iter()
            .filter(|r| self.rights.contains(r))
            .map(|r| r.code())
            .collect()
    }

    /// Serializes to the ClassAd representation NeST stores and publishes.
    pub fn to_classad(&self) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert_value("Type", Value::str("AclEntry"));
        ad.insert_value("Principal", Value::str(self.who.to_spec()));
        ad.insert_value("Rights", Value::str(self.rights_string()));
        if let Some(cond) = &self.condition {
            ad.insert("Requirements", cond.clone());
        }
        ad
    }

    /// Parses the ClassAd representation.
    pub fn from_classad(ad: &ClassAd) -> Option<Self> {
        if ad.eval("Type") != Value::str("AclEntry") {
            return None;
        }
        let spec = match ad.eval("Principal") {
            Value::Str(s) => s,
            _ => return None,
        };
        let rights = match ad.eval("Rights") {
            Value::Str(s) => s,
            _ => return None,
        };
        let mut entry = AclEntry::new(Who::from_spec(&spec)?, &rights);
        entry.condition = ad.get("Requirements").cloned();
        Some(entry)
    }

    fn grants(&self, p: &Principal, right: AccessRight, request: &ClassAd) -> bool {
        if !self.who.applies_to(p) || !self.rights.contains(&right) {
            return false;
        }
        match &self.condition {
            None => true,
            Some(cond) => EvalContext::new(request).eval(cond) == Value::Bool(true),
        }
    }
}

/// Per-directory ACL storage with AFS-style inheritance: the effective ACL
/// for a path is the ACL of the nearest ancestor directory that has one.
#[derive(Debug)]
pub struct AclTable {
    acls: RwLock<BTreeMap<VPath, Vec<AclEntry>>>,
    groups: RwLock<HashMap<String, HashSet<String>>>,
}

impl Default for AclTable {
    fn default() -> Self {
        Self {
            acls: RwLock::named("storage.acl.acls", 320, BTreeMap::new()),
            groups: RwLock::named("storage.acl.groups", 321, HashMap::new()),
        }
    }
}

impl AclTable {
    /// Creates an empty table (no access for anyone until a root ACL is
    /// set; use [`AclTable::open_by_default`] for a permissive start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table whose root grants everyone everything — the paper's
    /// out-of-the-box behavior before an administrator configures access.
    pub fn open_by_default() -> Self {
        let table = Self::new();
        table.set_acl(VPath::root(), vec![AclEntry::new(Who::Everyone, "all")]);
        table
    }

    /// Replaces the ACL on a directory.
    pub fn set_acl(&self, dir: VPath, entries: Vec<AclEntry>) {
        self.acls.write().insert(dir, entries);
    }

    /// Removes the ACL from a directory (inheritance then applies).
    pub fn clear_acl(&self, dir: &VPath) {
        self.acls.write().remove(dir);
    }

    /// Returns the ACL explicitly set on `dir`, if any.
    pub fn get_acl(&self, dir: &VPath) -> Option<Vec<AclEntry>> {
        self.acls.read().get(dir).cloned()
    }

    /// Returns the effective ACL for `path` (walking up to the nearest
    /// ancestor with an explicit ACL).
    pub fn effective_acl(&self, path: &VPath) -> Vec<AclEntry> {
        let acls = self.acls.read();
        let mut dir = Some(path.clone());
        while let Some(d) = dir {
            if let Some(entries) = acls.get(&d) {
                return entries.clone();
            }
            dir = d.parent();
        }
        Vec::new()
    }

    /// Defines a group's membership.
    pub fn set_group(&self, group: impl Into<String>, members: impl IntoIterator<Item = String>) {
        self.groups
            .write()
            .insert(group.into(), members.into_iter().collect());
    }

    /// Expands a principal's group memberships from the group table.
    pub fn resolve(&self, user: &str) -> Principal {
        let mut p = Principal::user(user);
        for (group, members) in self.groups.read().iter() {
            if members.contains(user) {
                p.groups.insert(group.clone());
            }
        }
        p
    }

    /// The core check: does `principal` hold `right` on `path` for this
    /// request? `request` is a ClassAd describing the operation (at minimum
    /// `Protocol` and `Operation` attributes) used by guarded entries.
    pub fn check(
        &self,
        principal: &Principal,
        right: AccessRight,
        path: &VPath,
        request: &ClassAd,
    ) -> bool {
        self.effective_acl(path)
            .iter()
            .any(|e| e.grants(principal, right, request))
    }

    /// Serializes the whole table as a collection of ClassAds, one per
    /// (directory, entry) pair — the form NeST publishes and persists.
    pub fn to_classads(&self) -> Vec<ClassAd> {
        let acls = self.acls.read();
        let mut out = Vec::new();
        for (dir, entries) in acls.iter() {
            for e in entries {
                let mut ad = e.to_classad();
                ad.insert_value("Path", Value::str(dir.to_string()));
                out.push(ad);
            }
        }
        out
    }

    /// Rebuilds a table from serialized ClassAds.
    pub fn from_classads(ads: &[ClassAd]) -> Self {
        let table = Self::new();
        {
            let mut acls = table.acls.write();
            for ad in ads {
                let path = match ad.eval("Path") {
                    Value::Str(s) => match VPath::parse(&s) {
                        Ok(p) => p,
                        Err(_) => continue,
                    },
                    _ => continue,
                };
                if let Some(entry) = AclEntry::from_classad(ad) {
                    acls.entry(path).or_default().push(entry);
                }
            }
        }
        table
    }
}

/// Builds the request ad a protocol handler passes to ACL checks.
pub fn request_ad(protocol: &str, operation: &str) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert_value("Type", Value::str("Request"));
    ad.insert_value("Protocol", Value::str(protocol));
    ad.insert_value("Operation", Value::str(operation));
    ad
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_classad::parse_expr;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn req() -> ClassAd {
        request_ad("chirp", "get")
    }

    #[test]
    fn rights_parse_and_print() {
        let e = AclEntry::new(Who::Everyone, "rwl");
        assert_eq!(e.rights_string(), "rlw");
        let all = AclEntry::new(Who::Everyone, "all");
        assert_eq!(all.rights_string(), "rlidwa");
    }

    #[test]
    fn user_entry_grants_only_that_user() {
        let t = AclTable::new();
        t.set_acl(
            VPath::root(),
            vec![AclEntry::new(Who::User("alice".into()), "r")],
        );
        assert!(t.check(
            &Principal::user("alice"),
            AccessRight::Read,
            &vp("/f"),
            &req()
        ));
        assert!(!t.check(
            &Principal::user("bob"),
            AccessRight::Read,
            &vp("/f"),
            &req()
        ));
        assert!(!t.check(
            &Principal::user("alice"),
            AccessRight::Write,
            &vp("/f"),
            &req()
        ));
    }

    #[test]
    fn group_entry_uses_membership() {
        let t = AclTable::new();
        t.set_group("wind", ["alice".to_owned(), "bob".to_owned()]);
        t.set_acl(
            VPath::root(),
            vec![AclEntry::new(Who::Group("wind".into()), "rl")],
        );
        let alice = t.resolve("alice");
        let carol = t.resolve("carol");
        assert!(t.check(&alice, AccessRight::Read, &vp("/x"), &req()));
        assert!(!t.check(&carol, AccessRight::Read, &vp("/x"), &req()));
    }

    #[test]
    fn anonymous_vs_everyone() {
        let t = AclTable::new();
        t.set_acl(
            VPath::root(),
            vec![
                AclEntry::new(Who::Anonymous, "rl"),
                AclEntry::new(Who::Everyone, "l"),
            ],
        );
        let anon = Principal::anonymous();
        let user = Principal::user("alice");
        assert!(t.check(&anon, AccessRight::Read, &vp("/f"), &req()));
        assert!(!t.check(&user, AccessRight::Read, &vp("/f"), &req()));
        assert!(t.check(&user, AccessRight::Lookup, &vp("/f"), &req()));
    }

    #[test]
    fn inheritance_nearest_ancestor_wins() {
        let t = AclTable::new();
        t.set_acl(VPath::root(), vec![AclEntry::new(Who::Everyone, "all")]);
        t.set_acl(
            vp("/private"),
            vec![AclEntry::new(Who::User("alice".into()), "all")],
        );
        let bob = Principal::user("bob");
        assert!(t.check(&bob, AccessRight::Read, &vp("/public/f"), &req()));
        assert!(!t.check(&bob, AccessRight::Read, &vp("/private/f"), &req()));
        assert!(!t.check(&bob, AccessRight::Read, &vp("/private/deep/f"), &req()));
        let alice = Principal::user("alice");
        assert!(t.check(&alice, AccessRight::Read, &vp("/private/deep/f"), &req()));
    }

    #[test]
    fn empty_table_denies_everything() {
        let t = AclTable::new();
        assert!(!t.check(
            &Principal::user("root"),
            AccessRight::Read,
            &vp("/f"),
            &req()
        ));
    }

    #[test]
    fn open_by_default_grants_everything() {
        let t = AclTable::open_by_default();
        assert!(t.check(
            &Principal::anonymous(),
            AccessRight::Admin,
            &vp("/any/where"),
            &req()
        ));
    }

    #[test]
    fn guarded_entry_consults_request_ad() {
        let t = AclTable::new();
        // Anonymous may read, but only over HTTP.
        t.set_acl(
            VPath::root(),
            vec![AclEntry::new(Who::Anonymous, "rl")
                .when(parse_expr("Protocol == \"http\"").unwrap())],
        );
        let anon = Principal::anonymous();
        assert!(t.check(
            &anon,
            AccessRight::Read,
            &vp("/f"),
            &request_ad("http", "get")
        ));
        assert!(!t.check(
            &anon,
            AccessRight::Read,
            &vp("/f"),
            &request_ad("ftp", "get")
        ));
    }

    #[test]
    fn classad_roundtrip_preserves_entries() {
        let t = AclTable::new();
        t.set_acl(
            vp("/data"),
            vec![
                AclEntry::new(Who::User("alice".into()), "rliw"),
                AclEntry::new(Who::Group("wind".into()), "rl")
                    .when(parse_expr("Protocol == \"chirp\"").unwrap()),
            ],
        );
        let ads = t.to_classads();
        assert_eq!(ads.len(), 2);
        let restored = AclTable::from_classads(&ads);
        let entries = restored.get_acl(&vp("/data")).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries, t.get_acl(&vp("/data")).unwrap());
    }

    #[test]
    fn who_spec_parsing() {
        assert_eq!(Who::from_spec("*"), Some(Who::Everyone));
        assert_eq!(Who::from_spec("anonymous"), Some(Who::Anonymous));
        assert_eq!(
            Who::from_spec("group:wind"),
            Some(Who::Group("wind".into()))
        );
        assert_eq!(Who::from_spec("user:x"), Some(Who::User("x".into())));
        assert_eq!(Who::from_spec("bare"), Some(Who::User("bare".into())));
    }

    #[test]
    fn clear_acl_restores_inheritance() {
        let t = AclTable::new();
        t.set_acl(VPath::root(), vec![AclEntry::new(Who::Everyone, "r")]);
        t.set_acl(vp("/sub"), vec![]);
        let p = Principal::user("u");
        assert!(!t.check(&p, AccessRight::Read, &vp("/sub/f"), &req()));
        t.clear_acl(&vp("/sub"));
        assert!(t.check(&p, AccessRight::Read, &vp("/sub/f"), &req()));
    }
}
