//! Lots: guaranteed storage space (paper §5).
//!
//! "Each lot is defined by four characteristics: owner, capacity, duration,
//! and files." When a lot's duration expires its files are not deleted;
//! the lot becomes **best-effort** and its space is reclaimed only when
//! needed to create a new lot. Files may span multiple lots when they do
//! not fit in one.
//!
//! Beyond the paper's 2002 release this module also implements two of its
//! announced extensions: **group lots** (owner may be a group) and a choice
//! of best-effort **reclamation policies** (the paper says "we are currently
//! investigating different selection policies for reclaiming this space").
//!
//! Time is passed in explicitly (seconds) so the same code runs under the
//! real clock and under the simulation substrate.

use crate::namespace::VPath;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A lot identifier, unique within one NeST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LotId(pub u64);

impl fmt::Display for LotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lot-{}", self.0)
    }
}

/// Who owns a lot: a user, or (extension) a group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LotOwner {
    /// An individual user, as in the paper's 2002 release.
    User(String),
    /// A group lot — the paper's "next release" feature.
    Group(String),
}

impl LotOwner {
    /// True when `user` (with `groups` memberships) may use this lot.
    pub fn usable_by(&self, user: &str, groups: &std::collections::HashSet<String>) -> bool {
        match self {
            LotOwner::User(u) => u == user,
            LotOwner::Group(g) => groups.contains(g),
        }
    }
}

impl fmt::Display for LotOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotOwner::User(u) => write!(f, "user:{}", u),
            LotOwner::Group(g) => write!(f, "group:{}", g),
        }
    }
}

/// A storage-space guarantee.
#[derive(Debug, Clone)]
pub struct Lot {
    /// Unique id.
    pub id: LotId,
    /// Owner (user or group).
    pub owner: LotOwner,
    /// Guaranteed capacity in bytes.
    pub capacity: u64,
    /// Absolute expiry time (seconds). After this the lot is best-effort.
    pub expires_at: u64,
    /// Bytes currently stored in this lot.
    pub used: u64,
    /// Last time (seconds) data in this lot was read or written, for the
    /// LRU reclamation policy.
    pub last_access: u64,
    /// Files with bytes allocated in this lot, and how many bytes each has
    /// here (a file may span lots).
    pub files: BTreeMap<VPath, u64>,
}

impl Lot {
    /// True once the duration has elapsed.
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }

    /// Uncommitted capacity.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }
}

/// How best-effort (expired) lots are chosen for reclamation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimPolicy {
    /// Longest-expired first (the natural FIFO on expiry).
    ExpiredFirst,
    /// Largest occupied space first (frees the most per eviction).
    LargestFirst,
    /// Least recently accessed first.
    Lru,
}

/// Errors from lot operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LotError {
    /// No lot with that id.
    NoSuchLot(LotId),
    /// Creating or writing would exceed guaranteed space even after
    /// reclaiming every best-effort lot.
    InsufficientSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes available after maximal reclamation.
        available: u64,
    },
    /// The named user may not use this lot.
    NotOwner,
    /// Writes are not accepted into an expired (best-effort) lot.
    Expired(LotId),
    /// The user has no lot at all (file creation requires one).
    NoLot(String),
}

impl fmt::Display for LotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotError::NoSuchLot(id) => write!(f, "no such lot {}", id),
            LotError::InsufficientSpace {
                requested,
                available,
            } => write!(
                f,
                "insufficient guaranteed space: requested {}, available {}",
                requested, available
            ),
            LotError::NotOwner => write!(f, "caller does not own this lot"),
            LotError::Expired(id) => write!(f, "lot {} has expired (best-effort)", id),
            LotError::NoLot(user) => write!(f, "user {} holds no lot", user),
        }
    }
}

impl std::error::Error for LotError {}

/// The outcome of an operation that may have evicted best-effort lots:
/// the paths whose backing store should now be deleted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Evicted {
    /// Files to delete from the physical backend.
    pub files: Vec<VPath>,
    /// The reclaimed lots.
    pub lots: Vec<LotId>,
}

/// The lot table and its accounting.
///
/// Invariants (checked by `debug_assert_invariants`):
/// * Σ active capacities + Σ best-effort used ≤ total capacity — every
///   active lot can always be filled to its capacity;
/// * each lot's `used` equals the sum of its per-file allocations;
/// * a lot's `used` never exceeds its `capacity`.
pub struct LotManager {
    inner: Mutex<LotState>,
}

struct LotState {
    total_capacity: u64,
    policy: ReclaimPolicy,
    next_id: u64,
    lots: HashMap<LotId, Lot>,
    /// Which lots each file has bytes in (orders spans for release).
    file_spans: HashMap<VPath, Vec<LotId>>,
}

impl LotManager {
    /// Creates a manager over `total_capacity` bytes of physical storage.
    pub fn new(total_capacity: u64, policy: ReclaimPolicy) -> Self {
        Self {
            inner: Mutex::named(
                "storage.lot",
                300,
                LotState {
                    total_capacity,
                    policy,
                    next_id: 1,
                    lots: HashMap::new(),
                    file_spans: HashMap::new(),
                },
            ),
        }
    }

    /// Total physical capacity under management.
    pub fn total_capacity(&self) -> u64 {
        self.inner.lock().total_capacity
    }

    /// Sum of active (unexpired) lot capacities — space that is promised.
    pub fn guaranteed(&self, now: u64) -> u64 {
        let st = self.inner.lock();
        st.lots
            .values()
            .filter(|l| !l.is_expired(now))
            .map(|l| l.capacity)
            .sum()
    }

    /// Space available for new guarantees after maximal reclamation.
    pub fn reservable(&self, now: u64) -> u64 {
        let st = self.inner.lock();
        let committed: u64 = st
            .lots
            .values()
            .filter(|l| !l.is_expired(now))
            .map(|l| l.capacity)
            .sum();
        st.total_capacity.saturating_sub(committed)
    }

    /// Creates a lot of `capacity` bytes lasting `duration` seconds,
    /// reclaiming best-effort lots if needed. Returns the new lot id and
    /// any evictions the caller must apply to the backend.
    pub fn create(
        &self,
        owner: LotOwner,
        capacity: u64,
        duration: u64,
        now: u64,
    ) -> Result<(LotId, Evicted), LotError> {
        let mut st = self.inner.lock();
        let mut evicted = Evicted::default();

        // The guarantee invariant: active capacities plus best-effort bytes
        // physically present must fit. Reclaim until the new lot fits.
        loop {
            let active_cap: u64 = st
                .lots
                .values()
                .filter(|l| !l.is_expired(now))
                .map(|l| l.capacity)
                .sum();
            let best_effort_used: u64 = st
                .lots
                .values()
                .filter(|l| l.is_expired(now))
                .map(|l| l.used)
                .sum();
            if active_cap + best_effort_used + capacity <= st.total_capacity {
                break;
            }
            // Pick a best-effort victim per policy.
            match st.pick_victim(now) {
                Some(victim) => st.evict(victim, &mut evicted),
                None => {
                    return Err(LotError::InsufficientSpace {
                        requested: capacity,
                        available: st.total_capacity.saturating_sub(active_cap),
                    })
                }
            }
        }

        let id = LotId(st.next_id);
        st.next_id += 1;
        st.lots.insert(
            id,
            Lot {
                id,
                owner,
                capacity,
                expires_at: now.saturating_add(duration),
                used: 0,
                last_access: now,
                files: BTreeMap::new(),
            },
        );
        st.debug_assert_invariants(now);
        Ok((id, evicted))
    }

    /// Extends a lot's duration ("users are allowed to indefinitely renew").
    pub fn renew(&self, id: LotId, extra: u64, now: u64) -> Result<(), LotError> {
        let mut st = self.inner.lock();
        // Renewing an expired lot re-activates it only if the guarantee
        // invariant still holds with its capacity re-promised.
        let active_cap: u64 = st
            .lots
            .values()
            .filter(|l| l.id != id && !l.is_expired(now))
            .map(|l| l.capacity)
            .sum();
        let best_effort_used: u64 = st
            .lots
            .values()
            .filter(|l| l.id != id && l.is_expired(now))
            .map(|l| l.used)
            .sum();
        let total = st.total_capacity;
        let lot = st.lots.get_mut(&id).ok_or(LotError::NoSuchLot(id))?;
        if lot.is_expired(now) {
            if active_cap + best_effort_used + lot.capacity > total {
                return Err(LotError::InsufficientSpace {
                    requested: lot.capacity,
                    available: total.saturating_sub(active_cap + best_effort_used),
                });
            }
            lot.expires_at = now.saturating_add(extra);
        } else {
            lot.expires_at = lot.expires_at.saturating_add(extra);
        }
        Ok(())
    }

    /// Terminates a lot. Its files' allocations here are dropped; files
    /// whose *entire* allocation was in this lot are returned for deletion.
    pub fn terminate(&self, id: LotId) -> Result<Evicted, LotError> {
        let mut st = self.inner.lock();
        if !st.lots.contains_key(&id) {
            return Err(LotError::NoSuchLot(id));
        }
        let mut evicted = Evicted::default();
        st.evict(id, &mut evicted);
        Ok(evicted)
    }

    /// Looks up a lot snapshot.
    pub fn stat(&self, id: LotId) -> Result<Lot, LotError> {
        self.inner
            .lock()
            .lots
            .get(&id)
            .cloned()
            .ok_or(LotError::NoSuchLot(id))
    }

    /// All lots usable by a user with the given group memberships.
    pub fn lots_for(&self, user: &str, groups: &std::collections::HashSet<String>) -> Vec<Lot> {
        let st = self.inner.lock();
        let mut lots: Vec<Lot> = st
            .lots
            .values()
            .filter(|l| l.owner.usable_by(user, groups))
            .cloned()
            .collect();
        lots.sort_by_key(|l| l.id);
        lots
    }

    /// Charges `bytes` for `path` against the user's active lots, spanning
    /// lots when one alone cannot hold the file (paper: "a file may span
    /// multiple lots if it cannot fit within a single one").
    pub fn charge_file(
        &self,
        user: &str,
        groups: &std::collections::HashSet<String>,
        path: &VPath,
        bytes: u64,
        now: u64,
    ) -> Result<(), LotError> {
        let mut st = self.inner.lock();
        let mut usable: Vec<LotId> = st
            .lots
            .values()
            .filter(|l| l.owner.usable_by(user, groups) && !l.is_expired(now))
            .map(|l| l.id)
            .collect();
        usable.sort();
        if usable.is_empty() {
            let holds_any = st.lots.values().any(|l| l.owner.usable_by(user, groups));
            return Err(if holds_any {
                // Only expired lots remain; writes are refused.
                LotError::Expired(
                    st.lots
                        .values()
                        .find(|l| l.owner.usable_by(user, groups))
                        .map(|l| l.id)
                        .unwrap(),
                )
            } else {
                LotError::NoLot(user.to_owned())
            });
        }
        let available: u64 = usable.iter().map(|id| st.lots[id].free()).sum();
        if bytes > available {
            return Err(LotError::InsufficientSpace {
                requested: bytes,
                available,
            });
        }
        // Greedy span across lots in id order.
        let mut remaining = bytes;
        for id in usable {
            if remaining == 0 {
                break;
            }
            let lot = st.lots.get_mut(&id).unwrap();
            let take = lot.free().min(remaining);
            if take == 0 {
                continue;
            }
            lot.used += take;
            lot.last_access = now;
            *lot.files.entry(path.clone()).or_insert(0) += take;
            remaining -= take;
            let spans = st.file_spans.entry(path.clone()).or_default();
            if !spans.contains(&id) {
                spans.push(id);
            }
        }
        debug_assert_eq!(remaining, 0);
        st.debug_assert_invariants(now);
        Ok(())
    }

    /// Releases all of a file's charges (on delete or truncate-to-zero).
    /// Returns the number of bytes released.
    pub fn release_file(&self, path: &VPath) -> u64 {
        let mut st = self.inner.lock();
        let Some(span) = st.file_spans.remove(path) else {
            return 0;
        };
        let mut released = 0;
        for id in span {
            if let Some(lot) = st.lots.get_mut(&id) {
                if let Some(bytes) = lot.files.remove(path) {
                    lot.used = lot.used.saturating_sub(bytes);
                    released += bytes;
                }
            }
        }
        // Releasing a span must leave every touched lot conserving bytes
        // (the expiry-dependent guarantee check needs a clock and is
        // re-verified on the next charge).
        if nest_check::enforcing() {
            for lot in st.lots.values() {
                let file_sum: u64 = lot.files.values().sum();
                nest_check::invariant!(
                    lot.used == file_sum,
                    "lot {} byte conservation after release: used {} != sum(file charges) {}",
                    lot.id,
                    lot.used,
                    file_sum
                );
            }
        }
        released
    }

    /// Records an access to the lots backing `path` (for LRU reclamation).
    pub fn touch_file(&self, path: &VPath, now: u64) {
        let mut st = self.inner.lock();
        let Some(span) = st.file_spans.get(path).cloned() else {
            return;
        };
        for id in span {
            if let Some(lot) = st.lots.get_mut(&id) {
                lot.last_access = now;
            }
        }
    }

    /// Snapshot of every lot, for ad publication and `lot_list`.
    pub fn all_lots(&self) -> Vec<Lot> {
        let mut lots: Vec<Lot> = self.inner.lock().lots.values().cloned().collect();
        lots.sort_by_key(|l| l.id);
        lots
    }

    // -- persistence ---------------------------------------------------------

    /// Serializes the lot table to a line format for persistence:
    ///
    /// ```text
    /// lot <id> <user|group> <name> <capacity> <expires> <last_access>
    /// file <lot-id> <bytes> <path>
    /// ```
    ///
    /// Reservations must survive appliance restarts for the guarantee to
    /// mean anything; the paper got this for free from kernel quotas.
    pub fn snapshot(&self) -> String {
        let st = self.inner.lock();
        let mut out = String::new();
        let mut ids: Vec<&LotId> = st.lots.keys().collect();
        ids.sort();
        for id in ids {
            let lot = &st.lots[id];
            let (kind, name) = match &lot.owner {
                LotOwner::User(u) => ("user", u),
                LotOwner::Group(g) => ("group", g),
            };
            out.push_str(&format!(
                "lot {} {} {} {} {} {}\n",
                lot.id.0, kind, name, lot.capacity, lot.expires_at, lot.last_access
            ));
            for (path, bytes) in &lot.files {
                out.push_str(&format!("file {} {} {}\n", lot.id.0, bytes, path));
            }
        }
        out
    }

    /// Rebuilds a manager from a [`LotManager::snapshot`]. Unparseable
    /// lines are skipped (a corrupt line must not brick the appliance);
    /// lots that would violate the guarantee invariant against
    /// `total_capacity` *as of `now`* are dropped (expired lots count only
    /// their stored bytes, exactly as in the live invariant).
    pub fn restore(text: &str, total_capacity: u64, policy: ReclaimPolicy, now: u64) -> Self {
        let manager = Self::new(total_capacity, policy);
        {
            let mut st = manager.inner.lock();
            for line in text.lines() {
                let mut it = line.split_whitespace();
                match it.next() {
                    Some("lot") => {
                        let mut parse = || -> Option<Lot> {
                            let id = LotId(it.next()?.parse().ok()?);
                            let kind = it.next()?;
                            let name = it.next()?.to_owned();
                            let owner = match kind {
                                "user" => LotOwner::User(name),
                                "group" => LotOwner::Group(name),
                                _ => return None,
                            };
                            Some(Lot {
                                id,
                                owner,
                                capacity: it.next()?.parse().ok()?,
                                expires_at: it.next()?.parse().ok()?,
                                used: 0,
                                last_access: it.next()?.parse().ok()?,
                                files: BTreeMap::new(),
                            })
                        };
                        if let Some(lot) = parse() {
                            st.next_id = st.next_id.max(lot.id.0 + 1);
                            st.lots.insert(lot.id, lot);
                        }
                    }
                    Some("file") => {
                        let parse = || -> Option<(LotId, u64, VPath)> {
                            let id = LotId(it.next()?.parse().ok()?);
                            let bytes: u64 = it.next()?.parse().ok()?;
                            // The path is the remainder (it may hold spaces
                            // only if clients sent them; VPath handles it).
                            let rest: Vec<&str> = it.collect();
                            let path = VPath::parse(&rest.join(" ")).ok()?;
                            Some((id, bytes, path))
                        };
                        if let Some((id, bytes, path)) = parse() {
                            if let Some(lot) = st.lots.get_mut(&id) {
                                if lot.used + bytes <= lot.capacity {
                                    lot.used += bytes;
                                    *lot.files.entry(path.clone()).or_insert(0) += bytes;
                                    let spans = st.file_spans.entry(path).or_default();
                                    if !spans.contains(&id) {
                                        spans.push(id);
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Enforce the guarantee invariant: drop newest lots until the
            // snapshot fits the (possibly reduced) capacity.
            loop {
                let active_cap: u64 = st
                    .lots
                    .values()
                    .filter(|l| !l.is_expired(now))
                    .map(|l| l.capacity)
                    .sum();
                let best_used: u64 = st
                    .lots
                    .values()
                    .filter(|l| l.is_expired(now))
                    .map(|l| l.used)
                    .sum();
                if active_cap + best_used <= total_capacity {
                    break;
                }
                let victim = st.lots.keys().max().copied();
                match victim {
                    Some(id) => {
                        let mut ev = Evicted::default();
                        st.evict(id, &mut ev);
                    }
                    None => break,
                }
            }
        }
        manager
    }
}

impl LotState {
    fn pick_victim(&self, now: u64) -> Option<LotId> {
        let candidates: Vec<&Lot> = self.lots.values().filter(|l| l.is_expired(now)).collect();
        match self.policy {
            ReclaimPolicy::ExpiredFirst => candidates
                .iter()
                .min_by_key(|l| (l.expires_at, l.id))
                .map(|l| l.id),
            ReclaimPolicy::LargestFirst => candidates
                .iter()
                .max_by_key(|l| (l.used, std::cmp::Reverse(l.id)))
                .map(|l| l.id),
            ReclaimPolicy::Lru => candidates
                .iter()
                .min_by_key(|l| (l.last_access, l.id))
                .map(|l| l.id),
        }
    }

    fn evict(&mut self, id: LotId, evicted: &mut Evicted) {
        let Some(lot) = self.lots.remove(&id) else {
            return;
        };
        evicted.lots.push(id);
        for (path, _bytes) in lot.files {
            // Remove this lot from the file's span; if it was the file's
            // only backing, the file loses its guarantee and is deleted.
            if let Some(span) = self.file_spans.get_mut(&path) {
                span.retain(|l| *l != id);
                if span.is_empty() {
                    self.file_spans.remove(&path);
                    evicted.files.push(path);
                } else {
                    // Partially backed file: remaining spans keep their
                    // bytes; the evicted portion is gone. Physical
                    // truncation is the storage manager's job; we surface
                    // the file as evicted so it is handled conservatively.
                    evicted.files.push(path.clone());
                    // Drop the file's remaining charges too: a partially
                    // deleted file is useless.
                    for other in self.file_spans.remove(&path).unwrap_or_default() {
                        if let Some(l) = self.lots.get_mut(&other) {
                            if let Some(b) = l.files.remove(&path) {
                                l.used = l.used.saturating_sub(b);
                            }
                        }
                    }
                }
            }
        }
    }

    fn debug_assert_invariants(&self, now: u64) {
        if nest_check::enforcing() {
            let active_cap: u64 = self
                .lots
                .values()
                .filter(|l| !l.is_expired(now))
                .map(|l| l.capacity)
                .sum();
            let best_used: u64 = self
                .lots
                .values()
                .filter(|l| l.is_expired(now))
                .map(|l| l.used)
                .sum();
            nest_check::invariant!(
                active_cap + best_used <= self.total_capacity,
                "lot guarantee: active capacity {} + best-effort used {} > total {}",
                active_cap,
                best_used,
                self.total_capacity
            );
            // Byte conservation: each lot's committed bytes equal the sum
            // of its per-file charges, and never exceed its capacity.
            for lot in self.lots.values() {
                nest_check::invariant!(
                    lot.used <= lot.capacity,
                    "lot {} used {} exceeds capacity {}",
                    lot.id,
                    lot.used,
                    lot.capacity
                );
                let file_sum: u64 = lot.files.values().sum();
                nest_check::invariant!(
                    lot.used == file_sum,
                    "lot {} byte conservation: used {} != sum(file charges) {}",
                    lot.id,
                    lot.used,
                    file_sum
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn no_groups() -> HashSet<String> {
        HashSet::new()
    }

    fn user(name: &str) -> LotOwner {
        LotOwner::User(name.to_owned())
    }

    #[test]
    fn create_within_capacity() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, ev) = lm.create(user("alice"), 400, 100, 0).unwrap();
        assert!(ev.lots.is_empty());
        let (b, _) = lm.create(user("bob"), 600, 100, 0).unwrap();
        assert_ne!(a, b);
        assert_eq!(lm.guaranteed(0), 1000);
        assert_eq!(lm.reservable(0), 0);
    }

    #[test]
    fn create_beyond_capacity_fails() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(user("a"), 800, 100, 0).unwrap();
        match lm.create(user("b"), 300, 100, 0) {
            Err(LotError::InsufficientSpace {
                requested: 300,
                available: 200,
            }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn charge_and_release_file() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("alice"), 500, 100, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/f"), 200, 1)
            .unwrap();
        assert_eq!(lm.stat(id).unwrap().used, 200);
        assert_eq!(lm.release_file(&vp("/f")), 200);
        assert_eq!(lm.stat(id).unwrap().used, 0);
        // Double release is a no-op.
        assert_eq!(lm.release_file(&vp("/f")), 0);
    }

    #[test]
    fn file_spans_multiple_lots() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("alice"), 300, 100, 0).unwrap();
        let (b, _) = lm.create(user("alice"), 300, 100, 0).unwrap();
        // 500 bytes does not fit in either lot alone.
        lm.charge_file("alice", &no_groups(), &vp("/big"), 500, 1)
            .unwrap();
        assert_eq!(lm.stat(a).unwrap().used, 300);
        assert_eq!(lm.stat(b).unwrap().used, 200);
        assert_eq!(lm.release_file(&vp("/big")), 500);
    }

    #[test]
    fn overfull_single_lot_rejected_even_with_spare_elsewhere() {
        // The paper's noted quota-implementation caveat does NOT apply to
        // NeST-managed lots: spanning handles it. But a user with no active
        // lot capacity at all must be refused.
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(user("alice"), 100, 100, 0).unwrap();
        match lm.charge_file("alice", &no_groups(), &vp("/f"), 150, 1) {
            Err(LotError::InsufficientSpace {
                requested: 150,
                available: 100,
            }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn no_lot_no_write() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        match lm.charge_file("ghost", &no_groups(), &vp("/f"), 1, 0) {
            Err(LotError::NoLot(u)) => assert_eq!(u, "ghost"),
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn expired_lot_refuses_writes_but_keeps_files() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("alice"), 500, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/f"), 100, 1)
            .unwrap();
        // Past expiry: writes fail, data still accounted.
        match lm.charge_file("alice", &no_groups(), &vp("/g"), 1, 11) {
            Err(LotError::Expired(e)) => assert_eq!(e, id),
            other => panic!("unexpected: {:?}", other),
        }
        assert_eq!(lm.stat(id).unwrap().used, 100);
    }

    #[test]
    fn best_effort_space_reclaimed_for_new_lot() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("alice"), 900, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/old"), 900, 1)
            .unwrap();
        // At t=20 the lot is best-effort; its 900 bytes linger...
        assert_eq!(lm.stat(old).unwrap().used, 900);
        // ...until bob needs a 500-byte guarantee.
        let (_, evicted) = lm.create(user("bob"), 500, 100, 20).unwrap();
        assert_eq!(evicted.lots, vec![old]);
        assert_eq!(evicted.files, vec![vp("/old")]);
        assert!(lm.stat(old).is_err());
    }

    #[test]
    fn expired_lot_untouched_when_space_suffices() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("alice"), 300, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/keep"), 300, 1)
            .unwrap();
        let (_, evicted) = lm.create(user("bob"), 500, 100, 20).unwrap();
        assert!(evicted.lots.is_empty());
        assert_eq!(lm.stat(old).unwrap().used, 300);
    }

    #[test]
    fn reclaim_policy_largest_first() {
        let lm = LotManager::new(1000, ReclaimPolicy::LargestFirst);
        let (small, _) = lm.create(user("a"), 200, 10, 0).unwrap();
        let (big, _) = lm.create(user("b"), 700, 10, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/s"), 100, 1)
            .unwrap();
        lm.charge_file("b", &no_groups(), &vp("/b"), 600, 1)
            .unwrap();
        // Both expired at t=20. Need 400: evicting the largest (600) is
        // enough; the small one survives.
        let (_, ev) = lm.create(user("c"), 400, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![big]);
        assert!(lm.stat(small).is_ok());
    }

    #[test]
    fn reclaim_policy_lru() {
        let lm = LotManager::new(1000, ReclaimPolicy::Lru);
        let (a, _) = lm.create(user("a"), 450, 10, 0).unwrap();
        let (b, _) = lm.create(user("b"), 450, 10, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/a"), 450, 1)
            .unwrap();
        lm.charge_file("b", &no_groups(), &vp("/b"), 450, 2)
            .unwrap();
        // Touch a's file later: b becomes the LRU victim.
        lm.touch_file(&vp("/a"), 5);
        let (_, ev) = lm.create(user("c"), 400, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![b]);
        assert!(lm.stat(a).is_ok());
    }

    #[test]
    fn renew_extends_active_and_reactivates_expired() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("a"), 500, 10, 0).unwrap();
        lm.renew(id, 10, 5).unwrap();
        assert_eq!(lm.stat(id).unwrap().expires_at, 20);
        // Expired at t=30; renewal re-activates since space is free.
        lm.renew(id, 50, 30).unwrap();
        assert_eq!(lm.stat(id).unwrap().expires_at, 80);
        assert!(!lm.stat(id).unwrap().is_expired(40));
    }

    #[test]
    fn renew_expired_fails_when_space_promised_away() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("a"), 600, 10, 0).unwrap();
        // old expires; bob grabs the space.
        lm.create(user("b"), 600, 100, 20).unwrap();
        match lm.renew(old, 100, 21) {
            Err(LotError::InsufficientSpace { .. }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn terminate_returns_files_for_deletion() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("a"), 500, 100, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/f1"), 100, 1)
            .unwrap();
        lm.charge_file("a", &no_groups(), &vp("/f2"), 100, 1)
            .unwrap();
        let ev = lm.terminate(id).unwrap();
        assert_eq!(ev.lots, vec![id]);
        let mut files = ev.files.clone();
        files.sort();
        assert_eq!(files, vec![vp("/f1"), vp("/f2")]);
        assert!(matches!(lm.terminate(id), Err(LotError::NoSuchLot(_))));
    }

    #[test]
    fn group_lot_usable_by_members() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(LotOwner::Group("wind".into()), 500, 100, 0)
            .unwrap();
        let mut groups = HashSet::new();
        groups.insert("wind".to_owned());
        lm.charge_file("alice", &groups, &vp("/shared"), 100, 1)
            .unwrap();
        // Non-member refused.
        match lm.charge_file("mallory", &no_groups(), &vp("/x"), 1, 1) {
            Err(LotError::NoLot(_)) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn spanned_file_fully_dropped_when_one_backing_lot_evicted() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("u"), 300, 10, 0).unwrap();
        let (_b, _) = lm.create(user("u"), 300, 1000, 0).unwrap();
        lm.charge_file("u", &no_groups(), &vp("/span"), 500, 1)
            .unwrap();
        // Lot a expires; creating a big new lot must evict it, and the
        // spanned file is surfaced for deletion with all charges dropped.
        let (_, ev) = lm.create(user("v"), 500, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![a]);
        assert_eq!(ev.files, vec![vp("/span")]);
        assert_eq!(lm.release_file(&vp("/span")), 0);
    }

    #[test]
    fn lots_for_lists_in_id_order() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("u"), 100, 100, 0).unwrap();
        let (b, _) = lm.create(user("u"), 100, 100, 0).unwrap();
        lm.create(user("other"), 100, 100, 0).unwrap();
        let mine = lm.lots_for("u", &no_groups());
        assert_eq!(mine.iter().map(|l| l.id).collect::<Vec<_>>(), vec![a, b]);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn snapshot_restore_roundtrip() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm
            .create(LotOwner::User("alice".into()), 400, 100, 5)
            .unwrap();
        let (b, _) = lm
            .create(LotOwner::Group("wind".into()), 300, 200, 6)
            .unwrap();
        let groups: HashSet<String> = ["wind".to_owned()].into();
        lm.charge_file(
            "alice",
            &HashSet::new(),
            &VPath::parse("/f1").unwrap(),
            150,
            7,
        )
        .unwrap();
        lm.charge_file("bob", &groups, &VPath::parse("/f2").unwrap(), 100, 8)
            .unwrap();

        let snap = lm.snapshot();
        let restored = LotManager::restore(&snap, 1000, ReclaimPolicy::ExpiredFirst, 0);

        let la = restored.stat(a).unwrap();
        assert_eq!(la.capacity, 400);
        assert_eq!(la.used, 150);
        assert_eq!(la.expires_at, 105);
        let lb = restored.stat(b).unwrap();
        assert_eq!(lb.owner, LotOwner::Group("wind".into()));
        assert_eq!(lb.used, 100);
        // File spans survive: releasing /f1 frees lot a.
        assert_eq!(restored.release_file(&VPath::parse("/f1").unwrap()), 150);
        assert_eq!(restored.stat(a).unwrap().used, 0);
        // Fresh ids continue past the snapshot's.
        let (c, _) = restored
            .create(LotOwner::User("carol".into()), 100, 10, 0)
            .unwrap();
        assert!(c.0 > b.0);
    }

    #[test]
    fn restore_skips_garbage_lines() {
        let text = "lot 1 user alice 100 50 0\nTOTALLY BROKEN\nfile 1 40 /x\nfile 99 10 /orphan\n";
        let lm = LotManager::restore(text, 1000, ReclaimPolicy::ExpiredFirst, 0);
        assert_eq!(lm.stat(LotId(1)).unwrap().used, 40);
        assert_eq!(lm.all_lots().len(), 1);
    }

    #[test]
    fn restore_enforces_reduced_capacity() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(LotOwner::User("a".into()), 600, 100, 0).unwrap();
        lm.create(LotOwner::User("b".into()), 350, 100, 0).unwrap();
        let snap = lm.snapshot();
        // Restore onto a smaller disk: the newest lot is dropped.
        let small = LotManager::restore(&snap, 700, ReclaimPolicy::ExpiredFirst, 0);
        assert_eq!(small.all_lots().len(), 1);
        assert_eq!(small.all_lots()[0].capacity, 600);
    }

    #[test]
    fn empty_snapshot_restores_empty() {
        let lm = LotManager::restore("", 500, ReclaimPolicy::Lru, 0);
        assert!(lm.all_lots().is_empty());
        assert_eq!(lm.total_capacity(), 500);
    }
}
