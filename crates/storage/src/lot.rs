//! Lots: guaranteed storage space (paper §5).
//!
//! "Each lot is defined by four characteristics: owner, capacity, duration,
//! and files." When a lot's duration expires its files are not deleted;
//! the lot becomes **best-effort** and its space is reclaimed only when
//! needed to create a new lot. Files may span multiple lots when they do
//! not fit in one.
//!
//! Beyond the paper's 2002 release this module also implements two of its
//! announced extensions: **group lots** (owner may be a group) and a choice
//! of best-effort **reclamation policies** (the paper says "we are currently
//! investigating different selection policies for reclaiming this space").
//!
//! Time is passed in explicitly (seconds) so the same code runs under the
//! real clock and under the simulation substrate.

use crate::namespace::VPath;
use parking_lot::{shard_hash, MutexGuard, ShardedMutex};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A lot identifier, unique within one NeST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LotId(pub u64);

impl fmt::Display for LotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lot-{}", self.0)
    }
}

/// Who owns a lot: a user, or (extension) a group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LotOwner {
    /// An individual user, as in the paper's 2002 release.
    User(String),
    /// A group lot — the paper's "next release" feature.
    Group(String),
}

impl LotOwner {
    /// True when `user` (with `groups` memberships) may use this lot.
    pub fn usable_by(&self, user: &str, groups: &std::collections::HashSet<String>) -> bool {
        match self {
            LotOwner::User(u) => u == user,
            LotOwner::Group(g) => groups.contains(g),
        }
    }
}

impl fmt::Display for LotOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotOwner::User(u) => write!(f, "user:{}", u),
            LotOwner::Group(g) => write!(f, "group:{}", g),
        }
    }
}

/// A storage-space guarantee.
#[derive(Debug, Clone)]
pub struct Lot {
    /// Unique id.
    pub id: LotId,
    /// Owner (user or group).
    pub owner: LotOwner,
    /// Guaranteed capacity in bytes.
    pub capacity: u64,
    /// Absolute expiry time (seconds). After this the lot is best-effort.
    pub expires_at: u64,
    /// Bytes currently stored in this lot.
    pub used: u64,
    /// Last time (seconds) data in this lot was read or written, for the
    /// LRU reclamation policy.
    pub last_access: u64,
    /// Files with bytes allocated in this lot, and how many bytes each has
    /// here (a file may span lots).
    pub files: BTreeMap<VPath, u64>,
}

impl Lot {
    /// True once the duration has elapsed.
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }

    /// Uncommitted capacity.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }
}

/// How best-effort (expired) lots are chosen for reclamation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimPolicy {
    /// Longest-expired first (the natural FIFO on expiry).
    ExpiredFirst,
    /// Largest occupied space first (frees the most per eviction).
    LargestFirst,
    /// Least recently accessed first.
    Lru,
}

/// Errors from lot operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LotError {
    /// No lot with that id.
    NoSuchLot(LotId),
    /// Creating or writing would exceed guaranteed space even after
    /// reclaiming every best-effort lot.
    InsufficientSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes available after maximal reclamation.
        available: u64,
    },
    /// The named user may not use this lot.
    NotOwner,
    /// Writes are not accepted into an expired (best-effort) lot.
    Expired(LotId),
    /// The user has no lot at all (file creation requires one).
    NoLot(String),
}

impl fmt::Display for LotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotError::NoSuchLot(id) => write!(f, "no such lot {}", id),
            LotError::InsufficientSpace {
                requested,
                available,
            } => write!(
                f,
                "insufficient guaranteed space: requested {}, available {}",
                requested, available
            ),
            LotError::NotOwner => write!(f, "caller does not own this lot"),
            LotError::Expired(id) => write!(f, "lot {} has expired (best-effort)", id),
            LotError::NoLot(user) => write!(f, "user {} holds no lot", user),
        }
    }
}

impl std::error::Error for LotError {}

/// The outcome of an operation that may have evicted best-effort lots:
/// the paths whose backing store should now be deleted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Evicted {
    /// Files to delete from the physical backend.
    pub files: Vec<VPath>,
    /// The reclaimed lots.
    pub lots: Vec<LotId>,
}

/// Default stripe count for the lot table (and the other sharded tables
/// that follow its lead). `1` is the seed-equivalent ablation.
pub const DEFAULT_LOT_SHARDS: usize = 8;

/// The lot table and its accounting, striped over N cells keyed by lot
/// id (cell `id % N`); each file's span record lives in the cell its
/// *path* hashes to, so the per-chunk hot paths (`charge_file`,
/// `release_file`, `touch_file`, `stat`) lock only the cells they touch.
///
/// Cross-cell discipline (all cells share the one `storage.lot` class):
/// * multi-cell operations lock cells in **ascending index order**;
/// * the owner index (`storage.lot.owners`, rank 303) is only ever
///   locked *after* cells, or alone — `charge_file` reads it and drops
///   the guard before touching any cell;
/// * `committed` is a **sloppy upper bound** on Σ active capacities +
///   Σ best-effort used. Silent expiry only converts an active lot's
///   contribution from `capacity` to `used ≤ capacity`, so a counter
///   that is never decremented outside the all-cells slow path stays
///   ≥ the true commitment — a CAS-add admission against it can admit a
///   lot the true state couldn't hold only if the counter were *under*
///   the truth, which it never is. Ops that hold every cell (create's
///   reclaim path, terminate, renew, restore) recompute it exactly; the
///   error is therefore bounded by the bytes expired-or-released since
///   the last all-cells operation, and errs only toward refusing the
///   fast path.
///
/// Invariants (checked under `nest_check::enforcing()`):
/// * Σ active capacities + Σ best-effort used ≤ total capacity — every
///   active lot can always be filled to its capacity (verified on the
///   all-cells paths; per-cell paths verify the per-lot invariants of
///   every lot they touch);
/// * each lot's `used` equals the sum of its per-file allocations;
/// * a lot's `used` never exceeds its `capacity`.
pub struct LotManager {
    total_capacity: u64,
    policy: ReclaimPolicy,
    /// Never reused; monotonic. Allocation order still gives rising ids.
    next_id: AtomicU64,
    /// Sloppy upper bound on Σ active capacities + Σ best-effort used;
    /// see the struct docs for the safety argument.
    committed: AtomicU64,
    cells: ShardedMutex<LotCell>,
    /// owner key (`user:<u>` / `group:<g>`) → lot ids, so `charge_file`
    /// finds a user's lots without scanning every cell. Maintained under
    /// the owning lot's cell lock; readers re-validate under cell locks.
    owners: ShardedMutex<HashMap<String, Vec<LotId>>>,
}

/// One stripe of the lot table.
struct LotCell {
    /// Lots whose id maps here (`id % shards`).
    lots: HashMap<LotId, Lot>,
    /// Span records for files whose *path* hashes here (orders spans for
    /// release). A span's lots may live in other cells.
    file_spans: HashMap<VPath, Vec<LotId>>,
}

fn owner_key(owner: &LotOwner) -> String {
    owner.to_string()
}

impl LotManager {
    /// Creates a manager over `total_capacity` bytes of physical storage
    /// with the default stripe count.
    pub fn new(total_capacity: u64, policy: ReclaimPolicy) -> Self {
        Self::with_shards(total_capacity, policy, DEFAULT_LOT_SHARDS)
    }

    /// Creates a manager with an explicit stripe count (`1` = the
    /// single-mutex ablation).
    pub fn with_shards(total_capacity: u64, policy: ReclaimPolicy, shards: usize) -> Self {
        Self {
            total_capacity,
            policy,
            next_id: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            cells: ShardedMutex::new("storage.lot", 300, shards, |_| LotCell {
                lots: HashMap::new(),
                file_spans: HashMap::new(),
            }),
            owners: ShardedMutex::new("storage.lot.owners", 303, shards, |_| HashMap::new()),
        }
    }

    /// Stripe count.
    pub fn shards(&self) -> usize {
        self.cells.shards()
    }

    /// The cell a lot id maps to.
    fn cell_of(&self, id: LotId) -> usize {
        (id.0 % self.cells.shards() as u64) as usize
    }

    /// The cell a file path's span record maps to.
    fn cell_of_path(&self, path: &VPath) -> usize {
        self.cells.shard_for(shard_hash(path))
    }

    /// Locks the given cells in ascending index order (deduplicated).
    fn lock_cells(&self, mut idxs: Vec<usize>) -> Vec<(usize, MutexGuard<'_, LotCell>)> {
        idxs.sort_unstable();
        idxs.dedup();
        idxs.into_iter()
            .map(|i| (i, self.cells.lock_idx(i)))
            .collect()
    }

    /// Adds `id` under `key` in the owner index. Callers hold the lot's
    /// cell, so the cells → owners order (ranks 300 → 303) is preserved.
    fn owner_add(&self, key: &str, id: LotId) {
        self.owners
            .lock(shard_hash(key))
            .entry(key.to_owned())
            .or_default()
            .push(id);
    }

    /// Removes `id` under `key` in the owner index (same ordering note).
    fn owner_remove(&self, key: &str, id: LotId) {
        let mut g = self.owners.lock(shard_hash(key));
        if let Some(ids) = g.get_mut(key) {
            ids.retain(|l| *l != id);
            if ids.is_empty() {
                g.remove(key);
            }
        }
    }

    /// Total physical capacity under management.
    pub fn total_capacity(&self) -> u64 {
        self.total_capacity
    }

    /// Sum of active (unexpired) lot capacities — space that is promised.
    /// Cells are read one at a time; concurrent mutators make this a
    /// sloppy (but quiescently exact) gauge, which is all its consumers
    /// (ads, stats surfaces) need.
    pub fn guaranteed(&self, now: u64) -> u64 {
        self.cells
            .for_each_cell(|_, c| {
                c.lots
                    .values()
                    .filter(|l| !l.is_expired(now))
                    .map(|l| l.capacity)
                    .sum::<u64>()
            })
            .into_iter()
            .sum()
    }

    /// Space available for new guarantees after maximal reclamation
    /// (sloppy, like [`LotManager::guaranteed`]).
    pub fn reservable(&self, now: u64) -> u64 {
        self.total_capacity.saturating_sub(self.guaranteed(now))
    }

    /// Creates a lot of `capacity` bytes lasting `duration` seconds,
    /// reclaiming best-effort lots if needed. Returns the new lot id and
    /// any evictions the caller must apply to the backend.
    ///
    /// Fast path: a CAS-add against the sloppy `committed` upper bound
    /// admits the lot touching only its own cell. The CAS runs while the
    /// cell is held, so the all-cells slow path (which excludes every
    /// cell holder) can never observe a reservation that is not yet in a
    /// cell — that is what makes its exact recomputation safe to store.
    pub fn create(
        &self,
        owner: LotOwner,
        capacity: u64,
        duration: u64,
        now: u64,
    ) -> Result<(LotId, Evicted), LotError> {
        // Monotonic id tick; uniqueness is all that is required.
        // nestlint: allow(atomic-ordering): nothing synchronizes on it
        let id = LotId(self.next_id.fetch_add(1, Ordering::Relaxed));
        {
            let mut cell = self.cells.lock_idx(self.cell_of(id));
            // `committed` is a sloppy upper bound; the cell lock held
            // across the CAS provides the ordering (see struct docs).
            // nestlint: allow(atomic-ordering): ordered by the cell lock
            let mut c = self.committed.load(Ordering::Relaxed);
            loop {
                if c.saturating_add(capacity) > self.total_capacity {
                    break; // sloppy bound says full: take the exact path
                }
                match self.committed.compare_exchange_weak(
                    c,
                    c + capacity,
                    // nestlint: allow(atomic-ordering): see the load above.
                    Ordering::Relaxed,
                    // nestlint: allow(atomic-ordering): see the load above.
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let key = owner_key(&owner);
                        cell.lots.insert(
                            id,
                            Lot {
                                id,
                                owner,
                                capacity,
                                expires_at: now.saturating_add(duration),
                                used: 0,
                                last_access: now,
                                files: BTreeMap::new(),
                            },
                        );
                        self.owner_add(&key, id);
                        cell.debug_assert_cell_invariants();
                        return Ok((id, Evicted::default()));
                    }
                    Err(v) => c = v,
                }
            }
        }
        self.create_slow(id, owner, capacity, duration, now)
    }

    /// The exact admission path: hold every cell, reclaim best-effort
    /// lots until the new one fits, and store the recomputed `committed`.
    fn create_slow(
        &self,
        id: LotId,
        owner: LotOwner,
        capacity: u64,
        duration: u64,
        now: u64,
    ) -> Result<(LotId, Evicted), LotError> {
        let mut guards: Vec<(usize, MutexGuard<'_, LotCell>)> =
            self.cells.lock_all().into_iter().enumerate().collect();
        let mut evicted = Evicted::default();
        let (active_cap, best_used) = loop {
            let (active_cap, best_used) = committed_parts(&guards, now);
            if active_cap + best_used + capacity <= self.total_capacity {
                break (active_cap, best_used);
            }
            match self.pick_victim(&guards, now) {
                Some(victim) => self.evict_locked(&mut guards, victim, &mut evicted),
                None => {
                    // The failed admission still knows the exact state:
                    // correct the sloppy bound before reporting.
                    self.committed
                        // nestlint: allow(atomic-ordering): all cells held
                        .store(active_cap + best_used, Ordering::Relaxed);
                    return Err(LotError::InsufficientSpace {
                        requested: capacity,
                        available: self.total_capacity.saturating_sub(active_cap),
                    });
                }
            }
        };
        let key = owner_key(&owner);
        cell_mut(&mut guards, self.cell_of(id)).lots.insert(
            id,
            Lot {
                id,
                owner,
                capacity,
                expires_at: now.saturating_add(duration),
                used: 0,
                last_access: now,
                files: BTreeMap::new(),
            },
        );
        self.owner_add(&key, id);
        self.committed
            // nestlint: allow(atomic-ordering): all cells held
            .store(active_cap + best_used + capacity, Ordering::Relaxed);
        self.debug_assert_invariants(&guards, now);
        Ok((id, evicted))
    }

    /// Extends a lot's duration ("users are allowed to indefinitely renew").
    /// Re-activation re-promises capacity, so this is an all-cells exact
    /// path (renewals are administrative, not per-chunk).
    pub fn renew(&self, id: LotId, extra: u64, now: u64) -> Result<(), LotError> {
        let mut guards: Vec<(usize, MutexGuard<'_, LotCell>)> =
            self.cells.lock_all().into_iter().enumerate().collect();
        // Renewing an expired lot re-activates it only if the guarantee
        // invariant still holds with its capacity re-promised.
        let mut active_cap = 0u64;
        let mut best_effort_used = 0u64;
        for (_, g) in &guards {
            for l in g.lots.values().filter(|l| l.id != id) {
                if l.is_expired(now) {
                    best_effort_used += l.used;
                } else {
                    active_cap += l.capacity;
                }
            }
        }
        let total = self.total_capacity;
        let lot = cell_mut(&mut guards, self.cell_of(id))
            .lots
            .get_mut(&id)
            .ok_or(LotError::NoSuchLot(id))?;
        if lot.is_expired(now) {
            if active_cap + best_effort_used + lot.capacity > total {
                return Err(LotError::InsufficientSpace {
                    requested: lot.capacity,
                    available: total.saturating_sub(active_cap + best_effort_used),
                });
            }
            lot.expires_at = now.saturating_add(extra);
        } else {
            lot.expires_at = lot.expires_at.saturating_add(extra);
        }
        let (a, b) = committed_parts(&guards, now);
        // nestlint: allow(atomic-ordering): all cells held
        self.committed.store(a + b, Ordering::Relaxed);
        Ok(())
    }

    /// Terminates a lot. Its files' allocations here are dropped; files
    /// whose *entire* allocation was in this lot are returned for deletion.
    /// All-cells: the lot's files may have span records anywhere, and the
    /// exact recomputation of `committed` is only safe holding every cell.
    pub fn terminate(&self, id: LotId) -> Result<Evicted, LotError> {
        let mut guards: Vec<(usize, MutexGuard<'_, LotCell>)> =
            self.cells.lock_all().into_iter().enumerate().collect();
        if !cell_mut(&mut guards, self.cell_of(id))
            .lots
            .contains_key(&id)
        {
            return Err(LotError::NoSuchLot(id));
        }
        let mut evicted = Evicted::default();
        self.evict_locked(&mut guards, id, &mut evicted);
        // No clock here, so the survivors' expiry state is unknowable —
        // but `committed` only needs to stay an upper bound, and the most
        // conservative reading treats every survivor as active (counting
        // full capacity). Recompute on that basis.
        let worst_case: u64 = guards
            .iter()
            .flat_map(|(_, g)| g.lots.values())
            .map(|l| l.capacity.max(l.used))
            .sum();
        // nestlint: allow(atomic-ordering): all cells held
        self.committed.store(worst_case, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Looks up a lot snapshot. Single-cell.
    pub fn stat(&self, id: LotId) -> Result<Lot, LotError> {
        self.cells
            .lock_idx(self.cell_of(id))
            .lots
            .get(&id)
            .cloned()
            .ok_or(LotError::NoSuchLot(id))
    }

    /// All lots usable by a user with the given group memberships.
    /// Sequential per-cell scan (listing is not a hot path).
    pub fn lots_for(&self, user: &str, groups: &std::collections::HashSet<String>) -> Vec<Lot> {
        let mut lots: Vec<Lot> = self
            .cells
            .for_each_cell(|_, c| {
                c.lots
                    .values()
                    .filter(|l| l.owner.usable_by(user, groups))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        lots.sort_by_key(|l| l.id);
        lots
    }

    /// Charges `bytes` for `path` against the user's active lots, spanning
    /// lots when one alone cannot hold the file (paper: "a file may span
    /// multiple lots if it cannot fit within a single one").
    ///
    /// Locks only the cells holding the user's candidate lots plus the
    /// path's span cell (ascending); the owner index is read and released
    /// *before* any cell is taken, and candidates are re-validated under
    /// the cell locks, so a lot terminated in between is simply skipped.
    pub fn charge_file(
        &self,
        user: &str,
        groups: &std::collections::HashSet<String>,
        path: &VPath,
        bytes: u64,
        now: u64,
    ) -> Result<(), LotError> {
        // Candidate ids from the owner index, guard dropped before any
        // cell lock (cells → owners is the only permitted nesting).
        let mut candidates: Vec<LotId> = Vec::new();
        {
            let ukey = format!("user:{}", user);
            if let Some(ids) = self.owners.lock(shard_hash(&ukey)).get(&ukey) {
                candidates.extend_from_slice(ids);
            }
        }
        for g in groups {
            let gkey = format!("group:{}", g);
            if let Some(ids) = self.owners.lock(shard_hash(&gkey)).get(&gkey) {
                candidates.extend_from_slice(ids);
            }
        }
        candidates.sort();
        candidates.dedup();

        let pidx = self.cell_of_path(path);
        let mut needed: Vec<usize> = candidates.iter().map(|id| self.cell_of(*id)).collect();
        needed.push(pidx);
        let mut guards = self.lock_cells(needed);

        // Re-validate under the cell locks.
        let mut usable: Vec<LotId> = Vec::new();
        let mut any: Option<LotId> = None;
        for id in &candidates {
            if let Some(lot) = cell_ref(&guards, self.cell_of(*id)).lots.get(id) {
                if lot.owner.usable_by(user, groups) {
                    any = Some(any.map_or(*id, |a| a.min(*id)));
                    if !lot.is_expired(now) {
                        usable.push(*id);
                    }
                }
            }
        }
        if usable.is_empty() {
            return Err(match any {
                // Only expired lots remain; writes are refused.
                Some(id) => LotError::Expired(id),
                None => LotError::NoLot(user.to_owned()),
            });
        }
        let available: u64 = usable
            .iter()
            .map(|id| cell_ref(&guards, self.cell_of(*id)).lots[id].free())
            .sum();
        if bytes > available {
            return Err(LotError::InsufficientSpace {
                requested: bytes,
                available,
            });
        }
        // Greedy span across lots in id order.
        let mut remaining = bytes;
        let mut charged: Vec<LotId> = Vec::new();
        for id in usable {
            if remaining == 0 {
                break;
            }
            let idx = self.cell_of(id);
            let lot = cell_mut(&mut guards, idx).lots.get_mut(&id).unwrap();
            let take = lot.free().min(remaining);
            if take == 0 {
                continue;
            }
            lot.used += take;
            lot.last_access = now;
            *lot.files.entry(path.clone()).or_insert(0) += take;
            remaining -= take;
            charged.push(id);
        }
        debug_assert_eq!(remaining, 0);
        let spans = cell_mut(&mut guards, pidx)
            .file_spans
            .entry(path.clone())
            .or_default();
        for id in charged {
            if !spans.contains(&id) {
                spans.push(id);
            }
        }
        for (_, g) in &guards {
            g.debug_assert_cell_invariants();
        }
        Ok(())
    }

    /// Releases all of a file's charges (on delete or truncate-to-zero).
    /// Returns the number of bytes released.
    ///
    /// Optimistic cross-cell protocol: peek the span under the path's
    /// cell alone, then lock the full needed set (ascending) and
    /// re-verify — if a concurrent charge widened the span, widen the
    /// lock set and retry.
    pub fn release_file(&self, path: &VPath) -> u64 {
        let pidx = self.cell_of_path(path);
        let mut needed: Vec<usize> = {
            let g = self.cells.lock_idx(pidx);
            let Some(span) = g.file_spans.get(path) else {
                return 0;
            };
            let mut n: Vec<usize> = span.iter().map(|id| self.cell_of(*id)).collect();
            n.push(pidx);
            n.sort_unstable();
            n.dedup();
            n
        };
        loop {
            let mut guards = self.lock_cells(needed.clone());
            let Some(span) = cell_ref(&guards, pidx).file_spans.get(path).cloned() else {
                return 0;
            };
            let mut now_needed: Vec<usize> = span.iter().map(|id| self.cell_of(*id)).collect();
            now_needed.push(pidx);
            now_needed.sort_unstable();
            now_needed.dedup();
            if now_needed.iter().any(|i| !needed.contains(i)) {
                needed = now_needed;
                continue; // guards drop; retry with the wider set
            }
            cell_mut(&mut guards, pidx).file_spans.remove(path);
            let mut released = 0;
            for id in span {
                let idx = self.cell_of(id);
                if let Some(lot) = cell_mut(&mut guards, idx).lots.get_mut(&id) {
                    if let Some(bytes) = lot.files.remove(path) {
                        lot.used = lot.used.saturating_sub(bytes);
                        released += bytes;
                    }
                }
            }
            // Releasing a span must leave every touched lot conserving
            // bytes (the expiry-dependent guarantee check needs a clock
            // and is re-verified on the next exact-path operation).
            for (_, g) in &guards {
                g.debug_assert_cell_invariants();
            }
            return released;
        }
    }

    /// Records an access to the lots backing `path` (for LRU reclamation).
    /// Advisory: the span is peeked under the path cell and each backing
    /// cell is updated one at a time.
    pub fn touch_file(&self, path: &VPath, now: u64) {
        let span = {
            let g = self.cells.lock_idx(self.cell_of_path(path));
            match g.file_spans.get(path) {
                Some(s) => s.clone(),
                None => return,
            }
        };
        let mut by_cell: Vec<usize> = span.iter().map(|id| self.cell_of(*id)).collect();
        by_cell.sort_unstable();
        by_cell.dedup();
        for idx in by_cell {
            let mut g = self.cells.lock_idx(idx);
            for id in span.iter().filter(|id| self.cell_of(**id) == idx) {
                if let Some(lot) = g.lots.get_mut(id) {
                    lot.last_access = now;
                }
            }
        }
    }

    /// Snapshot of every lot, for ad publication and `lot_list`.
    /// Sequential per-cell collection.
    pub fn all_lots(&self) -> Vec<Lot> {
        let mut lots: Vec<Lot> = self
            .cells
            .for_each_cell(|_, c| c.lots.values().cloned().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();
        lots.sort_by_key(|l| l.id);
        lots
    }

    // -- persistence ---------------------------------------------------------

    /// Serializes the lot table to a line format for persistence:
    ///
    /// ```text
    /// lot <id> <user|group> <name> <capacity> <expires> <last_access>
    /// file <lot-id> <bytes> <path>
    /// ```
    ///
    /// Reservations must survive appliance restarts for the guarantee to
    /// mean anything; the paper got this for free from kernel quotas.
    pub fn snapshot(&self) -> String {
        // All cells held (ascending) so the snapshot is a consistent cut.
        let guards = self.cells.lock_all();
        let mut lots: Vec<&Lot> = guards.iter().flat_map(|g| g.lots.values()).collect();
        lots.sort_by_key(|l| l.id);
        let mut out = String::new();
        for lot in lots {
            let (kind, name) = match &lot.owner {
                LotOwner::User(u) => ("user", u),
                LotOwner::Group(g) => ("group", g),
            };
            out.push_str(&format!(
                "lot {} {} {} {} {} {}\n",
                lot.id.0, kind, name, lot.capacity, lot.expires_at, lot.last_access
            ));
            for (path, bytes) in &lot.files {
                out.push_str(&format!("file {} {} {}\n", lot.id.0, bytes, path));
            }
        }
        out
    }

    /// Rebuilds a manager from a [`LotManager::snapshot`]. Unparseable
    /// lines are skipped (a corrupt line must not brick the appliance);
    /// lots that would violate the guarantee invariant against
    /// `total_capacity` *as of `now`* are dropped (expired lots count only
    /// their stored bytes, exactly as in the live invariant).
    pub fn restore(text: &str, total_capacity: u64, policy: ReclaimPolicy, now: u64) -> Self {
        Self::restore_with_shards(text, total_capacity, policy, now, DEFAULT_LOT_SHARDS)
    }

    /// [`LotManager::restore`] with an explicit stripe count.
    pub fn restore_with_shards(
        text: &str,
        total_capacity: u64,
        policy: ReclaimPolicy,
        now: u64,
        shards: usize,
    ) -> Self {
        let manager = Self::with_shards(total_capacity, policy, shards);
        {
            let mut guards: Vec<(usize, MutexGuard<'_, LotCell>)> =
                manager.cells.lock_all().into_iter().enumerate().collect();
            let mut max_id = 0u64;
            for line in text.lines() {
                let mut it = line.split_whitespace();
                match it.next() {
                    Some("lot") => {
                        let mut parse = || -> Option<Lot> {
                            let id = LotId(it.next()?.parse().ok()?);
                            let kind = it.next()?;
                            let name = it.next()?.to_owned();
                            let owner = match kind {
                                "user" => LotOwner::User(name),
                                "group" => LotOwner::Group(name),
                                _ => return None,
                            };
                            Some(Lot {
                                id,
                                owner,
                                capacity: it.next()?.parse().ok()?,
                                expires_at: it.next()?.parse().ok()?,
                                used: 0,
                                last_access: it.next()?.parse().ok()?,
                                files: BTreeMap::new(),
                            })
                        };
                        if let Some(lot) = parse() {
                            max_id = max_id.max(lot.id.0);
                            let key = owner_key(&lot.owner);
                            let id = lot.id;
                            cell_mut(&mut guards, manager.cell_of(id))
                                .lots
                                .insert(id, lot);
                            manager.owner_add(&key, id);
                        }
                    }
                    Some("file") => {
                        let parse = || -> Option<(LotId, u64, VPath)> {
                            let id = LotId(it.next()?.parse().ok()?);
                            let bytes: u64 = it.next()?.parse().ok()?;
                            // The path is the remainder (it may hold spaces
                            // only if clients sent them; VPath handles it).
                            let rest: Vec<&str> = it.collect();
                            let path = VPath::parse(&rest.join(" ")).ok()?;
                            Some((id, bytes, path))
                        };
                        if let Some((id, bytes, path)) = parse() {
                            let pidx = manager.cell_of_path(&path);
                            let mut charged = false;
                            if let Some(lot) =
                                cell_mut(&mut guards, manager.cell_of(id)).lots.get_mut(&id)
                            {
                                if lot.used + bytes <= lot.capacity {
                                    lot.used += bytes;
                                    *lot.files.entry(path.clone()).or_insert(0) += bytes;
                                    charged = true;
                                }
                            }
                            if charged {
                                let spans = cell_mut(&mut guards, pidx)
                                    .file_spans
                                    .entry(path)
                                    .or_default();
                                if !spans.contains(&id) {
                                    spans.push(id);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Enforce the guarantee invariant: drop newest lots until the
            // snapshot fits the (possibly reduced) capacity.
            loop {
                let (active_cap, best_used) = committed_parts(&guards, now);
                if active_cap + best_used <= total_capacity {
                    manager
                        .committed
                        // nestlint: allow(atomic-ordering): restore is single-threaded
                        .store(active_cap + best_used, Ordering::Relaxed);
                    break;
                }
                let victim = guards
                    .iter()
                    .flat_map(|(_, g)| g.lots.keys())
                    .max()
                    .copied();
                match victim {
                    Some(id) => {
                        let mut ev = Evicted::default();
                        manager.evict_locked(&mut guards, id, &mut ev);
                    }
                    None => break,
                }
            }
            // nestlint: allow(atomic-ordering): restore is single-threaded
            manager.next_id.store(max_id + 1, Ordering::Relaxed);
        }
        manager
    }

    /// Reclamation victim per policy, across every (held) cell.
    fn pick_victim(&self, guards: &[(usize, MutexGuard<'_, LotCell>)], now: u64) -> Option<LotId> {
        let candidates: Vec<&Lot> = guards
            .iter()
            .flat_map(|(_, g)| g.lots.values())
            .filter(|l| l.is_expired(now))
            .collect();
        match self.policy {
            ReclaimPolicy::ExpiredFirst => candidates
                .iter()
                .min_by_key(|l| (l.expires_at, l.id))
                .map(|l| l.id),
            ReclaimPolicy::LargestFirst => candidates
                .iter()
                .max_by_key(|l| (l.used, std::cmp::Reverse(l.id)))
                .map(|l| l.id),
            ReclaimPolicy::Lru => candidates
                .iter()
                .min_by_key(|l| (l.last_access, l.id))
                .map(|l| l.id),
        }
    }

    /// Evicts a lot. Caller holds **every** cell (a lot's files may have
    /// span records in any of them).
    fn evict_locked(
        &self,
        guards: &mut [(usize, MutexGuard<'_, LotCell>)],
        id: LotId,
        evicted: &mut Evicted,
    ) {
        let Some(lot) = cell_mut(guards, self.cell_of(id)).lots.remove(&id) else {
            return;
        };
        self.owner_remove(&owner_key(&lot.owner), id);
        evicted.lots.push(id);
        for (path, _bytes) in lot.files {
            // Remove this lot from the file's span; if it was the file's
            // only backing, the file loses its guarantee and is deleted.
            let pidx = self.cell_of_path(&path);
            let remaining = {
                let pc = cell_mut(guards, pidx);
                match pc.file_spans.get_mut(&path) {
                    None => continue,
                    Some(span) => {
                        span.retain(|l| *l != id);
                        span.clone()
                    }
                }
            };
            if remaining.is_empty() {
                cell_mut(guards, pidx).file_spans.remove(&path);
                evicted.files.push(path);
            } else {
                // Partially backed file: remaining spans keep their
                // bytes; the evicted portion is gone. Physical
                // truncation is the storage manager's job; we surface
                // the file as evicted so it is handled conservatively.
                evicted.files.push(path.clone());
                // Drop the file's remaining charges too: a partially
                // deleted file is useless.
                let rest = cell_mut(guards, pidx)
                    .file_spans
                    .remove(&path)
                    .unwrap_or_default();
                for other in rest {
                    if let Some(l) = cell_mut(guards, self.cell_of(other)).lots.get_mut(&other) {
                        if let Some(b) = l.files.remove(&path) {
                            l.used = l.used.saturating_sub(b);
                        }
                    }
                }
            }
        }
    }

    /// The full invariant suite; caller holds every cell.
    fn debug_assert_invariants(&self, guards: &[(usize, MutexGuard<'_, LotCell>)], now: u64) {
        if nest_check::enforcing() {
            let (active_cap, best_used) = committed_parts(guards, now);
            nest_check::invariant!(
                active_cap + best_used <= self.total_capacity,
                "lot guarantee: active capacity {} + best-effort used {} > total {}",
                active_cap,
                best_used,
                self.total_capacity
            );
            for (_, g) in guards {
                g.debug_assert_cell_invariants();
            }
        }
    }
}

/// (Σ active capacities, Σ best-effort used) across the held cells.
fn committed_parts(guards: &[(usize, MutexGuard<'_, LotCell>)], now: u64) -> (u64, u64) {
    let mut active_cap = 0u64;
    let mut best_used = 0u64;
    for (_, g) in guards {
        for l in g.lots.values() {
            if l.is_expired(now) {
                best_used += l.used;
            } else {
                active_cap += l.capacity;
            }
        }
    }
    (active_cap, best_used)
}

/// The guard for cell `idx` in a held (index, guard) set, mutably.
fn cell_mut<'a, 'g>(
    guards: &'a mut [(usize, MutexGuard<'g, LotCell>)],
    idx: usize,
) -> &'a mut LotCell {
    &mut guards
        .iter_mut()
        .find(|(i, _)| *i == idx)
        .expect("cell locked")
        .1
}

/// The guard for cell `idx` in a held (index, guard) set, shared.
fn cell_ref<'a, 'g>(guards: &'a [(usize, MutexGuard<'g, LotCell>)], idx: usize) -> &'a LotCell {
    &guards
        .iter()
        .find(|(i, _)| *i == idx)
        .expect("cell locked")
        .1
}

impl LotCell {
    /// Byte conservation for every lot in this cell: committed bytes
    /// equal the sum of per-file charges, and never exceed capacity.
    /// (The global guarantee inequality needs every cell and a clock; it
    /// is checked on the all-cells paths.)
    fn debug_assert_cell_invariants(&self) {
        if nest_check::enforcing() {
            for lot in self.lots.values() {
                nest_check::invariant!(
                    lot.used <= lot.capacity,
                    "lot {} used {} exceeds capacity {}",
                    lot.id,
                    lot.used,
                    lot.capacity
                );
                let file_sum: u64 = lot.files.values().sum();
                nest_check::invariant!(
                    lot.used == file_sum,
                    "lot {} byte conservation: used {} != sum(file charges) {}",
                    lot.id,
                    lot.used,
                    file_sum
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn no_groups() -> HashSet<String> {
        HashSet::new()
    }

    fn user(name: &str) -> LotOwner {
        LotOwner::User(name.to_owned())
    }

    #[test]
    fn create_within_capacity() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, ev) = lm.create(user("alice"), 400, 100, 0).unwrap();
        assert!(ev.lots.is_empty());
        let (b, _) = lm.create(user("bob"), 600, 100, 0).unwrap();
        assert_ne!(a, b);
        assert_eq!(lm.guaranteed(0), 1000);
        assert_eq!(lm.reservable(0), 0);
    }

    #[test]
    fn create_beyond_capacity_fails() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(user("a"), 800, 100, 0).unwrap();
        match lm.create(user("b"), 300, 100, 0) {
            Err(LotError::InsufficientSpace {
                requested: 300,
                available: 200,
            }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn charge_and_release_file() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("alice"), 500, 100, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/f"), 200, 1)
            .unwrap();
        assert_eq!(lm.stat(id).unwrap().used, 200);
        assert_eq!(lm.release_file(&vp("/f")), 200);
        assert_eq!(lm.stat(id).unwrap().used, 0);
        // Double release is a no-op.
        assert_eq!(lm.release_file(&vp("/f")), 0);
    }

    #[test]
    fn file_spans_multiple_lots() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("alice"), 300, 100, 0).unwrap();
        let (b, _) = lm.create(user("alice"), 300, 100, 0).unwrap();
        // 500 bytes does not fit in either lot alone.
        lm.charge_file("alice", &no_groups(), &vp("/big"), 500, 1)
            .unwrap();
        assert_eq!(lm.stat(a).unwrap().used, 300);
        assert_eq!(lm.stat(b).unwrap().used, 200);
        assert_eq!(lm.release_file(&vp("/big")), 500);
    }

    #[test]
    fn overfull_single_lot_rejected_even_with_spare_elsewhere() {
        // The paper's noted quota-implementation caveat does NOT apply to
        // NeST-managed lots: spanning handles it. But a user with no active
        // lot capacity at all must be refused.
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(user("alice"), 100, 100, 0).unwrap();
        match lm.charge_file("alice", &no_groups(), &vp("/f"), 150, 1) {
            Err(LotError::InsufficientSpace {
                requested: 150,
                available: 100,
            }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn no_lot_no_write() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        match lm.charge_file("ghost", &no_groups(), &vp("/f"), 1, 0) {
            Err(LotError::NoLot(u)) => assert_eq!(u, "ghost"),
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn expired_lot_refuses_writes_but_keeps_files() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("alice"), 500, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/f"), 100, 1)
            .unwrap();
        // Past expiry: writes fail, data still accounted.
        match lm.charge_file("alice", &no_groups(), &vp("/g"), 1, 11) {
            Err(LotError::Expired(e)) => assert_eq!(e, id),
            other => panic!("unexpected: {:?}", other),
        }
        assert_eq!(lm.stat(id).unwrap().used, 100);
    }

    #[test]
    fn best_effort_space_reclaimed_for_new_lot() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("alice"), 900, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/old"), 900, 1)
            .unwrap();
        // At t=20 the lot is best-effort; its 900 bytes linger...
        assert_eq!(lm.stat(old).unwrap().used, 900);
        // ...until bob needs a 500-byte guarantee.
        let (_, evicted) = lm.create(user("bob"), 500, 100, 20).unwrap();
        assert_eq!(evicted.lots, vec![old]);
        assert_eq!(evicted.files, vec![vp("/old")]);
        assert!(lm.stat(old).is_err());
    }

    #[test]
    fn expired_lot_untouched_when_space_suffices() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("alice"), 300, 10, 0).unwrap();
        lm.charge_file("alice", &no_groups(), &vp("/keep"), 300, 1)
            .unwrap();
        let (_, evicted) = lm.create(user("bob"), 500, 100, 20).unwrap();
        assert!(evicted.lots.is_empty());
        assert_eq!(lm.stat(old).unwrap().used, 300);
    }

    #[test]
    fn reclaim_policy_largest_first() {
        let lm = LotManager::new(1000, ReclaimPolicy::LargestFirst);
        let (small, _) = lm.create(user("a"), 200, 10, 0).unwrap();
        let (big, _) = lm.create(user("b"), 700, 10, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/s"), 100, 1)
            .unwrap();
        lm.charge_file("b", &no_groups(), &vp("/b"), 600, 1)
            .unwrap();
        // Both expired at t=20. Need 400: evicting the largest (600) is
        // enough; the small one survives.
        let (_, ev) = lm.create(user("c"), 400, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![big]);
        assert!(lm.stat(small).is_ok());
    }

    #[test]
    fn reclaim_policy_lru() {
        let lm = LotManager::new(1000, ReclaimPolicy::Lru);
        let (a, _) = lm.create(user("a"), 450, 10, 0).unwrap();
        let (b, _) = lm.create(user("b"), 450, 10, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/a"), 450, 1)
            .unwrap();
        lm.charge_file("b", &no_groups(), &vp("/b"), 450, 2)
            .unwrap();
        // Touch a's file later: b becomes the LRU victim.
        lm.touch_file(&vp("/a"), 5);
        let (_, ev) = lm.create(user("c"), 400, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![b]);
        assert!(lm.stat(a).is_ok());
    }

    #[test]
    fn renew_extends_active_and_reactivates_expired() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("a"), 500, 10, 0).unwrap();
        lm.renew(id, 10, 5).unwrap();
        assert_eq!(lm.stat(id).unwrap().expires_at, 20);
        // Expired at t=30; renewal re-activates since space is free.
        lm.renew(id, 50, 30).unwrap();
        assert_eq!(lm.stat(id).unwrap().expires_at, 80);
        assert!(!lm.stat(id).unwrap().is_expired(40));
    }

    #[test]
    fn renew_expired_fails_when_space_promised_away() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (old, _) = lm.create(user("a"), 600, 10, 0).unwrap();
        // old expires; bob grabs the space.
        lm.create(user("b"), 600, 100, 20).unwrap();
        match lm.renew(old, 100, 21) {
            Err(LotError::InsufficientSpace { .. }) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn terminate_returns_files_for_deletion() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (id, _) = lm.create(user("a"), 500, 100, 0).unwrap();
        lm.charge_file("a", &no_groups(), &vp("/f1"), 100, 1)
            .unwrap();
        lm.charge_file("a", &no_groups(), &vp("/f2"), 100, 1)
            .unwrap();
        let ev = lm.terminate(id).unwrap();
        assert_eq!(ev.lots, vec![id]);
        let mut files = ev.files.clone();
        files.sort();
        assert_eq!(files, vec![vp("/f1"), vp("/f2")]);
        assert!(matches!(lm.terminate(id), Err(LotError::NoSuchLot(_))));
    }

    #[test]
    fn group_lot_usable_by_members() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(LotOwner::Group("wind".into()), 500, 100, 0)
            .unwrap();
        let mut groups = HashSet::new();
        groups.insert("wind".to_owned());
        lm.charge_file("alice", &groups, &vp("/shared"), 100, 1)
            .unwrap();
        // Non-member refused.
        match lm.charge_file("mallory", &no_groups(), &vp("/x"), 1, 1) {
            Err(LotError::NoLot(_)) => {}
            other => panic!("unexpected: {:?}", other),
        }
    }

    #[test]
    fn spanned_file_fully_dropped_when_one_backing_lot_evicted() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("u"), 300, 10, 0).unwrap();
        let (_b, _) = lm.create(user("u"), 300, 1000, 0).unwrap();
        lm.charge_file("u", &no_groups(), &vp("/span"), 500, 1)
            .unwrap();
        // Lot a expires; creating a big new lot must evict it, and the
        // spanned file is surfaced for deletion with all charges dropped.
        let (_, ev) = lm.create(user("v"), 500, 100, 20).unwrap();
        assert_eq!(ev.lots, vec![a]);
        assert_eq!(ev.files, vec![vp("/span")]);
        assert_eq!(lm.release_file(&vp("/span")), 0);
    }

    #[test]
    fn explicit_shard_counts_preserve_semantics() {
        // The same scenario must behave identically at 1 shard (the
        // ablation) and at a count that forces cross-cell spans.
        for shards in [1usize, 4] {
            let lm = LotManager::with_shards(1000, ReclaimPolicy::ExpiredFirst, shards);
            assert_eq!(lm.shards(), shards);
            let (a, _) = lm.create(user("u"), 300, 100, 0).unwrap();
            let (b, _) = lm.create(user("u"), 300, 100, 0).unwrap();
            // Ids 1 and 2 land in different cells at 4 shards; the span
            // crosses them.
            lm.charge_file("u", &no_groups(), &vp("/big"), 500, 1)
                .unwrap();
            assert_eq!(lm.stat(a).unwrap().used, 300);
            assert_eq!(lm.stat(b).unwrap().used, 200);
            assert_eq!(lm.release_file(&vp("/big")), 500);
            assert_eq!(lm.stat(a).unwrap().used, 0);
            assert_eq!(lm.guaranteed(1), 600);
        }
    }

    #[test]
    fn concurrent_create_terminate_never_overcommits() {
        use std::sync::Arc;
        let lm = Arc::new(LotManager::with_shards(
            1000,
            ReclaimPolicy::ExpiredFirst,
            4,
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    // 8 threads × 100 bytes ≤ 1000: admission must never
                    // spuriously fail (the sloppy bound may divert to the
                    // exact path, but the exact path must admit).
                    let (id, _) = lm.create(user(&format!("u{}", t)), 100, 100, 0).unwrap();
                    lm.terminate(id).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.all_lots().len(), 0);
        assert_eq!(lm.reservable(0), 1000);
        // The sloppy bound self-corrects on the exact paths: a full-size
        // lot is admissible again after the churn.
        let (id, _) = lm.create(user("final"), 1000, 100, 0).unwrap();
        lm.terminate(id).unwrap();
    }

    #[test]
    fn lots_for_lists_in_id_order() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm.create(user("u"), 100, 100, 0).unwrap();
        let (b, _) = lm.create(user("u"), 100, 100, 0).unwrap();
        lm.create(user("other"), 100, 100, 0).unwrap();
        let mine = lm.lots_for("u", &no_groups());
        assert_eq!(mine.iter().map(|l| l.id).collect::<Vec<_>>(), vec![a, b]);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn snapshot_restore_roundtrip() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        let (a, _) = lm
            .create(LotOwner::User("alice".into()), 400, 100, 5)
            .unwrap();
        let (b, _) = lm
            .create(LotOwner::Group("wind".into()), 300, 200, 6)
            .unwrap();
        let groups: HashSet<String> = ["wind".to_owned()].into();
        lm.charge_file(
            "alice",
            &HashSet::new(),
            &VPath::parse("/f1").unwrap(),
            150,
            7,
        )
        .unwrap();
        lm.charge_file("bob", &groups, &VPath::parse("/f2").unwrap(), 100, 8)
            .unwrap();

        let snap = lm.snapshot();
        let restored = LotManager::restore(&snap, 1000, ReclaimPolicy::ExpiredFirst, 0);

        let la = restored.stat(a).unwrap();
        assert_eq!(la.capacity, 400);
        assert_eq!(la.used, 150);
        assert_eq!(la.expires_at, 105);
        let lb = restored.stat(b).unwrap();
        assert_eq!(lb.owner, LotOwner::Group("wind".into()));
        assert_eq!(lb.used, 100);
        // File spans survive: releasing /f1 frees lot a.
        assert_eq!(restored.release_file(&VPath::parse("/f1").unwrap()), 150);
        assert_eq!(restored.stat(a).unwrap().used, 0);
        // Fresh ids continue past the snapshot's.
        let (c, _) = restored
            .create(LotOwner::User("carol".into()), 100, 10, 0)
            .unwrap();
        assert!(c.0 > b.0);
    }

    #[test]
    fn restore_skips_garbage_lines() {
        let text = "lot 1 user alice 100 50 0\nTOTALLY BROKEN\nfile 1 40 /x\nfile 99 10 /orphan\n";
        let lm = LotManager::restore(text, 1000, ReclaimPolicy::ExpiredFirst, 0);
        assert_eq!(lm.stat(LotId(1)).unwrap().used, 40);
        assert_eq!(lm.all_lots().len(), 1);
    }

    #[test]
    fn restore_enforces_reduced_capacity() {
        let lm = LotManager::new(1000, ReclaimPolicy::ExpiredFirst);
        lm.create(LotOwner::User("a".into()), 600, 100, 0).unwrap();
        lm.create(LotOwner::User("b".into()), 350, 100, 0).unwrap();
        let snap = lm.snapshot();
        // Restore onto a smaller disk: the newest lot is dropped.
        let small = LotManager::restore(&snap, 700, ReclaimPolicy::ExpiredFirst, 0);
        assert_eq!(small.all_lots().len(), 1);
        assert_eq!(small.all_lots()[0].capacity, 600);
    }

    #[test]
    fn empty_snapshot_restores_empty() {
        let lm = LotManager::restore("", 500, ReclaimPolicy::Lru, 0);
        assert!(lm.all_lots().is_empty());
        assert_eq!(lm.total_capacity(), 500);
    }
}
