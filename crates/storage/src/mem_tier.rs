//! The actuating memory tier: a bounded, lot-aware RAM cache under the
//! storage manager.
//!
//! The paper's gray-box cache model only *predicts* OS cache residency to
//! inform scheduling. This module closes the loop: NeST manages its own
//! user-level memory tier (a small HSM in the spirit of CASTOR's disk
//! front / tape back, here RAM front / disk back) so that a hot working
//! set keeps serving at memory speed even while cold scan traffic churns
//! the OS page cache underneath it.
//!
//! Design points:
//!
//! * **Strict byte accounting.** Resident bytes never exceed the
//!   configured budget; `ram_tier_bytes(0)` disables the tier entirely
//!   and is the byte-identical ablation baseline.
//! * **Model-driven promotion.** An object is promoted after its
//!   `PROMOTE_HITS`-th access inside `PROMOTE_WINDOW_SECS`; when the
//!   transfer layer's [`CacheModel`] already predicts the object
//!   resident (a residency *hint*), the first access suffices — the
//!   model has effectively pre-counted the hits.
//! * **Lot-aware demotion.** Entries backed by an unexpired (guaranteed)
//!   lot are demoted only under *global* pressure — when the guaranteed
//!   working set alone no longer fits the budget. Best-effort traffic can
//!   never push a guaranteed resident out.
//! * **Large objects.** Objects larger than the per-object cap keep only
//!   a head *segment* resident; chunk reads inside the segment are served
//!   from RAM, the tail falls through to the backend. Only fully
//!   resident objects are served through the transfer layer's
//!   `MemSource`.
//! * **Write policies.** `write_through` (default) invalidates the
//!   resident copy and lets the next reads re-promote; per-lot opt-in
//!   `write_back` absorbs writes into the tier and defers the backend
//!   write until dirty bytes exceed their bound or the appliance drains.
//!   Dirty bytes are lost on crash — see DESIGN.md §15 for the honest
//!   crash-consistency statement.
//!
//! Locking: the tier state sits behind one mutex, `storage.memtier`,
//! rank 335 — above the lot table (300) and below the handle cache (340)
//! per the DESIGN.md §11 order. The tier never calls into the lot manager
//! or the backend while holding its lock: lot classification is computed
//! by the caller beforehand, and promotion/flush I/O happens outside.
//!
//! In front of the state sits a striped **presence index**
//! (`storage.memtier.index`, rank 333): a conservative set of paths that
//! *may* be resident. Cold scan traffic — the dominant case under churn —
//! asks the index first and skips the state mutex entirely when the
//! answer is a definitive "absent". The index is append-only on the hot
//! path (entries are noted *before* they become resident and never
//! removed on demotion/eviction), so it can report false positives —
//! which merely fall through to the state lock — but never a false
//! negative that would skip a resident (possibly dirty) copy. A per-cell
//! cap with an overflow flag bounds its memory: a saturated cell answers
//! "maybe" for everything, degrading to exactly the pre-index behavior.
//! An index cell is never held concurrently with the state lock.

use crate::namespace::VPath;
use nest_obs::metrics::{Counter, Gauge};
use nest_obs::Obs;
use parking_lot::{shard_hash, Mutex, ShardedMutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Promote an object on this many accesses inside the window.
pub const PROMOTE_HITS: u32 = 2;

/// The access-counting window (seconds of the storage clock).
pub const PROMOTE_WINDOW_SECS: u64 = 300;

/// How a lot's writes interact with the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Writes go to the backend immediately; any resident tier copy is
    /// invalidated (the next hot reads re-promote the new bytes).
    #[default]
    WriteThrough,
    /// Writes are absorbed into the tier and marked dirty; the backend
    /// copy is deferred until the dirty bound is hit or the appliance
    /// drains. Bytes not yet flushed are lost on crash.
    WriteBack,
}

/// A point-in-time copy of the tier's counters, for tests and ads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTierStats {
    /// Resident bytes (clean + dirty).
    pub bytes: u64,
    /// Resident objects (whole or head segment).
    pub objects: u64,
    /// Accesses served (or servable) from the tier.
    pub hits: u64,
    /// Accesses that fell through to the backend.
    pub misses: u64,
    /// Objects loaded into the tier.
    pub promotions: u64,
    /// Cold entries dropped to make room under the byte budget.
    pub demotions: u64,
    /// Entries removed for coherence (write/remove/rename/truncate).
    pub evictions: u64,
    /// Resident bytes not yet written to the backend.
    pub dirty_bytes: u64,
    /// Dirty entries persisted to the backend.
    pub writeback_flushes: u64,
}

/// A dirty entry handed to the caller for persistence. The tier keeps the
/// entry resident; the caller writes `data` to the backend and then calls
/// [`MemTier::mark_clean`] with the same `version` (a newer racing write
/// keeps the entry dirty).
#[derive(Debug, Clone)]
pub struct DirtyObject {
    /// Virtual path of the object.
    pub path: VPath,
    /// Full object bytes at snapshot time.
    pub data: Arc<Vec<u8>>,
    /// Dirty-write version the snapshot reflects.
    pub version: u64,
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    /// True when `data` holds the whole object (vs a head segment).
    full: bool,
    /// Logical object size (== data.len() when `full`).
    object_size: u64,
    dirty: bool,
    /// Incremented on every dirty write; guards `mark_clean` races.
    version: u64,
    guaranteed: bool,
    last_tick: u64,
    /// Hits served since promotion — the coldness key for demotion.
    /// Freshly promoted entries start at 0, so a one-shot scan that
    /// promotes its tail can only displace other scan entries, never a
    /// resident with a demonstrated hit history (scan resistance).
    hit_count: u64,
}

#[derive(Debug, Clone, Copy)]
struct AccessStat {
    count: u32,
    window_start: u64,
}

struct TierState {
    entries: HashMap<VPath, Entry>,
    access: HashMap<VPath, AccessStat>,
    tick: u64,
    bytes: u64,
    dirty_bytes: u64,
    hits: u64,
    misses: u64,
    promotions: u64,
    demotions: u64,
    evictions: u64,
    writeback_flushes: u64,
}

/// Instrument handles, resolved once at [`MemTier::register_obs`] and
/// updated at mutation time (same pattern as the handle cache).
struct Instruments {
    bytes: Arc<Gauge>,
    objects: Arc<Gauge>,
    dirty_bytes: Arc<Gauge>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    promotions: Arc<Counter>,
    demotions: Arc<Counter>,
    evictions: Arc<Counter>,
    writeback_flushes: Arc<Counter>,
}

/// One stripe of the presence index: paths that may be resident. See the
/// module docs for the conservative-append protocol.
struct PresenceCell {
    present: HashSet<VPath>,
    /// Set when the cell hit [`PRESENCE_CELL_CAP`]; a saturated cell
    /// answers "maybe" for every path.
    overflow: bool,
}

/// Per-cell bound on the presence index (paths, not bytes). Generous —
/// the index exists to make *misses* cheap, and ~64k paths per cell cover
/// far more objects than a RAM tier ever holds resident.
const PRESENCE_CELL_CAP: usize = 64 * 1024;

/// The bounded in-memory storage tier. `budget == 0` disables every code
/// path — the ablation baseline does no bookkeeping at all.
pub struct MemTier {
    budget: u64,
    /// Largest object cached whole; bigger objects keep a head segment of
    /// exactly this size. Default: budget / 4.
    max_object_bytes: u64,
    /// Bound on deferred (dirty) bytes. Default: budget / 4.
    max_dirty_bytes: u64,
    state: Mutex<TierState>,
    /// Striped may-be-resident filter consulted before `state` on read
    /// paths; never held concurrently with the state lock.
    index: ShardedMutex<PresenceCell>,
    instruments: Mutex<Option<Instruments>>,
}

impl std::fmt::Debug for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTier")
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// Default stripe count for the presence index (matching
/// [`crate::lot::DEFAULT_LOT_SHARDS`]).
pub const DEFAULT_MEM_TIER_SHARDS: usize = crate::lot::DEFAULT_LOT_SHARDS;

impl MemTier {
    /// Creates a tier bounded to `budget` bytes (0 disables), with the
    /// presence index striped [`DEFAULT_MEM_TIER_SHARDS`] ways.
    pub fn new(budget: u64) -> Self {
        Self::with_shards(budget, DEFAULT_MEM_TIER_SHARDS)
    }

    /// Creates a tier with an explicit presence-index stripe count (`1` =
    /// the single-cell ablation).
    pub fn with_shards(budget: u64, shards: usize) -> Self {
        Self {
            budget,
            max_object_bytes: (budget / 4).max(1),
            max_dirty_bytes: (budget / 4).max(1),
            state: Mutex::named(
                "storage.memtier",
                335,
                TierState {
                    entries: HashMap::new(),
                    access: HashMap::new(),
                    tick: 0,
                    bytes: 0,
                    dirty_bytes: 0,
                    hits: 0,
                    misses: 0,
                    promotions: 0,
                    demotions: 0,
                    evictions: 0,
                    writeback_flushes: 0,
                },
            ),
            index: ShardedMutex::new("storage.memtier.index", 333, shards, |_| PresenceCell {
                present: HashSet::new(),
                overflow: false,
            }),
            instruments: Mutex::named("storage.memtier.instruments", 336, None),
        }
    }

    /// Whether `path` may have a resident copy. A definitive `false`
    /// means the read paths can skip the state lock; `true` means "ask
    /// the state" (false positives are expected — see module docs).
    fn maybe_resident(&self, path: &VPath) -> bool {
        let cell = self.index.lock(shard_hash(path));
        cell.overflow || cell.present.contains(path)
    }

    /// Notes that `path` is about to become resident. MUST be called
    /// before the entry is inserted into the state (and the index cell
    /// released before the state lock is taken) so the index can never
    /// miss a resident.
    fn note_present(&self, path: &VPath) {
        let mut cell = self.index.lock(shard_hash(path));
        if cell.overflow {
            return;
        }
        if cell.present.len() >= PRESENCE_CELL_CAP {
            cell.overflow = true;
            cell.present = HashSet::new(); // saturated: "maybe" for all
            return;
        }
        cell.present.insert(path.clone());
    }

    /// Overrides the per-object residency cap (for tests).
    pub fn with_max_object_bytes(mut self, cap: u64) -> Self {
        self.max_object_bytes = cap.max(1);
        self
    }

    /// Overrides the dirty-byte bound (for tests).
    pub fn with_max_dirty_bytes(mut self, cap: u64) -> Self {
        self.max_dirty_bytes = cap.max(1);
        self
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Largest object cached whole; bigger objects keep a head segment of
    /// exactly this many bytes.
    pub fn max_object_bytes(&self) -> u64 {
        self.max_object_bytes
    }

    /// Whether the tier participates at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Registers the `memtier.*` instruments and back-fills any counts
    /// accumulated before registration.
    pub fn register_obs(&self, obs: &Obs) {
        if !self.enabled() {
            return;
        }
        let inst = Instruments {
            bytes: obs.metrics.gauge("memtier.bytes"),
            objects: obs.metrics.gauge("memtier.objects"),
            dirty_bytes: obs.metrics.gauge("memtier.dirty_bytes"),
            hits: obs.metrics.counter("memtier.hits"),
            misses: obs.metrics.counter("memtier.misses"),
            promotions: obs.metrics.counter("memtier.promotions"),
            demotions: obs.metrics.counter("memtier.demotions"),
            evictions: obs.metrics.counter("memtier.evictions"),
            writeback_flushes: obs.metrics.counter("memtier.writeback_flushes"),
        };
        let st = self.state.lock();
        inst.bytes.set(st.bytes as i64);
        inst.objects.set(st.entries.len() as i64);
        inst.dirty_bytes.set(st.dirty_bytes as i64);
        inst.hits.add(st.hits);
        inst.misses.add(st.misses);
        inst.promotions.add(st.promotions);
        inst.demotions.add(st.demotions);
        inst.evictions.add(st.evictions);
        inst.writeback_flushes.add(st.writeback_flushes);
        drop(st);
        *self.instruments.lock() = Some(inst);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemTierStats {
        if !self.enabled() {
            return MemTierStats::default();
        }
        let st = self.state.lock();
        MemTierStats {
            bytes: st.bytes,
            objects: st.entries.len() as u64,
            hits: st.hits,
            misses: st.misses,
            promotions: st.promotions,
            demotions: st.demotions,
            evictions: st.evictions,
            dirty_bytes: st.dirty_bytes,
            writeback_flushes: st.writeback_flushes,
        }
    }

    /// Records a GET-granular access to `path` and decides promotion.
    /// Counts a hit when the object is already fully resident, a miss
    /// otherwise. Returns `true` when the caller should load the object
    /// into the tier now: on the [`PROMOTE_HITS`]-th access inside the
    /// window, or immediately when `resident_hint` says the cache model
    /// already predicts the object hot.
    pub fn record_access(&self, path: &VPath, size: u64, resident_hint: bool, now: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.entries.get_mut(path) {
            e.last_tick = tick;
            if e.full {
                e.hit_count += 1;
                st.hits += 1;
                self.with_instruments(|i| i.hits.inc());
                return false;
            }
        }
        st.misses += 1;
        self.with_instruments(|i| i.misses.inc());
        if size == 0 || size > self.budget {
            return false;
        }
        let stat = st.access.entry(path.clone()).or_insert(AccessStat {
            count: 0,
            window_start: now,
        });
        if now.saturating_sub(stat.window_start) > PROMOTE_WINDOW_SECS {
            stat.count = 0;
            stat.window_start = now;
        }
        stat.count += 1;
        let promote = stat.count >= PROMOTE_HITS || resident_hint;
        if promote {
            st.access.remove(path);
        } else if st.access.len() > 64 * 1024 {
            // Bound the access table: drop stats whose window lapsed.
            st.access
                .retain(|_, s| now.saturating_sub(s.window_start) <= PROMOTE_WINDOW_SECS);
        }
        promote
    }

    /// The whole object, when fully resident — the transfer layer wraps
    /// this in a `MemSource`. Does not count a hit ([`record_access`]
    /// already did).
    pub fn object(&self, path: &VPath) -> Option<Arc<Vec<u8>>> {
        if !self.enabled() || !self.maybe_resident(path) {
            return None;
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let e = st.entries.get_mut(path)?;
        if !e.full {
            return None;
        }
        e.last_tick = tick;
        Some(Arc::clone(&e.data))
    }

    /// Serves a chunk read from the resident copy (whole object or head
    /// segment). Returns `None` when the range is not resident — the
    /// caller falls through to the backend.
    pub fn read_at(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> Option<usize> {
        if !self.enabled() || !self.maybe_resident(path) {
            return None;
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let e = st.entries.get_mut(path)?;
        let data = &e.data;
        if offset >= e.object_size {
            // Past logical EOF of a fully known object: a definitive 0.
            if e.full {
                e.last_tick = tick;
                return Some(0);
            }
            return None;
        }
        let off = offset as usize;
        if off >= data.len() {
            return None; // tail beyond the resident segment
        }
        let n = buf.len().min(data.len() - off);
        if !e.full && off + n == data.len() && (off + n) as u64 != e.object_size {
            // Segment boundary mid-buffer: serving a short read here would
            // look like EOF to chunk loops. Fall through whole.
            return None;
        }
        buf[..n].copy_from_slice(&data[off..off + n]);
        e.last_tick = tick;
        Some(n)
    }

    /// The logical size of a dirty resident object (the backend's stat is
    /// stale until flush).
    pub fn dirty_len(&self, path: &VPath) -> Option<u64> {
        if !self.enabled() || !self.maybe_resident(path) {
            return None;
        }
        let st = self.state.lock();
        let e = st.entries.get(path)?;
        if e.dirty {
            Some(e.object_size)
        } else {
            None
        }
    }

    /// Loads a clean object (or head segment when `data.len()` is below
    /// `object_size`) into the tier. `guaranteed` classifies the entry for
    /// demotion. Returns dirty victims the caller must persist; clean
    /// victims are simply dropped. The insert is refused (no-op) when
    /// room cannot be made without violating the lot rule: best-effort
    /// entries never demote guaranteed residents.
    pub fn insert(
        &self,
        path: &VPath,
        data: Vec<u8>,
        object_size: u64,
        guaranteed: bool,
    ) -> Vec<DirtyObject> {
        if !self.enabled() || data.len() as u64 > self.budget {
            return Vec::new();
        }
        let full = data.len() as u64 == object_size;
        // Index first (cell released before the state lock): a reader that
        // sees the entry resident must already see it in the index.
        self.note_present(path);
        let mut st = self.state.lock();
        let mut out = Vec::new();
        // Replacing an existing entry: a dirty old copy must still reach
        // the backend (the caller loaded `data` from it or supersedes it).
        if let Some(old) = st.entries.remove(path) {
            st.bytes -= old.data.len() as u64;
            if old.dirty {
                st.dirty_bytes -= old.data.len() as u64;
            }
        }
        if !Self::make_room(
            &mut st,
            data.len() as u64,
            self.budget,
            guaranteed,
            &mut out,
        ) {
            self.sync_gauges(&st);
            return out;
        }
        st.tick += 1;
        let tick = st.tick;
        st.bytes += data.len() as u64;
        st.promotions += 1;
        self.with_instruments(|i| i.promotions.inc());
        st.entries.insert(
            path.clone(),
            Entry {
                data: Arc::new(data),
                full,
                object_size,
                dirty: false,
                version: 0,
                guaranteed,
                last_tick: tick,
                hit_count: 0,
            },
        );
        self.sync_gauges(&st);
        out
    }

    /// Absorbs a write-back write at `offset`. The resident copy becomes
    /// (or stays) dirty; a non-resident object starts from `base` (the
    /// current backend contents, loaded by the caller). Returns dirty
    /// victims to persist when the write pushed dirty bytes past their
    /// bound, or when room had to be made. `None` means the tier refused
    /// the write (over budget / lot rule) and the caller must write
    /// through instead.
    pub fn write_back(
        &self,
        path: &VPath,
        offset: u64,
        data: &[u8],
        base: Option<Vec<u8>>,
        guaranteed: bool,
    ) -> Option<Vec<DirtyObject>> {
        if !self.enabled() {
            return None;
        }
        let end = offset + data.len() as u64;
        // Index first (cell released before the state lock): `dirty_len`
        // must never be able to skip a dirty resident.
        self.note_present(path);
        let mut st = self.state.lock();
        let mut out = Vec::new();
        st.tick += 1;
        let tick = st.tick;

        // Sizing first, before any state changes: a full resident copy
        // continues from its current length, anything else from `base`
        // (the caller-loaded backend contents).
        let have_full = st.entries.get(path).is_some_and(|e| e.full);
        let cur_len = if have_full {
            st.entries.get(path).map_or(0, |e| e.data.len() as u64)
        } else {
            base.as_ref()?.len() as u64
        };
        let new_len = cur_len.max(end);
        if new_len > self.max_object_bytes {
            return None; // too big to hold whole; write through
        }

        let old = st.entries.remove(path);
        let (old_len, old_dirty, version) = match &old {
            Some(old) => (old.data.len() as u64, old.dirty, old.version),
            None => (0, false, 0),
        };
        st.bytes -= old_len;
        if old_dirty {
            st.dirty_bytes -= old_len;
        }
        if !Self::make_room(&mut st, new_len, self.budget, guaranteed, &mut out) {
            // Refused: restore the prior resident copy (it may be dirty —
            // those bytes must not vanish) and let the caller write through.
            if let Some(old) = old {
                st.bytes += old_len;
                if old_dirty {
                    st.dirty_bytes += old_len;
                }
                st.entries.insert(path.clone(), old);
            }
            self.sync_gauges(&st);
            return None;
        }
        // Take the buffer without copying: a full resident is mutated in
        // place unless a reader still holds its Arc (then one clone pays
        // for the snapshot being served); otherwise start from `base`.
        // Cloning per chunk here would make a streamed write-back PUT
        // quadratic in the object size.
        let mut buf = match (old, base) {
            (Some(o), _) if o.full => {
                Arc::try_unwrap(o.data).unwrap_or_else(|shared| shared.as_ref().clone())
            }
            (_, Some(b)) => b,
            _ => {
                nest_check::invariant!(false, "non-resident write-back requires a base");
                Vec::new()
            }
        };
        if buf.len() < end as usize {
            buf.resize(end as usize, 0);
        }
        buf[offset as usize..end as usize].copy_from_slice(data);
        st.bytes += new_len;
        st.dirty_bytes += new_len;
        st.entries.insert(
            path.clone(),
            Entry {
                data: Arc::new(buf),
                full: true,
                object_size: new_len,
                dirty: true,
                version: version + 1,
                guaranteed,
                last_tick: tick,
                hit_count: 0,
            },
        );
        // Dirty bound: snapshot the oldest other dirty entries for flush.
        if st.dirty_bytes > self.max_dirty_bytes {
            let mut dirty: Vec<(VPath, u64)> = st
                .entries
                .iter()
                .filter(|(p, e)| e.dirty && *p != path)
                .map(|(p, e)| (p.clone(), e.last_tick))
                .collect();
            dirty.sort_by_key(|(_, t)| *t);
            let mut excess = st.dirty_bytes.saturating_sub(self.max_dirty_bytes);
            for (p, _) in dirty {
                if excess == 0 {
                    break;
                }
                let e = &st.entries[&p];
                excess = excess.saturating_sub(e.data.len() as u64);
                out.push(DirtyObject {
                    path: p.clone(),
                    data: Arc::clone(&e.data),
                    version: e.version,
                });
            }
        }
        self.sync_gauges(&st);
        Some(out)
    }

    /// Marks an entry clean after the caller persisted [`DirtyObject`]
    /// `version`; a newer racing dirty write keeps it dirty.
    pub fn mark_clean(&self, path: &VPath, version: u64) {
        if !self.enabled() {
            return;
        }
        let mut st = self.state.lock();
        if let Some(e) = st.entries.get_mut(path) {
            if e.dirty && e.version == version {
                e.dirty = false;
                let len = e.data.len() as u64;
                st.dirty_bytes -= len;
                st.writeback_flushes += 1;
                self.with_instruments(|i| i.writeback_flushes.inc());
            }
        }
        self.sync_gauges(&st);
    }

    /// Snapshots every dirty entry for a full flush (drain / shutdown).
    pub fn snapshot_dirty(&self) -> Vec<DirtyObject> {
        if !self.enabled() {
            return Vec::new();
        }
        let st = self.state.lock();
        st.entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(p, e)| DirtyObject {
                path: p.clone(),
                data: Arc::clone(&e.data),
                version: e.version,
            })
            .collect()
    }

    /// Drops any resident copy for coherence (write-through write,
    /// remove, rename, truncate, recreate, abort). Returns the dirty copy
    /// if there was one, so the caller can decide whether those bytes
    /// still need to reach the backend (rename) or are dead (remove).
    pub fn invalidate(&self, path: &VPath) -> Option<DirtyObject> {
        if !self.enabled() {
            return None;
        }
        let mut st = self.state.lock();
        st.access.remove(path);
        let old = st.entries.remove(path)?;
        st.bytes -= old.data.len() as u64;
        st.evictions += 1;
        self.with_instruments(|i| i.evictions.inc());
        let dirty = if old.dirty {
            st.dirty_bytes -= old.data.len() as u64;
            Some(DirtyObject {
                path: path.clone(),
                data: old.data,
                version: old.version,
            })
        } else {
            None
        };
        self.sync_gauges(&st);
        dirty
    }

    /// Resident bytes currently classified guaranteed (for tests).
    pub fn guaranteed_bytes(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let st = self.state.lock();
        st.entries
            .values()
            .filter(|e| e.guaranteed)
            .map(|e| e.data.len() as u64)
            .sum()
    }

    /// Demotes cold entries until `need` more bytes fit in `budget`.
    /// Best-effort inserts (`guaranteed == false`) may only demote other
    /// best-effort entries; guaranteed inserts demote best-effort first
    /// and touch guaranteed residents only under global pressure. Dirty
    /// victims are appended to `out` for the caller to persist. Returns
    /// false (leaving room unmade) when the lot rule forbids enough
    /// demotion.
    fn make_room(
        st: &mut TierState,
        need: u64,
        budget: u64,
        guaranteed: bool,
        out: &mut Vec<DirtyObject>,
    ) -> bool {
        if st.bytes + need <= budget {
            return true;
        }
        // Cold-first within a class: fewest hits since promotion, then
        // least recently used. Recency alone thrashes under Zipf traffic —
        // every tail promotion arrives with the newest tick and would
        // displace a demonstrably hot resident.
        let mut victims: Vec<(VPath, u64, u64, bool)> = st
            .entries
            .iter()
            .map(|(p, e)| (p.clone(), e.hit_count, e.last_tick, e.guaranteed))
            .collect();
        // Best-effort victims first (coldest first), then — only for a
        // guaranteed insert — guaranteed victims (coldest first).
        victims.sort_by_key(|(_, hits, tick, g)| (*g, *hits, *tick));
        let mut planned: Vec<VPath> = Vec::new();
        let mut freed = 0u64;
        for (p, _, _, victim_guaranteed) in victims {
            if st.bytes - freed + need <= budget {
                break;
            }
            if victim_guaranteed && !guaranteed {
                // A best-effort object must never push out a guaranteed
                // resident — give up instead.
                return false;
            }
            freed += st.entries[&p].data.len() as u64;
            planned.push(p);
        }
        if st.bytes - freed + need > budget {
            return false;
        }
        for p in planned {
            let e = st.entries.remove(&p).expect("planned victim present");
            st.bytes -= e.data.len() as u64;
            if e.dirty {
                st.dirty_bytes -= e.data.len() as u64;
                out.push(DirtyObject {
                    path: p,
                    data: e.data,
                    version: e.version,
                });
            }
            st.demotions += 1;
        }
        true
    }

    fn with_instruments(&self, f: impl FnOnce(&Instruments)) {
        if let Some(i) = self.instruments.lock().as_ref() {
            f(i);
        }
    }

    fn sync_gauges(&self, st: &TierState) {
        if let Some(i) = self.instruments.lock().as_ref() {
            i.bytes.set(st.bytes as i64);
            i.objects.set(st.entries.len() as i64);
            i.dirty_bytes.set(st.dirty_bytes as i64);
            // Demotions are batch-counted here rather than per victim.
            let counted = i.demotions.get();
            if st.demotions > counted {
                i.demotions.add(st.demotions - counted);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn obj(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    #[test]
    fn disabled_tier_is_inert() {
        let t = MemTier::new(0);
        assert!(!t.enabled());
        assert!(!t.record_access(&vp("/a"), 10, true, 0));
        assert!(t.insert(&vp("/a"), obj(10, 1), 10, false).is_empty());
        assert!(t.object(&vp("/a")).is_none());
        assert_eq!(t.stats(), MemTierStats::default());
    }

    #[test]
    fn promotes_on_second_access_within_window() {
        let t = MemTier::new(1024);
        assert!(!t.record_access(&vp("/f"), 100, false, 10));
        assert!(t.record_access(&vp("/f"), 100, false, 20));
    }

    #[test]
    fn window_lapse_resets_the_count() {
        let t = MemTier::new(1024);
        assert!(!t.record_access(&vp("/f"), 100, false, 0));
        // Second access far outside the window starts a fresh count.
        assert!(!t.record_access(&vp("/f"), 100, false, PROMOTE_WINDOW_SECS + 1));
    }

    #[test]
    fn residency_hint_promotes_immediately() {
        let t = MemTier::new(1024);
        assert!(t.record_access(&vp("/hot"), 100, true, 0));
    }

    #[test]
    fn hit_and_miss_accounting() {
        let t = MemTier::new(1024);
        t.record_access(&vp("/f"), 100, true, 0);
        t.insert(&vp("/f"), obj(100, 7), 100, false);
        assert!(!t.record_access(&vp("/f"), 100, false, 1));
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes, 100);
        assert_eq!(s.objects, 1);
    }

    #[test]
    fn read_at_serves_resident_ranges() {
        let t = MemTier::new(1024);
        t.insert(&vp("/f"), obj(100, 9), 100, false);
        let mut buf = [0u8; 40];
        assert_eq!(t.read_at(&vp("/f"), 60, &mut buf), Some(40));
        assert_eq!(buf, [9u8; 40]);
        // Past EOF of a full object is a definitive zero-length read.
        assert_eq!(t.read_at(&vp("/f"), 100, &mut buf), Some(0));
        assert!(t.read_at(&vp("/missing"), 0, &mut buf).is_none());
    }

    #[test]
    fn head_segment_serves_only_the_head() {
        let t = MemTier::new(1024);
        // 50 resident bytes of a 200-byte object.
        t.insert(&vp("/big"), obj(50, 3), 200, false);
        assert!(t.object(&vp("/big")).is_none(), "segment is not full");
        let mut buf = [0u8; 25];
        assert_eq!(t.read_at(&vp("/big"), 0, &mut buf), Some(25));
        // A read that would end exactly at the segment edge mid-object
        // falls through (a short read would masquerade as EOF).
        assert!(t.read_at(&vp("/big"), 25, &mut buf).is_none());
        assert!(t.read_at(&vp("/big"), 60, &mut buf).is_none());
    }

    #[test]
    fn budget_is_strict_and_demotes_cold_first() {
        let t = MemTier::new(300);
        t.insert(&vp("/a"), obj(100, 1), 100, false);
        t.insert(&vp("/b"), obj(100, 2), 100, false);
        t.insert(&vp("/c"), obj(100, 3), 100, false);
        // Touch /a so /b is the coldest.
        assert!(t.object(&vp("/a")).is_some());
        t.insert(&vp("/d"), obj(100, 4), 100, false);
        let s = t.stats();
        assert_eq!(s.bytes, 300);
        assert_eq!(s.demotions, 1);
        assert!(t.object(&vp("/b")).is_none(), "coldest entry demoted");
        assert!(t.object(&vp("/a")).is_some());
        assert!(t.object(&vp("/d")).is_some());
    }

    #[test]
    fn best_effort_never_demotes_guaranteed() {
        let t = MemTier::new(250);
        t.insert(&vp("/g1"), obj(100, 1), 100, true);
        t.insert(&vp("/g2"), obj(100, 2), 100, true);
        // Best-effort insert needs 100 but only 50 are reclaimable from
        // its own class: refused, guaranteed residents untouched.
        t.insert(&vp("/be"), obj(100, 3), 100, false);
        assert!(t.object(&vp("/be")).is_none());
        assert_eq!(t.guaranteed_bytes(), 200);
        assert_eq!(t.stats().demotions, 0);
    }

    #[test]
    fn guaranteed_insert_demotes_best_effort_then_guaranteed() {
        let t = MemTier::new(250);
        t.insert(&vp("/be"), obj(100, 1), 100, false);
        t.insert(&vp("/g1"), obj(100, 2), 100, true);
        // Guaranteed insert: best-effort victim goes first.
        t.insert(&vp("/g2"), obj(100, 3), 100, true);
        assert!(t.object(&vp("/be")).is_none());
        assert!(t.object(&vp("/g1")).is_some());
        // Global pressure: a further guaranteed insert may demote the
        // coldest guaranteed resident.
        t.insert(&vp("/g3"), obj(200, 4), 200, true);
        assert!(t.object(&vp("/g3")).is_some());
        assert_eq!(t.stats().bytes, 200);
    }

    #[test]
    fn invalidate_drops_and_counts_eviction() {
        let t = MemTier::new(1024);
        t.insert(&vp("/f"), obj(100, 1), 100, false);
        assert!(t.invalidate(&vp("/f")).is_none(), "clean copy: no flush");
        assert_eq!(t.stats().bytes, 0);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn write_back_dirties_and_flush_cleans() {
        let t = MemTier::new(1024);
        let victims = t
            .write_back(&vp("/f"), 0, &[5u8; 100], Some(Vec::new()), true)
            .expect("absorbed");
        assert!(victims.is_empty());
        assert_eq!(t.stats().dirty_bytes, 100);
        assert_eq!(t.dirty_len(&vp("/f")), Some(100));
        let dirty = t.snapshot_dirty();
        assert_eq!(dirty.len(), 1);
        t.mark_clean(&vp("/f"), dirty[0].version);
        assert_eq!(t.stats().dirty_bytes, 0);
        assert_eq!(t.stats().writeback_flushes, 1);
        assert_eq!(t.dirty_len(&vp("/f")), None);
        // The (now clean) copy still serves reads.
        assert_eq!(t.object(&vp("/f")).unwrap().len(), 100);
    }

    #[test]
    fn racing_dirty_write_survives_mark_clean() {
        let t = MemTier::new(1024);
        t.write_back(&vp("/f"), 0, &[1u8; 10], Some(Vec::new()), true)
            .unwrap();
        let snap = t.snapshot_dirty().remove(0);
        // A second write lands before the flush completes.
        t.write_back(&vp("/f"), 0, &[2u8; 10], None, true).unwrap();
        t.mark_clean(&vp("/f"), snap.version);
        assert_eq!(t.stats().dirty_bytes, 10, "newer write stays dirty");
    }

    #[test]
    fn dirty_bound_surfaces_oldest_victims() {
        let t = MemTier::new(4096).with_max_dirty_bytes(150);
        t.write_back(&vp("/a"), 0, &[1u8; 100], Some(Vec::new()), true)
            .unwrap();
        let victims = t
            .write_back(&vp("/b"), 0, &[2u8; 100], Some(Vec::new()), true)
            .unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].path, vp("/a"));
    }

    #[test]
    fn oversized_objects_are_refused() {
        let t = MemTier::new(100);
        assert!(t.insert(&vp("/huge"), obj(200, 1), 200, true).is_empty());
        assert_eq!(t.stats().bytes, 0);
        assert!(t
            .write_back(&vp("/huge"), 0, &[0u8; 200], Some(Vec::new()), true)
            .is_none());
    }

    #[test]
    fn presence_index_is_conservative_never_wrong() {
        let t = MemTier::with_shards(1024, 4);
        // Never-inserted paths are definitively absent: the fast path
        // answers without consulting the state.
        assert!(!t.maybe_resident(&vp("/never")));
        assert!(t.read_at(&vp("/never"), 0, &mut [0u8; 4]).is_none());
        // Resident paths are always indexed.
        t.insert(&vp("/f"), obj(100, 7), 100, false);
        assert!(t.maybe_resident(&vp("/f")));
        assert!(t.object(&vp("/f")).is_some());
        // Invalidation does NOT remove from the index (append-only): a
        // stale "maybe" just falls through to the state and reads None.
        t.invalidate(&vp("/f"));
        assert!(t.maybe_resident(&vp("/f")));
        assert!(t.object(&vp("/f")).is_none());
        assert!(t.read_at(&vp("/f"), 0, &mut [0u8; 4]).is_none());
    }

    #[test]
    fn presence_index_covers_write_back_dirty_reads() {
        // A dirty write-back entry must be visible through the index —
        // a false negative here would serve stale backend bytes.
        let t = MemTier::with_shards(1024, 4);
        t.write_back(&vp("/wb"), 0, &[9u8; 50], Some(Vec::new()), true)
            .unwrap();
        assert_eq!(t.dirty_len(&vp("/wb")), Some(50));
        let mut buf = [0u8; 50];
        assert_eq!(t.read_at(&vp("/wb"), 0, &mut buf), Some(50));
        assert_eq!(buf, [9u8; 50]);
    }

    #[test]
    fn saturated_presence_cell_answers_maybe() {
        let t = MemTier::with_shards(1024, 1);
        {
            let mut cell = t.index.lock_idx(0);
            cell.overflow = true;
        }
        // Overflowed: everything is "maybe present" — reads fall through
        // to the state lock and stay correct, just not fast.
        assert!(t.maybe_resident(&vp("/anything")));
        assert!(t.read_at(&vp("/anything"), 0, &mut [0u8; 4]).is_none());
    }

    #[test]
    fn stats_backfill_on_late_obs_registration() {
        let t = MemTier::new(1024);
        t.record_access(&vp("/f"), 100, true, 0);
        t.insert(&vp("/f"), obj(100, 1), 100, false);
        let obs = Obs::new();
        t.register_obs(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.count("memtier.misses"), 1);
        assert_eq!(snap.count("memtier.promotions"), 1);
    }
}
