//! Virtual path handling.
//!
//! Every path a client names — over any protocol — is parsed into a
//! [`VPath`]: an absolute, normalized path inside NeST's virtual root. This
//! is the first half of the storage manager's namespace virtualization; the
//! second half is the backend mapping in [`crate::backend`].

use std::fmt;

/// Errors from virtual path parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path tried to escape the virtual root via `..`.
    Escapes,
    /// A component contained a NUL or other forbidden byte.
    BadComponent(String),
    /// The path was empty.
    Empty,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Escapes => write!(f, "path escapes the virtual root"),
            PathError::BadComponent(c) => write!(f, "invalid path component {:?}", c),
            PathError::Empty => write!(f, "empty path"),
        }
    }
}

impl std::error::Error for PathError {}

/// An absolute, normalized virtual path.
///
/// ```
/// use nest_storage::VPath;
///
/// let p = VPath::parse("/data//./staging/../input.dat").unwrap();
/// assert_eq!(p.to_string(), "/data/input.dat");
/// // Escapes are rejected, not clamped:
/// assert!(VPath::parse("/../etc/passwd").is_err());
/// ```
///
/// Invariants (maintained by construction, relied on by every backend):
/// * always begins at the virtual root (`/`);
/// * contains no `.` or `..` components, no empty components, and no NUL
///   bytes;
/// * `..` that would climb above the root is rejected, not clamped, so a
///   client probing with `../../etc/passwd` receives an error rather than
///   silently reading `/etc/passwd` relative to the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPath {
    /// Normalized components, root-relative.
    components: Vec<String>,
}

impl VPath {
    /// The virtual root `/`.
    pub fn root() -> Self {
        VPath {
            components: Vec::new(),
        }
    }

    /// Parses and normalizes a client-supplied path. Relative paths are
    /// interpreted from the root (protocols present working-directory
    /// resolution themselves before reaching the storage manager).
    pub fn parse(raw: &str) -> Result<Self, PathError> {
        if raw.is_empty() {
            return Err(PathError::Empty);
        }
        let mut components: Vec<String> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => continue,
                ".." => {
                    if components.pop().is_none() {
                        return Err(PathError::Escapes);
                    }
                }
                c => {
                    if c.bytes().any(|b| b == 0) {
                        return Err(PathError::BadComponent(c.to_owned()));
                    }
                    components.push(c.to_owned());
                }
            }
        }
        Ok(VPath { components })
    }

    /// Resolves a possibly-relative path against this directory.
    pub fn join(&self, raw: &str) -> Result<Self, PathError> {
        if raw.starts_with('/') {
            return VPath::parse(raw);
        }
        let mut combined = String::new();
        for c in &self.components {
            combined.push('/');
            combined.push_str(c);
        }
        combined.push('/');
        combined.push_str(raw);
        VPath::parse(&combined)
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(VPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// True if this is the virtual root.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The normalized components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Depth below the root.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True if `self` equals `ancestor` or lies beneath it.
    pub fn starts_with(&self, ancestor: &VPath) -> bool {
        self.components.len() >= ancestor.components.len()
            && self.components[..ancestor.components.len()] == ancestor.components[..]
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/{}", c)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for VPath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_normalizes() {
        assert_eq!(VPath::parse("/a/b/c").unwrap().to_string(), "/a/b/c");
        assert_eq!(VPath::parse("a//b/./c").unwrap().to_string(), "/a/b/c");
        assert_eq!(VPath::parse("/a/b/../c").unwrap().to_string(), "/a/c");
        assert_eq!(VPath::parse("/").unwrap().to_string(), "/");
    }

    #[test]
    fn escape_attempts_rejected() {
        assert_eq!(VPath::parse(".."), Err(PathError::Escapes));
        assert_eq!(VPath::parse("/.."), Err(PathError::Escapes));
        assert_eq!(VPath::parse("/a/../../etc/passwd"), Err(PathError::Escapes));
        assert_eq!(VPath::parse("a/b/../../.."), Err(PathError::Escapes));
    }

    #[test]
    fn empty_path_rejected() {
        assert_eq!(VPath::parse(""), Err(PathError::Empty));
    }

    #[test]
    fn nul_byte_rejected() {
        assert!(matches!(
            VPath::parse("/a\0b"),
            Err(PathError::BadComponent(_))
        ));
    }

    #[test]
    fn join_relative_and_absolute() {
        let dir = VPath::parse("/home/user").unwrap();
        assert_eq!(
            dir.join("data.txt").unwrap().to_string(),
            "/home/user/data.txt"
        );
        assert_eq!(dir.join("../other").unwrap().to_string(), "/home/other");
        assert_eq!(dir.join("/abs").unwrap().to_string(), "/abs");
        assert_eq!(dir.join("../../.."), Err(PathError::Escapes));
    }

    #[test]
    fn parent_and_file_name() {
        let p = VPath::parse("/a/b").unwrap();
        assert_eq!(p.file_name(), Some("b"));
        assert_eq!(p.parent().unwrap().to_string(), "/a");
        assert_eq!(VPath::root().parent(), None);
        assert_eq!(VPath::root().file_name(), None);
    }

    #[test]
    fn starts_with_ancestry() {
        let a = VPath::parse("/a").unwrap();
        let ab = VPath::parse("/a/b").unwrap();
        let ax = VPath::parse("/ax").unwrap();
        assert!(ab.starts_with(&a));
        assert!(ab.starts_with(&VPath::root()));
        assert!(!ax.starts_with(&a));
        assert!(!a.starts_with(&ab));
        assert!(a.starts_with(&a));
    }
}
