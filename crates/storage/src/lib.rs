//! # nest-storage
//!
//! The NeST **storage manager** (paper §5). Its three roles, quoted from the
//! paper, are to "implement access control, virtualize the storage
//! namespace, and provide mechanisms for guaranteeing storage space."
//!
//! * [`namespace`] — virtual paths: every protocol-visible path is
//!   normalized and confined to the appliance's virtual root, so NeST can
//!   run over any physical storage element.
//! * [`backend`] — pluggable physical storage: a local filesystem directory
//!   ([`backend::LocalFsBackend`]) or main memory
//!   ([`backend::MemBackend`]). The paper uses the local filesystem and
//!   names raw disk and memory as planned alternatives.
//! * [`handle_cache`] — an LRU of open file descriptors keyed by virtual
//!   path, so steady-state chunk transfers pay zero `open(2)` calls
//!   (paper §7: approaching kernel-server performance in user space).
//! * [`acl`] — AFS-style access control lists built on ClassAds, enforced
//!   identically across every protocol.
//! * [`lot`] — storage-space guarantees: a *lot* has an owner, capacity,
//!   duration and a set of files; expired lots become *best-effort* (their
//!   files linger until space is reclaimed for new lots).
//! * [`mem_tier`] — the actuating memory tier: a bounded, lot-aware RAM
//!   cache under the manager, promoting hot objects so they serve at
//!   memory speed regardless of OS page-cache churn.
//! * [`quota`] — the user-level quota accounting on which lots are
//!   implemented, mirroring the paper's use of the kernel quota system.
//! * [`manager`] — the [`manager::StorageManager`] façade the dispatcher
//!   calls: synchronous, serialized execution of all non-transfer requests.
//!
//! Storage-manager operations are synchronous by design: the paper notes
//! they complete in milliseconds, and the dispatcher serializes them.

pub mod acl;
pub mod backend;
pub mod handle_cache;
pub mod lot;
pub mod manager;
pub mod mem_tier;
pub mod namespace;
pub mod quota;

pub use acl::{AccessRight, AclEntry, AclTable, Principal};
pub use backend::{FileKind, FileStat, LocalFsBackend, MemBackend, ReadLease, StorageBackend};
pub use handle_cache::{HandleCache, HandleCacheStats};
pub use lot::{Lot, LotError, LotId, LotManager, ReclaimPolicy};
pub use manager::{ObjectEntry, ObjectListing, StorageError, StorageManager};
pub use mem_tier::{MemTier, MemTierStats, WritePolicy};
pub use namespace::{PathError, VPath};
pub use quota::QuotaTable;
