//! LRU cache of open file handles for the disk-backed data path.
//!
//! The paper's performance case (§7) is that a software-only appliance can
//! approach kernel-server throughput. Opening, seeking and closing a file
//! for **every 64 KiB chunk** forfeits that: steady-state GET/PUT paid
//! three to four syscalls of pure overhead per chunk. This cache keeps an
//! open [`File`] per hot [`VPath`] and serves chunk I/O with positional
//! `pread`/`pwrite` (`std::os::unix::fs::FileExt`) — zero redundant
//! syscalls per chunk, and the handle is shared (`Arc<File>`) so
//! concurrent readers of one file need only one descriptor.
//!
//! ## Staleness
//!
//! A cached descriptor pins an *inode*, not a *name*. After `remove`,
//! `rename` or a recreate, the name may point at different bytes (or
//! nothing), so the backend explicitly [`HandleCache::invalidate`]s every
//! affected path on metadata mutations. Insertions are epoch-guarded: a
//! handle opened before an invalidation that raced with it is used for
//! its one operation but never cached, so a stale descriptor can never be
//! re-served.
//!
//! ## Sizing
//!
//! Capacity bounds open descriptors; eviction is least-recently-used.
//! Capacity 0 disables caching entirely (every operation opens fresh —
//! the ablation baseline and the pre-cache behavior).

use crate::namespace::VPath;
use nest_obs::{Counter, Gauge, Obs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::sync::Arc;

/// Point-in-time counters for the cache (see also the
/// `handlecache.{hits,misses,evictions,open_fds}` instruments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandleCacheStats {
    /// Chunk operations served by an already-open descriptor.
    pub hits: u64,
    /// Operations that had to open the file.
    pub misses: u64,
    /// Handles closed to make room under the capacity bound.
    pub evictions: u64,
    /// Descriptors currently held open by the cache.
    pub open: u64,
}

/// One cached handle. `writable` records the open mode: read-only opens
/// (a fallback for files we cannot open read-write) never serve writes.
struct Entry {
    file: Arc<File>,
    writable: bool,
    /// Monotonic last-use stamp for LRU eviction.
    stamp: u64,
}

struct CacheState {
    entries: HashMap<VPath, Entry>,
    /// Monotonic use counter backing the LRU stamps.
    tick: u64,
    /// Bumped by every invalidation; insertions captured under an older
    /// epoch are dropped instead of cached (see module docs).
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Obs instrument handles, resolved once at registration.
struct CacheInstruments {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    open_fds: Arc<Gauge>,
}

/// The handle cache. Cheap to share (`Arc` internally not required — the
/// backend owns it); all state sits behind one short-held mutex, and the
/// actual I/O happens outside the lock on the cloned `Arc<File>`.
pub struct HandleCache {
    capacity: usize,
    state: Mutex<CacheState>,
    /// Lock-free mirror of `CacheState::epoch`, updated under the state
    /// lock by every invalidation. The zero-copy send path revalidates
    /// its lease against the epoch once per `sendfile` span; reading the
    /// mirror keeps that per-span check off the cache mutex (and out of
    /// the lock shim's contention instrumentation).
    epoch_fast: std::sync::atomic::AtomicU64,
    instruments: Mutex<Option<CacheInstruments>>,
}

impl std::fmt::Debug for HandleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("HandleCache")
            .field("capacity", &self.capacity)
            .field("open", &st.entries.len())
            .field("hits", &st.hits)
            .field("misses", &st.misses)
            .field("evictions", &st.evictions)
            .finish()
    }
}

/// What a lookup resolved to: a cached handle plus the epoch under which a
/// replacement may be inserted.
///
/// Public (rather than crate-private) so `nest-model` scenarios can drive
/// the lookup → open → insert protocol directly under the interleaving
/// explorer; the backend remains the only production caller.
pub enum Lookup {
    /// Cache hit: use this handle.
    Hit(Arc<File>),
    /// Miss: open the file yourself, then offer it back via
    /// [`HandleCache::insert`] with this epoch.
    Miss { epoch: u64 },
    /// Caching disabled (capacity 0): open fresh, do not insert.
    Disabled,
}

impl HandleCache {
    /// Creates a cache bounding open descriptors to `capacity` (0
    /// disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::named(
                "storage.handlecache.state",
                340,
                CacheState {
                    entries: HashMap::new(),
                    tick: 0,
                    epoch: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                },
            ),
            epoch_fast: std::sync::atomic::AtomicU64::new(0),
            instruments: Mutex::named("storage.handlecache.instruments", 341, None),
        }
    }

    /// Whether caching is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Registers the `handlecache.{hits,misses,evictions,open_fds}`
    /// instruments on an observability registry and back-fills any counts
    /// accumulated before registration.
    pub fn register_obs(&self, obs: &Obs) {
        let m = &obs.metrics;
        let inst = CacheInstruments {
            hits: m.counter("handlecache.hits"),
            misses: m.counter("handlecache.misses"),
            evictions: m.counter("handlecache.evictions"),
            open_fds: m.gauge("handlecache.open_fds"),
        };
        let st = self.state.lock();
        inst.hits.add(st.hits);
        inst.misses.add(st.misses);
        inst.evictions.add(st.evictions);
        inst.open_fds.set(st.entries.len() as i64);
        *self.instruments.lock() = Some(inst);
    }

    /// Current counters.
    pub fn stats(&self) -> HandleCacheStats {
        let st = self.state.lock();
        HandleCacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            open: st.entries.len() as u64,
        }
    }

    /// Looks up a handle for `path`. `need_write` demands a handle opened
    /// read-write; a cached read-only handle is treated as a miss (and
    /// replaced on insert).
    ///
    /// Public as the model-harness surface (see [`Lookup`]); production
    /// chunk I/O reaches this only through the backend.
    pub fn lookup(&self, path: &VPath, need_write: bool) -> Lookup {
        if self.capacity == 0 {
            return Lookup::Disabled;
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.entries.get_mut(path) {
            if e.writable || !need_write {
                e.stamp = tick;
                let file = Arc::clone(&e.file);
                st.hits += 1;
                drop(st);
                if let Some(i) = &*self.instruments.lock() {
                    i.hits.inc();
                }
                return Lookup::Hit(file);
            }
            // Read-only handle but a write is needed: drop it; the caller
            // reopens read-write and re-inserts.
            st.entries.remove(path);
        }
        st.misses += 1;
        let epoch = st.epoch;
        let open = st.entries.len() as i64;
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            i.misses.inc();
            i.open_fds.set(open);
        }
        Lookup::Miss { epoch }
    }

    /// Offers a freshly opened handle for caching. Dropped (not cached) if
    /// an invalidation happened since the `epoch` captured at lookup — the
    /// open may have raced a rename/remove and observed a name that no
    /// longer means the same file.
    ///
    /// Public as the model-harness surface (see [`Lookup`]); production
    /// chunk I/O reaches this only through the backend.
    pub fn insert(&self, path: &VPath, file: Arc<File>, writable: bool, epoch: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.state.lock();
        if st.epoch != epoch {
            return; // raced an invalidation: use-once, never cache
        }
        st.tick += 1;
        let tick = st.tick;
        let mut evicted = 0u64;
        while st.entries.len() >= self.capacity {
            // LRU eviction: linear scan is fine — capacity is small (it
            // bounds *open descriptors*, typically ≤ a few hundred) and we
            // only scan on insert-at-capacity, never per chunk.
            let Some(victim) = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(p, _)| p.clone())
            else {
                break;
            };
            st.entries.remove(&victim);
            st.evictions += 1;
            evicted += 1;
        }
        st.entries.insert(
            path.clone(),
            Entry {
                file,
                writable,
                stamp: tick,
            },
        );
        let open = st.entries.len() as i64;
        // The cache's whole point is bounding open descriptors: an insert
        // must never leave more cached FDs than the configured capacity.
        nest_check::invariant!(
            open as usize <= self.capacity,
            "handlecache holds {} open FDs, capacity is {}",
            open,
            self.capacity
        );
        drop(st);
        if evicted > 0 || open > 0 {
            if let Some(i) = &*self.instruments.lock() {
                i.evictions.add(evicted);
                i.open_fds.set(open);
            }
        }
    }

    /// Records hits for chunk spans served through a reused
    /// [`crate::backend::ReadLease`]. The zero-copy path resolves its
    /// descriptor once per lease and then streams spans without calling
    /// [`HandleCache::lookup`]; without this, the zerocopy ablation column
    /// undercounts hits relative to the pooled path (which records one hit
    /// per chunk) and the columns stop being comparable. Meaningful even
    /// with caching disabled: the lease itself is a descriptor reuse.
    pub fn note_lease_hits(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut st = self.state.lock();
        st.hits += n;
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            i.hits.add(n);
        }
    }

    /// The current invalidation epoch. A raw-FD lease handed out of the
    /// cache (see [`crate::backend::ReadLease`]) captures this value; the
    /// lease is *current* only while the epoch is unchanged. Any metadata
    /// mutation bumps the epoch, so a zero-copy sender re-checking its
    /// lease per span can never keep streaming an inode whose name has
    /// been removed, renamed, or truncated under it. Meaningful whether or
    /// not caching is enabled (capacity-0 backends still invalidate).
    ///
    /// Reads the lock-free mirror: the check runs once per zero-copy span
    /// on the engine thread, and must not serialize against chunk I/O
    /// taking the cache mutex. An invalidation racing the read is
    /// indistinguishable from one landing just after it — the lease's
    /// `Arc<File>` keeps the inode alive either way, exactly as a pooled
    /// read racing the same rename would.
    pub fn epoch(&self) -> u64 {
        self.epoch_fast.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Drops any cached handle for `path` and bumps the epoch so in-flight
    /// opens of the same name cannot be cached. Must be called on every
    /// operation that changes what the *name* means: remove, rename (both
    /// ends), truncate, recreate, abort cleanup.
    pub fn invalidate(&self, path: &VPath) {
        let mut st = self.state.lock();
        st.epoch += 1;
        self.epoch_fast
            .store(st.epoch, std::sync::atomic::Ordering::Release);
        st.entries.remove(path);
        let open = st.entries.len() as i64;
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            i.open_fds.set(open);
        }
    }

    /// Drops every cached handle (e.g. wholesale namespace changes).
    pub fn invalidate_all(&self) {
        let mut st = self.state.lock();
        st.epoch += 1;
        self.epoch_fast
            .store(st.epoch, std::sync::atomic::Ordering::Release);
        st.entries.clear();
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            i.open_fds.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn tmpfile(dir: &std::path::Path, name: &str, content: &[u8]) -> std::path::PathBuf {
        let p = dir.join(name);
        let mut f = File::create(&p).unwrap();
        f.write_all(content).unwrap();
        p
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nest-hcache-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let dir = tempdir("hit");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("expected miss");
        };
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        assert!(matches!(c.lookup(&path, false), Lookup::Hit(_)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.open), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_zero_disables() {
        let c = HandleCache::new(0);
        assert!(!c.enabled());
        assert!(matches!(c.lookup(&vp("/f"), false), Lookup::Disabled));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let dir = tempdir("lru");
        let c = HandleCache::new(2);
        for name in ["a", "b", "c"] {
            let host = tmpfile(&dir, name, b"x");
            let path = vp(&format!("/{}", name));
            let Lookup::Miss { epoch } = c.lookup(&path, false) else {
                panic!("miss expected");
            };
            c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        }
        let s = c.stats();
        assert_eq!(s.open, 2);
        assert_eq!(s.evictions, 1);
        // "a" was the LRU victim.
        assert!(matches!(c.lookup(&vp("/a"), false), Lookup::Miss { .. }));
        assert!(matches!(c.lookup(&vp("/c"), false), Lookup::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidation_races_block_insert() {
        let dir = tempdir("race");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("miss expected");
        };
        // An invalidation lands between the open and the insert.
        c.invalidate(&path);
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        assert!(matches!(c.lookup(&path, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().open, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_lookup_rejects_readonly_handle() {
        let dir = tempdir("ro");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("miss expected");
        };
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        // A writer must not receive the read-only handle.
        assert!(matches!(c.lookup(&path, true), Lookup::Miss { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
