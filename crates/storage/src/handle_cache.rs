//! LRU cache of open file handles for the disk-backed data path.
//!
//! The paper's performance case (§7) is that a software-only appliance can
//! approach kernel-server throughput. Opening, seeking and closing a file
//! for **every 64 KiB chunk** forfeits that: steady-state GET/PUT paid
//! three to four syscalls of pure overhead per chunk. This cache keeps an
//! open [`File`] per hot [`VPath`] and serves chunk I/O with positional
//! `pread`/`pwrite` (`std::os::unix::fs::FileExt`) — zero redundant
//! syscalls per chunk, and the handle is shared (`Arc<File>`) so
//! concurrent readers of one file need only one descriptor.
//!
//! ## Staleness
//!
//! A cached descriptor pins an *inode*, not a *name*. After `remove`,
//! `rename` or a recreate, the name may point at different bytes (or
//! nothing), so the backend explicitly [`HandleCache::invalidate`]s every
//! affected path on metadata mutations. Insertions are epoch-guarded: a
//! handle opened before an invalidation that raced with it is used for
//! its one operation but never cached, so a stale descriptor can never be
//! re-served.
//!
//! ## Striping
//!
//! The hot lookup path is striped by path hash: every entry for one path
//! lives in exactly one cell (all cells share the
//! `storage.handlecache.state` lock class), so chunk I/O on distinct hot
//! files stops serializing on one mutex. The invalidation epoch stays
//! global (a lock-free atomic, bumped and checked under the owning cell's
//! lock), which keeps the insert-vs-invalidate race protocol exactly as
//! before for same-path races and merely conservative — a spurious
//! use-once — for cross-path ones. Eviction becomes per-cell LRU with a
//! per-cell slice of the capacity; the global descriptor bound still
//! holds because the per-cell caps sum to at most the configured
//! capacity. Small capacities collapse to a single cell so eviction
//! order stays exactly LRU when the cache is tiny.
//!
//! ## Sizing
//!
//! Capacity bounds open descriptors; eviction is least-recently-used
//! within a cell. Capacity 0 disables caching entirely (every operation
//! opens fresh — the ablation baseline and the pre-cache behavior).

use crate::namespace::VPath;
use nest_obs::{Counter, Gauge, Obs};
use parking_lot::{shard_hash, Mutex, ShardedMutex};
use std::collections::HashMap;
use std::fs::File;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time counters for the cache (see also the
/// `handlecache.{hits,misses,evictions,open_fds}` instruments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandleCacheStats {
    /// Chunk operations served by an already-open descriptor.
    pub hits: u64,
    /// Operations that had to open the file.
    pub misses: u64,
    /// Handles closed to make room under the capacity bound.
    pub evictions: u64,
    /// Descriptors currently held open by the cache.
    pub open: u64,
}

/// One cached handle. `writable` records the open mode: read-only opens
/// (a fallback for files we cannot open read-write) never serve writes.
struct Entry {
    file: Arc<File>,
    writable: bool,
    /// Monotonic last-use stamp for LRU eviction.
    stamp: u64,
}

/// Per-cell state: the entries whose paths hash here, plus this cell's
/// share of the counters (summed at [`HandleCache::stats`] time).
struct CacheState {
    entries: HashMap<VPath, Entry>,
    /// Monotonic use counter backing this cell's LRU stamps.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Obs instrument handles, resolved once at registration.
struct CacheInstruments {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    open_fds: Arc<Gauge>,
}

/// The handle cache. Cheap to share (`Arc` internally not required — the
/// backend owns it); state sits behind short-held per-path-stripe
/// mutexes, and the actual I/O happens outside the lock on the cloned
/// `Arc<File>`.
pub struct HandleCache {
    capacity: usize,
    /// Each cell evicts once it holds this many entries; the caps sum to
    /// ≤ `capacity`, preserving the global descriptor bound.
    per_cell_capacity: usize,
    cells: ShardedMutex<CacheState>,
    /// The invalidation epoch. Bumped (under the affected path's cell
    /// lock) by every invalidation; insertions captured under an older
    /// epoch are dropped instead of cached (see module docs). Also read
    /// lock-free by the zero-copy send path, which revalidates its lease
    /// against the epoch once per `sendfile` span without touching any
    /// cache mutex (or the lock shim's contention instrumentation).
    epoch_fast: AtomicU64,
    /// Descriptors currently cached, maintained under the cell locks.
    /// Mirrored here so the `open_fds` gauge can be kept current without
    /// summing every cell on each miss.
    open_count: AtomicI64,
    instruments: Mutex<Option<CacheInstruments>>,
}

impl std::fmt::Debug for HandleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("HandleCache")
            .field("capacity", &self.capacity)
            .field("open", &s.open)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

/// What a lookup resolved to: a cached handle plus the epoch under which a
/// replacement may be inserted.
///
/// Public (rather than crate-private) so `nest-model` scenarios can drive
/// the lookup → open → insert protocol directly under the interleaving
/// explorer; the backend remains the only production caller.
pub enum Lookup {
    /// Cache hit: use this handle.
    Hit(Arc<File>),
    /// Miss: open the file yourself, then offer it back via
    /// [`HandleCache::insert`] with this epoch.
    Miss { epoch: u64 },
    /// Caching disabled (capacity 0): open fresh, do not insert.
    Disabled,
}

/// Default stripe count for the hot lookup path (matching the storage
/// layer's [`crate::lot::DEFAULT_LOT_SHARDS`]).
pub const DEFAULT_HANDLE_CACHE_SHARDS: usize = crate::lot::DEFAULT_LOT_SHARDS;

impl HandleCache {
    /// Creates a cache bounding open descriptors to `capacity` (0
    /// disables caching), striped [`DEFAULT_HANDLE_CACHE_SHARDS`] ways.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_HANDLE_CACHE_SHARDS)
    }

    /// Creates a cache with an explicit stripe count (`1` = the
    /// single-mutex ablation). Small capacities collapse to one cell so
    /// per-cell capacities stay meaningful (≥ 4) and tiny caches keep
    /// exact global LRU order.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let effective = if capacity >= 4 * shards { shards } else { 1 };
        Self {
            capacity,
            per_cell_capacity: capacity / effective,
            cells: ShardedMutex::new("storage.handlecache.state", 340, effective, |_| {
                CacheState {
                    entries: HashMap::new(),
                    tick: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                }
            }),
            epoch_fast: AtomicU64::new(0),
            open_count: AtomicI64::new(0),
            instruments: Mutex::named("storage.handlecache.instruments", 341, None),
        }
    }

    /// Whether caching is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Registers the `handlecache.{hits,misses,evictions,open_fds}`
    /// instruments on an observability registry and back-fills any counts
    /// accumulated before registration.
    pub fn register_obs(&self, obs: &Obs) {
        let m = &obs.metrics;
        let inst = CacheInstruments {
            hits: m.counter("handlecache.hits"),
            misses: m.counter("handlecache.misses"),
            evictions: m.counter("handlecache.evictions"),
            open_fds: m.gauge("handlecache.open_fds"),
        };
        let s = self.stats();
        inst.hits.add(s.hits);
        inst.misses.add(s.misses);
        inst.evictions.add(s.evictions);
        inst.open_fds.set(s.open as i64);
        *self.instruments.lock() = Some(inst);
    }

    /// Current counters (cells are read one at a time; exact once
    /// concurrent chunk I/O quiesces).
    pub fn stats(&self) -> HandleCacheStats {
        let mut out = HandleCacheStats::default();
        self.cells.for_each_cell(|_, st| {
            out.hits += st.hits;
            out.misses += st.misses;
            out.evictions += st.evictions;
            out.open += st.entries.len() as u64;
        });
        out
    }

    /// Looks up a handle for `path`. `need_write` demands a handle opened
    /// read-write; a cached read-only handle is treated as a miss (and
    /// replaced on insert).
    ///
    /// Public as the model-harness surface (see [`Lookup`]); production
    /// chunk I/O reaches this only through the backend.
    pub fn lookup(&self, path: &VPath, need_write: bool) -> Lookup {
        if self.capacity == 0 {
            return Lookup::Disabled;
        }
        let mut st = self.cells.lock(shard_hash(path));
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.entries.get_mut(path) {
            if e.writable || !need_write {
                e.stamp = tick;
                let file = Arc::clone(&e.file);
                st.hits += 1;
                drop(st);
                if let Some(i) = &*self.instruments.lock() {
                    i.hits.inc();
                }
                return Lookup::Hit(file);
            }
            // Read-only handle but a write is needed: drop it; the caller
            // reopens read-write and re-inserts.
            st.entries.remove(path);
            // open_count mirrors the entry map the cell lock orders.
            // nestlint: allow(atomic-ordering): gauge statistic only
            self.open_count.fetch_sub(1, Ordering::Relaxed);
        }
        st.misses += 1;
        // Captured under the cell lock: a same-path invalidation either
        // already bumped the epoch (so the insert will be dropped) or
        // serializes behind this cell lock.
        let epoch = self.epoch_fast.load(Ordering::Acquire);
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            i.misses.inc();
            // nestlint: allow(atomic-ordering): sloppy gauge read.
            i.open_fds.set(self.open_count.load(Ordering::Relaxed));
        }
        Lookup::Miss { epoch }
    }

    /// Offers a freshly opened handle for caching. Dropped (not cached) if
    /// an invalidation happened since the `epoch` captured at lookup — the
    /// open may have raced a rename/remove and observed a name that no
    /// longer means the same file.
    ///
    /// Public as the model-harness surface (see [`Lookup`]); production
    /// chunk I/O reaches this only through the backend.
    pub fn insert(&self, path: &VPath, file: Arc<File>, writable: bool, epoch: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut st = self.cells.lock(shard_hash(path));
        // Same-path invalidations serialize on this cell lock, so an
        // unchanged epoch proves no invalidation of *this* path landed
        // since lookup. A bump by an unrelated path costs only a
        // use-once open — conservative, never stale.
        if self.epoch_fast.load(Ordering::Acquire) != epoch {
            return; // raced an invalidation: use-once, never cache
        }
        st.tick += 1;
        let tick = st.tick;
        let mut evicted = 0u64;
        let replacing = st.entries.contains_key(path);
        while !replacing && st.entries.len() >= self.per_cell_capacity {
            // LRU eviction: linear scan is fine — capacity is small (it
            // bounds *open descriptors*, typically ≤ a few hundred split
            // across cells) and we only scan on insert-at-capacity, never
            // per chunk.
            let Some(victim) = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(p, _)| p.clone())
            else {
                break;
            };
            st.entries.remove(&victim);
            st.evictions += 1;
            evicted += 1;
        }
        let prev = st.entries.insert(
            path.clone(),
            Entry {
                file,
                writable,
                stamp: tick,
            },
        );
        let delta = 1 - evicted as i64 - prev.is_some() as i64;
        // The cell lock orders the entry mutations this delta mirrors.
        // nestlint: allow(atomic-ordering): gauge statistic only
        let open = self.open_count.fetch_add(delta, Ordering::Relaxed) + delta;
        // The cache's whole point is bounding open descriptors: an insert
        // must never leave more cached FDs in this cell than its share of
        // the capacity (the per-cell caps sum to ≤ the global bound).
        nest_check::invariant!(
            st.entries.len() <= self.per_cell_capacity.max(1),
            "handlecache cell holds {} open FDs, per-cell capacity is {}",
            st.entries.len(),
            self.per_cell_capacity
        );
        drop(st);
        if evicted > 0 || open > 0 {
            if let Some(i) = &*self.instruments.lock() {
                i.evictions.add(evicted);
                i.open_fds.set(open);
            }
        }
    }

    /// Records hits for chunk spans served through a reused
    /// [`crate::backend::ReadLease`]. The zero-copy path resolves its
    /// descriptor once per lease and then streams spans without calling
    /// [`HandleCache::lookup`]; without this, the zerocopy ablation column
    /// undercounts hits relative to the pooled path (which records one hit
    /// per chunk) and the columns stop being comparable. Meaningful even
    /// with caching disabled: the lease itself is a descriptor reuse.
    pub fn note_lease_hits(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.cells.lock_idx(0).hits += n;
        if let Some(i) = &*self.instruments.lock() {
            i.hits.add(n);
        }
    }

    /// The current invalidation epoch. A raw-FD lease handed out of the
    /// cache (see [`crate::backend::ReadLease`]) captures this value; the
    /// lease is *current* only while the epoch is unchanged. Any metadata
    /// mutation bumps the epoch, so a zero-copy sender re-checking its
    /// lease per span can never keep streaming an inode whose name has
    /// been removed, renamed, or truncated under it. Meaningful whether or
    /// not caching is enabled (capacity-0 backends still invalidate).
    ///
    /// Lock-free: the check runs once per zero-copy span on the engine
    /// thread, and must not serialize against chunk I/O taking a cache
    /// stripe. An invalidation racing the read is indistinguishable from
    /// one landing just after it — the lease's `Arc<File>` keeps the
    /// inode alive either way, exactly as a pooled read racing the same
    /// rename would.
    pub fn epoch(&self) -> u64 {
        self.epoch_fast.load(Ordering::Acquire)
    }

    /// Drops any cached handle for `path` and bumps the epoch so in-flight
    /// opens of the same name cannot be cached. Must be called on every
    /// operation that changes what the *name* means: remove, rename (both
    /// ends), truncate, recreate, abort cleanup.
    pub fn invalidate(&self, path: &VPath) {
        let mut st = self.cells.lock(shard_hash(path));
        // Bumped while holding the path's cell so a same-path insert can
        // never interleave between the bump and the removal.
        self.epoch_fast.fetch_add(1, Ordering::AcqRel);
        if st.entries.remove(path).is_some() {
            // nestlint: allow(atomic-ordering): gauge statistic only.
            self.open_count.fetch_sub(1, Ordering::Relaxed);
        }
        drop(st);
        if let Some(i) = &*self.instruments.lock() {
            // nestlint: allow(atomic-ordering): sloppy gauge read.
            i.open_fds.set(self.open_count.load(Ordering::Relaxed));
        }
    }

    /// Drops every cached handle (e.g. wholesale namespace changes). The
    /// epoch is bumped before the sweep, so an insert racing the sweep
    /// either captured its epoch earlier (dropped by the guard) or after
    /// the bump (a legitimately fresh post-invalidation entry).
    pub fn invalidate_all(&self) {
        self.epoch_fast.fetch_add(1, Ordering::AcqRel);
        self.cells.for_each_cell(|_, st| {
            let n = st.entries.len() as i64;
            st.entries.clear();
            // nestlint: allow(atomic-ordering): gauge statistic only.
            self.open_count.fetch_sub(n, Ordering::Relaxed);
        });
        if let Some(i) = &*self.instruments.lock() {
            // nestlint: allow(atomic-ordering): sloppy gauge read.
            i.open_fds.set(self.open_count.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn tmpfile(dir: &std::path::Path, name: &str, content: &[u8]) -> std::path::PathBuf {
        let p = dir.join(name);
        let mut f = File::create(&p).unwrap();
        f.write_all(content).unwrap();
        p
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nest-hcache-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let dir = tempdir("hit");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("expected miss");
        };
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        assert!(matches!(c.lookup(&path, false), Lookup::Hit(_)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.open), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_zero_disables() {
        let c = HandleCache::new(0);
        assert!(!c.enabled());
        assert!(matches!(c.lookup(&vp("/f"), false), Lookup::Disabled));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let dir = tempdir("lru");
        let c = HandleCache::new(2);
        for name in ["a", "b", "c"] {
            let host = tmpfile(&dir, name, b"x");
            let path = vp(&format!("/{}", name));
            let Lookup::Miss { epoch } = c.lookup(&path, false) else {
                panic!("miss expected");
            };
            c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        }
        let s = c.stats();
        assert_eq!(s.open, 2);
        assert_eq!(s.evictions, 1);
        // "a" was the LRU victim.
        assert!(matches!(c.lookup(&vp("/a"), false), Lookup::Miss { .. }));
        assert!(matches!(c.lookup(&vp("/c"), false), Lookup::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidation_races_block_insert() {
        let dir = tempdir("race");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("miss expected");
        };
        // An invalidation lands between the open and the insert.
        c.invalidate(&path);
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        assert!(matches!(c.lookup(&path, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().open, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_lookup_rejects_readonly_handle() {
        let dir = tempdir("ro");
        let host = tmpfile(&dir, "f", b"abc");
        let c = HandleCache::new(4);
        let path = vp("/f");
        let Lookup::Miss { epoch } = c.lookup(&path, false) else {
            panic!("miss expected");
        };
        c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
        // A writer must not receive the read-only handle.
        assert!(matches!(c.lookup(&path, true), Lookup::Miss { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn striped_cache_keeps_bound_and_hits() {
        // Large enough capacity to actually stripe (capacity ≥ 4×shards):
        // the per-cell caps must still sum to ≤ the global bound, and
        // every inserted path must hit from its own cell.
        let dir = tempdir("striped");
        let c = HandleCache::with_shards(32, 4);
        assert_eq!(c.cells.shards(), 4);
        for i in 0..64 {
            let name = format!("f{}", i);
            let host = tmpfile(&dir, &name, b"x");
            let path = vp(&format!("/{}", name));
            let Lookup::Miss { epoch } = c.lookup(&path, false) else {
                panic!("miss expected");
            };
            c.insert(&path, Arc::new(File::open(&host).unwrap()), false, epoch);
            assert!(matches!(c.lookup(&path, false), Lookup::Hit(_)));
        }
        let s = c.stats();
        assert!(s.open <= 32, "open {} exceeds capacity", s.open);
        assert_eq!(s.hits, 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_capacity_collapses_to_one_cell() {
        // Capacity below 4×shards must fall back to a single cell so LRU
        // order stays globally exact.
        let c = HandleCache::with_shards(2, 8);
        assert_eq!(c.cells.shards(), 1);
        let c = HandleCache::with_shards(64, 8);
        assert_eq!(c.cells.shards(), 8);
    }
}
