//! Pluggable physical storage beneath the virtual namespace.
//!
//! The paper: "the storage manager has been designed to virtualize different
//! types of physical storage"; the 2002 implementation used the local
//! filesystem, with raw disk and memory as planned alternatives. We provide
//! the local filesystem ([`LocalFsBackend`]) and memory ([`MemBackend`]);
//! both present the same chunk-oriented [`StorageBackend`] trait so the rest
//! of NeST is oblivious to the physical medium.

use crate::handle_cache::{HandleCache, HandleCacheStats, Lookup};
use crate::namespace::VPath;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What kind of object a path names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// Metadata for a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
}

/// A shared open descriptor handed out for the zero-copy read path,
/// stamped with the handle cache's invalidation epoch at grant time.
///
/// The transfer layer may feed `file`'s raw fd straight into
/// `sendfile(2)` only while the lease is *current*: the holder must
/// compare `epoch` against [`StorageBackend::lease_epoch`] before every
/// use and re-acquire on mismatch, because a metadata mutation
/// (`remove`/`rename`/`truncate`/recreate) bumps the epoch precisely when
/// a cached descriptor may no longer describe the named file.
#[derive(Debug, Clone)]
pub struct ReadLease {
    /// The shared open handle. I/O through it must be positional.
    pub file: Arc<fs::File>,
    /// The backend's invalidation epoch when the lease was granted.
    pub epoch: u64,
}

/// The physical storage interface. Chunk-oriented (`read_at`/`write_at`)
/// rather than handle-oriented so that block protocols (NFS) map directly
/// and the transfer manager can move data in scheduler-quantum-sized chunks.
pub trait StorageBackend: Send + Sync + 'static {
    /// Creates an empty file; fails if it exists or the parent is missing.
    fn create(&self, path: &VPath) -> io::Result<()>;

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read
    /// (0 at or past EOF).
    fn read_at(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes `data` at `offset`, extending (and zero-filling any gap in)
    /// the file as needed.
    fn write_at(&self, path: &VPath, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Truncates (or extends with zeros) to exactly `size` bytes.
    fn truncate(&self, path: &VPath, size: u64) -> io::Result<()>;

    /// Removes a file.
    fn remove(&self, path: &VPath) -> io::Result<()>;

    /// Renames a file or directory; fails if the destination exists.
    fn rename(&self, from: &VPath, to: &VPath) -> io::Result<()>;

    /// Creates a directory; parent must exist.
    fn mkdir(&self, path: &VPath) -> io::Result<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &VPath) -> io::Result<()>;

    /// Lists directory entries (names only, unsorted order unspecified).
    fn list(&self, path: &VPath) -> io::Result<Vec<String>>;

    /// Stats a path.
    fn stat(&self, path: &VPath) -> io::Result<FileStat>;

    /// Total bytes of file data stored (for ad publication).
    fn used_bytes(&self) -> io::Result<u64>;

    /// Grants a raw-descriptor read lease for the zero-copy path, or
    /// `None` when the medium has no descriptors (memory backends) or the
    /// file cannot be opened. Default: no zero-copy capability.
    fn read_lease(&self, _path: &VPath) -> Option<ReadLease> {
        None
    }

    /// The current lease-invalidation epoch, or `None` when the backend
    /// never grants leases. A [`ReadLease`] is current iff its stamped
    /// epoch equals this value.
    fn lease_epoch(&self) -> Option<u64> {
        None
    }

    /// Records `n` chunk spans served through a reused [`ReadLease`]
    /// without a per-chunk lookup, so descriptor-reuse accounting stays
    /// comparable between the pooled and zero-copy paths. Default: no-op
    /// (backends without leases have nothing to count).
    fn note_lease_hits(&self, _n: u64) {}
}

// ---------------------------------------------------------------------------
// Memory backend
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum MemNode {
    File(Vec<u8>),
    Dir,
}

/// An in-memory backend: a map from virtual path to node. Useful for tests
/// and for the paper's "physical memory" storage option.
#[derive(Debug)]
pub struct MemBackend {
    nodes: RwLock<BTreeMap<VPath, MemNode>>,
}

impl Default for MemBackend {
    fn default() -> Self {
        Self {
            nodes: RwLock::named("storage.backend.memfs", 330, BTreeMap::new()),
        }
    }
}

impl MemBackend {
    /// Creates an empty memory backend (the root directory always exists).
    pub fn new() -> Self {
        Self::default()
    }

    fn parent_exists(nodes: &BTreeMap<VPath, MemNode>, path: &VPath) -> bool {
        match path.parent() {
            None => true, // the root itself
            Some(p) if p.is_root() => true,
            Some(p) => matches!(nodes.get(&p), Some(MemNode::Dir)),
        }
    }
}

impl StorageBackend for MemBackend {
    fn create(&self, path: &VPath) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        if path.is_root() || nodes.contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "exists"));
        }
        if !Self::parent_exists(&nodes, path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "parent missing"));
        }
        nodes.insert(path.clone(), MemNode::File(Vec::new()));
        Ok(())
    }

    fn read_at(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let nodes = self.nodes.read();
        match nodes.get(path) {
            Some(MemNode::File(data)) => {
                let off = offset.min(data.len() as u64) as usize;
                let n = buf.len().min(data.len() - off);
                buf[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            Some(MemNode::Dir) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "is a directory",
            )),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn write_at(&self, path: &VPath, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get_mut(path) {
            Some(MemNode::File(contents)) => {
                let end = offset as usize + data.len();
                if contents.len() < end {
                    contents.resize(end, 0);
                }
                contents[offset as usize..end].copy_from_slice(data);
                Ok(())
            }
            Some(MemNode::Dir) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "is a directory",
            )),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn truncate(&self, path: &VPath, size: u64) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get_mut(path) {
            Some(MemNode::File(contents)) => {
                contents.resize(size as usize, 0);
                Ok(())
            }
            Some(MemNode::Dir) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "is a directory",
            )),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn remove(&self, path: &VPath) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get(path) {
            Some(MemNode::File(_)) => {
                nodes.remove(path);
                Ok(())
            }
            Some(MemNode::Dir) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "is a directory",
            )),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn rename(&self, from: &VPath, to: &VPath) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        if nodes.contains_key(to) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "exists"));
        }
        if !Self::parent_exists(&nodes, to) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "parent missing"));
        }
        // Renaming a directory moves its whole subtree.
        let is_dir = matches!(nodes.get(from), Some(MemNode::Dir));
        let node = nodes
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        if is_dir {
            let children: Vec<VPath> = nodes
                .keys()
                .filter(|k| k.starts_with(from))
                .cloned()
                .collect();
            for child in children {
                let rel: Vec<String> = child.components()[from.depth()..].to_vec();
                let mut new_path = to.clone();
                for c in rel {
                    new_path = new_path.join(&c).expect("component already validated");
                }
                let v = nodes.remove(&child).unwrap();
                nodes.insert(new_path, v);
            }
        }
        nodes.insert(to.clone(), node);
        Ok(())
    }

    fn mkdir(&self, path: &VPath) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        if path.is_root() || nodes.contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "exists"));
        }
        if !Self::parent_exists(&nodes, path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "parent missing"));
        }
        nodes.insert(path.clone(), MemNode::Dir);
        Ok(())
    }

    fn rmdir(&self, path: &VPath) -> io::Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get(path) {
            Some(MemNode::Dir) => {
                let has_children = nodes.keys().any(|k| k != path && k.starts_with(path));
                if has_children {
                    return Err(io::Error::new(
                        io::ErrorKind::DirectoryNotEmpty,
                        "directory not empty",
                    ));
                }
                nodes.remove(path);
                Ok(())
            }
            Some(MemNode::File(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "not a directory",
            )),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such dir")),
        }
    }

    fn list(&self, path: &VPath) -> io::Result<Vec<String>> {
        let nodes = self.nodes.read();
        if !path.is_root() && !matches!(nodes.get(path), Some(MemNode::Dir)) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such dir"));
        }
        let depth = path.depth();
        Ok(nodes
            .keys()
            .filter(|k| k.depth() == depth + 1 && k.starts_with(path))
            .map(|k| k.file_name().unwrap().to_owned())
            .collect())
    }

    fn stat(&self, path: &VPath) -> io::Result<FileStat> {
        if path.is_root() {
            return Ok(FileStat {
                kind: FileKind::Dir,
                size: 0,
            });
        }
        let nodes = self.nodes.read();
        match nodes.get(path) {
            Some(MemNode::File(data)) => Ok(FileStat {
                kind: FileKind::File,
                size: data.len() as u64,
            }),
            Some(MemNode::Dir) => Ok(FileStat {
                kind: FileKind::Dir,
                size: 0,
            }),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such path")),
        }
    }

    fn used_bytes(&self) -> io::Result<u64> {
        let nodes = self.nodes.read();
        Ok(nodes
            .values()
            .map(|n| match n {
                MemNode::File(d) => d.len() as u64,
                MemNode::Dir => 0,
            })
            .sum())
    }
}

// ---------------------------------------------------------------------------
// Local filesystem backend
// ---------------------------------------------------------------------------

/// A backend rooted at a host directory. Virtual paths map beneath the root;
/// [`VPath`]'s invariants guarantee they cannot escape it.
///
/// Chunk I/O goes through an LRU [`HandleCache`] of open descriptors
/// (default capacity [`DEFAULT_HANDLE_CACHE_CAPACITY`]): steady-state
/// reads and writes are a single positional `pread`/`pwrite` on an
/// already-open, shared handle — no open, no seek, no close per chunk.
/// Every metadata mutation (`remove`, `rename`, `truncate`, recreate)
/// invalidates affected handles so a cached descriptor can never serve a
/// deleted file or clobber a renamed one. The [`MemBackend`] has no
/// descriptors and therefore bypasses the cache entirely.
#[derive(Debug)]
pub struct LocalFsBackend {
    root: PathBuf,
    handles: HandleCache,
}

/// Default bound on descriptors the handle cache keeps open.
pub const DEFAULT_HANDLE_CACHE_CAPACITY: usize = 128;

impl LocalFsBackend {
    /// Creates a backend rooted at `root`, creating the directory if absent.
    pub fn new(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            handles: HandleCache::new(DEFAULT_HANDLE_CACHE_CAPACITY),
        })
    }

    /// Bounds the handle cache to `capacity` open descriptors; `0`
    /// disables caching (every chunk opens fresh — the pre-cache
    /// behavior, kept for ablation and for hosts with tight fd limits).
    pub fn with_handle_cache_capacity(mut self, capacity: usize) -> Self {
        self.handles = HandleCache::new(capacity);
        self
    }

    /// Registers the `handlecache.*` instruments on an observability
    /// registry.
    pub fn with_obs(self, obs: &nest_obs::Obs) -> Self {
        self.handles.register_obs(obs);
        self
    }

    /// Handle-cache counters (hits/misses/evictions/open descriptors).
    pub fn handle_cache_stats(&self) -> HandleCacheStats {
        self.handles.stats()
    }

    fn host_path(&self, path: &VPath) -> PathBuf {
        let mut p = self.root.clone();
        for c in path.components() {
            p.push(c);
        }
        p
    }

    /// Resolves a (possibly cached) open handle for `path`. Misses open
    /// read-write when possible so one descriptor serves both directions;
    /// read lookups fall back to read-only for unwritable files. The
    /// returned handle is shared — I/O must be positional.
    fn handle_for(&self, path: &VPath, need_write: bool) -> io::Result<Arc<fs::File>> {
        match self.handles.lookup(path, need_write) {
            Lookup::Hit(file) => Ok(file),
            Lookup::Disabled => {
                // Uncached fallback: plain open in the needed mode.
                let file = if need_write {
                    // nestlint: allow(backend-open): capacity-0 ablation path opens uncached by design
                    fs::OpenOptions::new()
                        .write(true)
                        .open(self.host_path(path))?
                } else {
                    // nestlint: allow(backend-open): capacity-0 ablation path opens uncached by design
                    fs::File::open(self.host_path(path))?
                };
                Ok(Arc::new(file))
            }
            Lookup::Miss { epoch } => {
                let host = self.host_path(path);
                let (file, writable) =
                    // nestlint: allow(backend-open): this is the one open that feeds the handle cache
                    match fs::OpenOptions::new().read(true).write(true).open(&host) {
                        Ok(f) => (f, true),
                        Err(e) if !need_write && e.kind() == io::ErrorKind::PermissionDenied => {
                            // nestlint: allow(backend-open): read-only retry for unwritable files, still inserted into the cache
                            (fs::File::open(&host)?, false)
                        }
                        Err(e) => return Err(e),
                    };
                let file = Arc::new(file);
                self.handles
                    .insert(path, Arc::clone(&file), writable, epoch);
                Ok(file)
            }
        }
    }
}

/// Positional full-buffer read with short-read looping (`pread` on Unix;
/// a per-call handle with seek elsewhere, since shared seeks would race).
fn read_at_handle(file: &fs::File, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut filled = 0;
        while filled < buf.len() {
            match file.read_at(&mut buf[filled..], offset + filled as u64) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(filled)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        let mut filled = 0;
        while filled < buf.len() {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(filled)
    }
}

/// Positional full-buffer write (`pwrite` on Unix). Writing past EOF
/// extends the file; skipped ranges read back as zeros, matching the
/// trait's sparse-write contract.
fn write_at_handle(file: &fs::File, offset: u64, data: &[u8]) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(data, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }
}

impl StorageBackend for LocalFsBackend {
    fn create(&self, path: &VPath) -> io::Result<()> {
        // nestlint: allow(backend-open): create_new is a metadata op; it invalidates the cache below
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.host_path(path))
            .map(|_| ())?;
        // The name now means a brand-new (empty) file; no descriptor
        // opened under the old meaning may be cached.
        self.handles.invalidate(path);
        Ok(())
    }

    fn read_at(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if !self.handles.enabled() {
            // Pre-cache behavior, kept verbatim for ablation (capacity 0):
            // open + seek + read for every chunk.
            use std::io::{Read, Seek, SeekFrom};
            // nestlint: allow(backend-open): pre-cache per-chunk open, kept verbatim for the ablation comparison
            let mut f = fs::File::open(self.host_path(path))?;
            f.seek(SeekFrom::Start(offset))?;
            let mut filled = 0;
            while filled < buf.len() {
                match f.read(&mut buf[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            return Ok(filled);
        }
        let file = self.handle_for(path, false)?;
        read_at_handle(&file, offset, buf)
    }

    fn write_at(&self, path: &VPath, offset: u64, data: &[u8]) -> io::Result<()> {
        if !self.handles.enabled() {
            // Pre-cache behavior, kept verbatim for ablation (capacity 0):
            // open + seek + write for every chunk.
            use std::io::{Seek, SeekFrom, Write};
            // nestlint: allow(backend-open): pre-cache per-chunk open, kept verbatim for the ablation comparison
            let mut f = fs::OpenOptions::new()
                .write(true)
                .open(self.host_path(path))?;
            f.seek(SeekFrom::Start(offset))?;
            return f.write_all(data);
        }
        let file = self.handle_for(path, true)?;
        write_at_handle(&file, offset, data)
    }

    fn truncate(&self, path: &VPath, size: u64) -> io::Result<()> {
        // nestlint: allow(backend-open): truncate is a metadata op; it invalidates the cache below
        let f = fs::OpenOptions::new()
            .write(true)
            .open(self.host_path(path))?;
        f.set_len(size)?;
        // Conservative: a truncate usually precedes an overwrite; drop any
        // cached descriptor so the rewrite starts from a fresh lookup.
        self.handles.invalidate(path);
        Ok(())
    }

    fn remove(&self, path: &VPath) -> io::Result<()> {
        fs::remove_file(self.host_path(path))?;
        // A cached descriptor would pin the unlinked inode and happily
        // serve deleted bytes — drop it, and fence racing opens.
        self.handles.invalidate(path);
        Ok(())
    }

    fn rename(&self, from: &VPath, to: &VPath) -> io::Result<()> {
        let dst = self.host_path(to);
        if dst.exists() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "exists"));
        }
        fs::rename(self.host_path(from), dst)?;
        // Both names changed meaning: `from` no longer exists and `to` is
        // a different inode than any descriptor cached under it.
        self.handles.invalidate(from);
        self.handles.invalidate(to);
        Ok(())
    }

    fn mkdir(&self, path: &VPath) -> io::Result<()> {
        fs::create_dir(self.host_path(path))
    }

    fn rmdir(&self, path: &VPath) -> io::Result<()> {
        fs::remove_dir(self.host_path(path))
    }

    fn list(&self, path: &VPath) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.host_path(path))? {
            let entry = entry?;
            out.push(entry.file_name().to_string_lossy().into_owned());
        }
        Ok(out)
    }

    fn stat(&self, path: &VPath) -> io::Result<FileStat> {
        let md = fs::metadata(self.host_path(path))?;
        Ok(FileStat {
            kind: if md.is_dir() {
                FileKind::Dir
            } else {
                FileKind::File
            },
            size: if md.is_dir() { 0 } else { md.len() },
        })
    }

    fn read_lease(&self, path: &VPath) -> Option<ReadLease> {
        // Capture the epoch *before* resolving the handle: an invalidation
        // racing in between then makes the lease read as stale (forcing a
        // harmless re-acquire) rather than falsely current.
        let epoch = self.handles.epoch();
        let file = self.handle_for(path, false).ok()?;
        Some(ReadLease { file, epoch })
    }

    fn lease_epoch(&self) -> Option<u64> {
        Some(self.handles.epoch())
    }

    fn note_lease_hits(&self, n: u64) {
        self.handles.note_lease_hits(n);
    }

    fn used_bytes(&self) -> io::Result<u64> {
        fn walk(dir: &Path) -> io::Result<u64> {
            let mut total = 0;
            for entry in fs::read_dir(dir)? {
                let entry = entry?;
                let md = entry.metadata()?;
                if md.is_dir() {
                    total += walk(&entry.path())?;
                } else {
                    total += md.len();
                }
            }
            Ok(total)
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    /// Exercises the full backend contract; run against both backends.
    fn backend_contract(b: &dyn StorageBackend) {
        // create / stat / write / read
        b.mkdir(&vp("/dir")).unwrap();
        b.create(&vp("/dir/file")).unwrap();
        assert_eq!(
            b.stat(&vp("/dir/file")).unwrap(),
            FileStat {
                kind: FileKind::File,
                size: 0
            }
        );
        b.write_at(&vp("/dir/file"), 0, b"hello world").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(b.read_at(&vp("/dir/file"), 6, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"world");
        // read past EOF
        assert_eq!(b.read_at(&vp("/dir/file"), 100, &mut buf).unwrap(), 0);
        // sparse write zero-fills the gap
        b.write_at(&vp("/dir/file"), 20, b"x").unwrap();
        assert_eq!(b.stat(&vp("/dir/file")).unwrap().size, 21);
        let mut gap = [9u8; 2];
        b.read_at(&vp("/dir/file"), 12, &mut gap).unwrap();
        assert_eq!(gap, [0, 0]);
        // truncate
        b.truncate(&vp("/dir/file"), 5).unwrap();
        assert_eq!(b.stat(&vp("/dir/file")).unwrap().size, 5);
        // list
        b.create(&vp("/dir/second")).unwrap();
        let mut names = b.list(&vp("/dir")).unwrap();
        names.sort();
        assert_eq!(names, ["file", "second"]);
        // rename
        b.rename(&vp("/dir/second"), &vp("/dir/renamed")).unwrap();
        assert!(b.stat(&vp("/dir/second")).is_err());
        assert!(b.stat(&vp("/dir/renamed")).is_ok());
        // rename onto existing fails
        assert!(b.rename(&vp("/dir/renamed"), &vp("/dir/file")).is_err());
        // rmdir refuses non-empty
        assert!(b.rmdir(&vp("/dir")).is_err());
        b.remove(&vp("/dir/file")).unwrap();
        b.remove(&vp("/dir/renamed")).unwrap();
        b.rmdir(&vp("/dir")).unwrap();
        assert!(b.stat(&vp("/dir")).is_err());
        // double create fails
        b.create(&vp("/f")).unwrap();
        assert!(b.create(&vp("/f")).is_err());
        // create under missing parent fails
        assert!(b.create(&vp("/missing/f")).is_err());
        // remove of missing fails
        assert!(b.remove(&vp("/nothing")).is_err());
        b.remove(&vp("/f")).unwrap();
        assert_eq!(b.used_bytes().unwrap(), 0);
    }

    #[test]
    fn mem_backend_contract() {
        backend_contract(&MemBackend::new());
    }

    #[test]
    fn localfs_backend_contract() {
        let dir = std::env::temp_dir().join(format!("nest-backend-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = LocalFsBackend::new(&dir).unwrap();
        backend_contract(&b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_rename_moves_subtree() {
        let b = MemBackend::new();
        b.mkdir(&vp("/a")).unwrap();
        b.mkdir(&vp("/a/sub")).unwrap();
        b.create(&vp("/a/sub/f")).unwrap();
        b.write_at(&vp("/a/sub/f"), 0, b"data").unwrap();
        b.rename(&vp("/a"), &vp("/b")).unwrap();
        assert_eq!(b.stat(&vp("/b/sub/f")).unwrap().size, 4);
        assert!(b.stat(&vp("/a")).is_err());
    }

    #[test]
    fn mem_used_bytes_tracks_content() {
        let b = MemBackend::new();
        b.create(&vp("/x")).unwrap();
        b.write_at(&vp("/x"), 0, &[0u8; 1000]).unwrap();
        assert_eq!(b.used_bytes().unwrap(), 1000);
        b.truncate(&vp("/x"), 100).unwrap();
        assert_eq!(b.used_bytes().unwrap(), 100);
    }

    #[test]
    fn root_always_exists() {
        let b = MemBackend::new();
        assert_eq!(b.stat(&VPath::root()).unwrap().kind, FileKind::Dir);
        assert!(b.list(&VPath::root()).unwrap().is_empty());
    }
}
