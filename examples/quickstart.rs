//! Quickstart: start a NeST appliance, authenticate, reserve space with a
//! lot, and move a file in and out over Chirp.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::proto::chirp::ChirpClient;
use nest::proto::gsi::{GridMap, SimCa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A certificate authority and grid-mapfile, as a Grid site would have.
    let ca = SimCa::new("Quickstart-CA", 0x1234_5678);
    let mut gridmap = GridMap::new();
    gridmap.add("/O=Grid/OU=example.org/CN=Alice", "alice");

    // Start the appliance: in-memory storage, every protocol on an
    // ephemeral loopback port.
    let server = NestServer::start(
        NestConfig::builder("quickstart")
            .gsi(ca.clone(), gridmap)
            .build()?,
    )?;
    println!("NeST is up:");
    println!("  chirp   {}", server.chirp_addr.unwrap());
    println!("  http    {}", server.http_addr.unwrap());
    println!("  ftp     {}", server.ftp_addr.unwrap());
    println!("  gridftp {}", server.gridftp_addr.unwrap());
    println!("  nfs     {}", server.nfs_addr.unwrap());

    // Connect with the native Chirp protocol and authenticate (simulated
    // GSI: subject DN mapped to a local user through the grid-mapfile).
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap())?;
    let cred = ca.issue("/O=Grid/OU=example.org/CN=Alice");
    let user = chirp.authenticate(&cred)?;
    println!("\nauthenticated as {:?}", user);

    // Guarantee storage space: a 16 MB lot for one hour.
    let lot = chirp.lot_create(16 << 20, 3600)?;
    println!("created lot {} (16 MB, 1 h)", lot);

    // Store and retrieve a file.
    chirp.mkdir("/results")?;
    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    chirp.put_bytes("/results/run-001.dat", &data)?;
    println!("stored /results/run-001.dat ({} bytes)", data.len());

    let back = chirp.get_bytes("/results/run-001.dat")?;
    assert_eq!(back, data);
    println!("read it back intact");

    // Inspect the lot: the file's bytes are charged against it.
    let info = chirp.lot_stat(lot)?;
    println!(
        "lot {}: {} / {} bytes used",
        info.id, info.used, info.capacity
    );

    // The appliance publishes a ClassAd describing itself for discovery.
    let ad = server
        .dispatcher()
        .storage_ad(&["chirp", "gridftp", "http", "ftp", "nfs"]);
    println!("\npublished storage ad:\n{}", ad);

    // Clean up: terminating the lot deletes its files.
    chirp.lot_terminate(lot)?;
    assert!(chirp.stat("/results/run-001.dat").is_err());
    println!("\nlot terminated; its files were reclaimed");

    chirp.quit()?;
    server.shutdown();
    println!("server stopped — done");
    Ok(())
}
