//! Lots vs IBP allocations — the paper's §8 comparison, run live.
//!
//! "In comparing NeST lots with IBP space guarantees, one difference is
//! that IBP reservations are allocations for byte arrays. ... Another
//! difference is that IBP allows both permanent and volatile allocations.
//! NeST does not have permanent lots but users are allowed to indefinitely
//! renew them and best-effort lots are analogous to volatile allocations.
//! However, there does not appear to be a mechanism in IBP for switching
//! an allocation from permanent to volatile while lots in NeST switch
//! automatically to best-effort when their duration expires."
//!
//! This example starts one appliance serving both interfaces and walks
//! through each claim.
//!
//! ```sh
//! cargo run --example lots_vs_ibp
//! ```

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::proto::chirp::ChirpClient;
use nest::proto::gsi::{GridMap, SimCa};
use nest::proto::ibp::{IbpClient, Reliability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ca = SimCa::new("Cmp-CA", 0xC0DE);
    let mut gridmap = GridMap::new();
    gridmap.add("/O=Grid/CN=User", "user");
    let server = NestServer::start(
        NestConfig::builder("lots-vs-ibp")
            .gsi(ca.clone(), gridmap)
            .ibp(true)
            .build()?,
    )?;

    // ---- Claim 1: lots hold *files* in a namespace; IBP holds byte arrays.
    println!("claim 1: lots govern files; IBP allocations are byte arrays\n");
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap())?;
    chirp.authenticate(&ca.issue("/O=Grid/CN=User"))?;
    let lot = chirp.lot_create(1 << 20, 2)?; // 1 MB for 2 seconds
    chirp.mkdir("/results")?;
    chirp.put_bytes("/results/a.dat", b"first file")?;
    chirp.put_bytes("/results/b.dat", b"second file")?;
    println!(
        "  lot {}: two named files visible to every protocol: {:?}",
        lot,
        chirp.ls("/results")?
    );

    let mut ibp = IbpClient::connect(server.ibp_addr.unwrap())?;
    let caps = ibp.allocate(1 << 20, 2, Reliability::Stable)?;
    ibp.store_bytes(&caps.write, b"first file")?;
    ibp.store_bytes(&caps.write, b"second file")?;
    println!(
        "  IBP allocation: one unnamed byte array ({} bytes); to hold two\n  \
         files a client must \"build its own file system within the byte array\"",
        ibp.probe(&caps.manage)?.stored
    );

    // ---- Claim 2: expiry semantics differ.
    println!("\nclaim 2: expiry — lots switch to best-effort; IBP allocations just end\n");
    std::thread::sleep(std::time::Duration::from_millis(2500));

    // The lot is expired, but its files remain readable (best-effort).
    let still_there = chirp.get_bytes("/results/a.dat")?;
    println!(
        "  expired lot: files still readable best-effort ({} bytes) until\n  \
         the space is needed for a new lot",
        still_there.len()
    );
    // And a lot can be renewed even after expiry (space permitting).
    chirp.lot_renew(lot, 3600)?;
    println!(
        "  expired lot: renewed for another hour — \"users are allowed to\n  indefinitely renew\""
    );

    // The IBP allocation is simply gone: no best-effort phase, no renewal.
    match ibp.load(&caps.read, 0, 5) {
        Err(e) => println!("  expired IBP allocation: LOAD fails outright ({})", e),
        Ok(_) => unreachable!("expired allocation must not serve reads"),
    }
    match ibp.extend(&caps.manage, 3600) {
        Err(e) => println!("  expired IBP allocation: EXTEND fails too ({})", e),
        Ok(_) => unreachable!("expired allocation must not be extendable"),
    }

    // ---- Claim 3: volatile allocations ≈ best-effort lots.
    println!("\nclaim 3: volatile IBP allocations are revoked under pressure,\n         like best-effort lots\n");
    let volatile = ibp.allocate(400 << 20, 3600, Reliability::Volatile)?;
    ibp.store_bytes(&volatile.write, &vec![1u8; 1 << 20])?;
    // A large stable allocation forces the volatile one out (depot capacity
    // is the appliance default of 1 GB).
    let _stable = ibp.allocate(800 << 20, 3600, Reliability::Stable)?;
    match ibp.probe(&volatile.manage) {
        Err(e) => println!("  volatile allocation revoked to make room ({})", e),
        Ok(_) => println!("  (volatile allocation survived: depot had spare room)"),
    }

    chirp.quit()?;
    ibp.quit()?;
    server.shutdown();
    println!("\ndone — both models served by one appliance, as §3 planned");
    Ok(())
}
