//! One appliance, one namespace, five protocols — with a proportional-
//! share policy across them (the capability Figure 4 demonstrates and
//! JBOS cannot have).
//!
//! Stores a file over HTTP, lists it over FTP, stats it over Chirp, reads
//! it over NFS and GridFTP — then runs concurrent multi-protocol traffic
//! under a 2:1 Chirp:HTTP stride policy and prints the delivered shares.
//!
//! ```sh
//! cargo run --example multi_protocol
//! ```

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::proto::chirp::ChirpClient;
use nest::proto::ftp::FtpClient;
use nest::proto::gridftp::GridFtpClient;
use nest::proto::http::HttpClient;
use nest::proto::nfs::{MountClient, NfsClient};
use nest::transfer::manager::SchedPolicy;
use nest::transfer::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Proportional share: Chirp gets twice HTTP's bandwidth.
    let config = NestConfig::builder("multi")
        .sched(SchedPolicy::Proportional {
            tickets: vec![("chirp".into(), 200), ("http".into(), 100)],
            work_conserving: true,
        })
        .fixed_model(ModelKind::Events)
        .build()?;
    let server = NestServer::start(config)?;
    server.grant_default_lot("anonymous", 256 << 20, 3600)?;
    println!("appliance up with 2:1 chirp:http proportional scheduling\n");

    // --- One namespace, five protocols -----------------------------------
    let body: Vec<u8> = (0..500_000u32).map(|i| (i % 251) as u8).collect();

    let mut http = HttpClient::connect(server.http_addr.unwrap())?;
    assert_eq!(http.put_bytes("/shared.bin", &body)?, 201);
    println!("HTTP   PUT /shared.bin ({} bytes)", body.len());

    let mut ftp = FtpClient::connect(server.ftp_addr.unwrap())?;
    ftp.login("anonymous", "demo@")?;
    println!("FTP    NLST / -> {:?}", ftp.nlst(Some("/"))?);

    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap())?;
    println!(
        "Chirp  stat /shared.bin -> {} bytes",
        chirp.stat("/shared.bin")?
    );

    let nfs_addr = server.nfs_addr.unwrap();
    let mut mount = MountClient::connect(nfs_addr)?;
    let root = mount.mount("/")?;
    let mut nfs = NfsClient::connect(nfs_addr)?;
    let (fh, _) = nfs.lookup(root, "shared.bin")?;
    let mut via_nfs = Vec::new();
    nfs.read_file(fh, &mut via_nfs)?;
    assert_eq!(via_nfs, body);
    println!(
        "NFS    read /shared.bin block-by-block -> {} bytes",
        via_nfs.len()
    );

    let mut gftp = GridFtpClient::connect(server.gridftp_addr.unwrap())?;
    gftp.ftp().login("anonymous", "demo@")?;
    gftp.set_parallelism(4)?;
    let via_gftp = gftp.get_bytes("/shared.bin")?;
    assert_eq!(via_gftp, body);
    println!("GridFTP MODE E x4 streams -> {} bytes\n", via_gftp.len());

    // --- Proportional share under concurrent load ------------------------
    println!("driving 8 concurrent chirp GETs and 8 concurrent http GETs...");
    let chirp_addr = server.chirp_addr.unwrap();
    let http_addr = server.http_addr.unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut c = ChirpClient::connect(chirp_addr).unwrap();
            for _ in 0..10 {
                c.get_bytes("/shared.bin").unwrap();
            }
        }));
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(http_addr).unwrap();
            for _ in 0..10 {
                c.get_bytes("/shared.bin").unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.dispatcher().transfer_stats();
    let chirp_bytes = stats.classes.get("chirp").map_or(0, |c| c.bytes);
    let http_bytes = stats.classes.get("http").map_or(0, |c| c.bytes);
    println!(
        "delivered: chirp {} bytes, http {} bytes",
        chirp_bytes, http_bytes
    );
    println!("(equal demand; the stride policy's 2:1 tickets shape per-class service order)");
    println!("per-model completions: {:?}", stats.per_model);

    server.shutdown();
    Ok(())
}
