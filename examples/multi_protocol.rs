//! One appliance, one namespace, seven protocol fronts — with a
//! proportional-share policy across them (the capability Figure 4
//! demonstrates and JBOS cannot have).
//!
//! Stores a file over HTTP, lists it over FTP, stats it over Chirp, reads
//! it over NFS and GridFTP, round-trips an object over the S3 *plugin*
//! front — then runs concurrent multi-protocol traffic under a 2:1
//! Chirp:HTTP stride policy and prints the delivered shares. The front
//! inventory is enumerated from the registry, not hard-coded: whatever
//! fronts are registered is what prints.
//!
//! ```sh
//! cargo run --example multi_protocol
//! ```

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::proto::chirp::ChirpClient;
use nest::proto::ftp::FtpClient;
use nest::proto::gridftp::GridFtpClient;
use nest::proto::http::HttpClient;
use nest::proto::nfs::{MountClient, NfsClient};
use nest::proto::s3::S3Client;
use nest::s3front::S3Front;
use nest::transfer::manager::SchedPolicy;
use nest::transfer::ModelKind;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Proportional share: Chirp gets twice HTTP's bandwidth. The S3 front
    // is a plugin: nest-core has no S3 code, the factory below is the
    // whole integration.
    let config = NestConfig::builder("multi")
        .sched(SchedPolicy::Proportional {
            tickets: vec![("chirp".into(), 200), ("http".into(), 100)],
            work_conserving: true,
        })
        .fixed_model(ModelKind::Events)
        .front(|d| Arc::new(S3Front::new(Arc::clone(d))))
        .build()?;
    let server = NestServer::start(config)?;
    server.grant_default_lot("anonymous", 256 << 20, 3600)?;
    println!("appliance up with 2:1 chirp:http proportional scheduling");

    // The registry is the source of truth for what this appliance speaks.
    println!("registered protocol fronts:");
    for front in server.fronts() {
        println!("  {:>8} @ {}", front.name, front.addr);
    }
    println!();

    // --- One namespace, five protocols -----------------------------------
    let body: Vec<u8> = (0..500_000u32).map(|i| (i % 251) as u8).collect();

    let mut http = HttpClient::connect(server.http_addr.unwrap())?;
    assert_eq!(http.put_bytes("/shared.bin", &body)?, 201);
    println!("HTTP   PUT /shared.bin ({} bytes)", body.len());

    let mut ftp = FtpClient::connect(server.ftp_addr.unwrap())?;
    ftp.login("anonymous", "demo@")?;
    println!("FTP    NLST / -> {:?}", ftp.nlst(Some("/"))?);

    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap())?;
    println!(
        "Chirp  stat /shared.bin -> {} bytes",
        chirp.stat("/shared.bin")?
    );

    let nfs_addr = server.nfs_addr.unwrap();
    let mut mount = MountClient::connect(nfs_addr)?;
    let root = mount.mount("/")?;
    let mut nfs = NfsClient::connect(nfs_addr)?;
    let (fh, _) = nfs.lookup(root, "shared.bin")?;
    let mut via_nfs = Vec::new();
    nfs.read_file(fh, &mut via_nfs)?;
    assert_eq!(via_nfs, body);
    println!(
        "NFS    read /shared.bin block-by-block -> {} bytes",
        via_nfs.len()
    );

    let mut gftp = GridFtpClient::connect(server.gridftp_addr.unwrap())?;
    gftp.ftp().login("anonymous", "demo@")?;
    gftp.set_parallelism(4)?;
    let via_gftp = gftp.get_bytes("/shared.bin")?;
    assert_eq!(via_gftp, body);
    println!("GridFTP MODE E x4 streams -> {} bytes", via_gftp.len());

    // The S3 plugin front shares the same namespace: an object stored
    // through S3 is a file every 2002 protocol can read.
    let mut s3 = S3Client::connect(server.front_addr("s3").unwrap())?;
    s3.create_bucket("exports")?;
    s3.put_object("exports", "copies/shared.bin", &body)?;
    let listing = s3.list("exports", "copies/", None)?;
    println!(
        "S3     PUT + ListObjectsV2 prefix=copies/ -> {:?}",
        listing
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>()
    );
    let via_http = http.get_bytes("/exports/copies/shared.bin")?;
    assert_eq!(via_http, body);
    println!(
        "HTTP   GET /exports/copies/shared.bin -> {} bytes (same namespace)\n",
        via_http.len()
    );

    // --- Proportional share under concurrent load ------------------------
    println!("driving 8 concurrent chirp GETs and 8 concurrent http GETs...");
    let chirp_addr = server.chirp_addr.unwrap();
    let http_addr = server.http_addr.unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut c = ChirpClient::connect(chirp_addr).unwrap();
            for _ in 0..10 {
                c.get_bytes("/shared.bin").unwrap();
            }
        }));
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(http_addr).unwrap();
            for _ in 0..10 {
                c.get_bytes("/shared.bin").unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.dispatcher().transfer_stats();
    let chirp_bytes = stats.classes.get("chirp").map_or(0, |c| c.bytes);
    let http_bytes = stats.classes.get("http").map_or(0, |c| c.bytes);
    println!(
        "delivered: chirp {} bytes, http {} bytes",
        chirp_bytes, http_bytes
    );
    println!("(equal demand; the stride policy's 2:1 tickets shape per-class service order)");
    println!("per-model completions: {:?}", stats.per_model);

    server.shutdown();
    Ok(())
}
