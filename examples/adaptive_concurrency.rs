//! Watch the adaptive concurrency selector at work (paper §4.1):
//! requests are first distributed equally across the models, progress is
//! monitored, and assignments then bias toward the best performer — while
//! periodic exploration keeps tracking workload shifts.
//!
//! ```sh
//! cargo run --example adaptive_concurrency
//! ```

use nest::transfer::adaptive::AdaptiveSelector;
use nest::transfer::flow::{CountingSink, FlowMeta, PatternSource};
use nest::transfer::manager::{ModelSelection, SchedPolicy, TransferConfig, TransferManager};
use nest::transfer::ModelKind;

fn main() {
    // Phase A: drive a real transfer manager in adaptive mode and show
    // where the assignments went.
    let tm = TransferManager::new(TransferConfig {
        policy: SchedPolicy::Fcfs,
        model: ModelSelection::Adaptive(vec![
            ModelKind::Events,
            ModelKind::Threads,
            ModelKind::Processes,
        ]),
        ..TransferConfig::default()
    });
    println!("submitting 60 transfers (256 KB each) under adaptive selection...");
    let handles: Vec<_> = (0..60)
        .map(|_| {
            let meta = FlowMeta::new(tm.next_flow_id(), "chirp", Some(256 * 1024));
            tm.submit(
                meta,
                Box::new(PatternSource::new(256 * 1024)),
                Box::new(CountingSink::default()),
            )
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = tm.stats();
    println!("assignments per model: {:?}", stats.per_model);
    println!("(warmup distributes equally, then the winner takes most)\n");
    tm.shutdown();

    // Phase B: the selector alone, with a synthetic workload shift, to
    // show re-adaptation — the behaviour behind Figure 5's "cost of
    // adaptation".
    let mut sel = AdaptiveSelector::new(vec![ModelKind::Events, ModelKind::Threads]);
    let mut tally = std::collections::HashMap::new();
    println!("phase 1: small in-cache requests (events-friendly)");
    for i in 0..60 {
        let m = sel.choose();
        *tally.entry(m).or_insert(0u32) += 1;
        // Events 3x faster on this workload.
        let tput = match m {
            ModelKind::Events => 3_000_000,
            _ => 1_000_000,
        };
        sel.report(m, tput, 1.0);
        if i == 59 {
            println!("  assignments so far: {:?}, best = {}", tally, sel.best());
        }
    }
    println!("phase 2: the workload shifts to large disk-bound files (threads-friendly)");
    for i in 0..120 {
        let m = sel.choose();
        *tally.entry(m).or_insert(0) += 1;
        let tput = match m {
            ModelKind::Threads => 3_000_000,
            _ => 1_000_000,
        };
        sel.report(m, tput, 1.0);
        if i % 40 == 39 {
            println!(
                "  after {:3} more requests: best = {} scores = {:?}",
                i + 1,
                sel.best(),
                sel.scores()
                    .iter()
                    .map(|(m, s)| format!("{}={:.0}", m, s.unwrap_or(0.0)))
                    .collect::<Vec<_>>()
            );
        }
    }
    assert_eq!(sel.best(), ModelKind::Threads);
    println!("\nthe periodic exploration slot kept measuring the losing model,");
    println!("so the selector crossed over when the workload shifted — that");
    println!("probing is the visible 'cost for adaptation' in Figure 5.");
}
