//! The paper's Section 6 / Figure 2 scenario, end to end with real
//! servers: a researcher's input data lives at the Madison NeST; a global
//! execution manager matches a storage request against the discovery
//! system, reserves a lot at the Argonne NeST over Chirp, stages input
//! with a GridFTP third-party transfer, runs the "jobs" against Argonne
//! over NFS, stages the output home, and terminates the reservation — with
//! the whole pipeline encapsulated in a DAGMan-style request manager.
//!
//! ```sh
//! cargo run --example grid_scenario
//! ```

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::grid::manager::{ExecutionManager, JobSpec, SiteInfo};
use nest::grid::{Dag, Discovery};
use nest::proto::chirp::ChirpClient;
use nest::proto::gsi::{GridMap, SimCa};
use std::sync::Mutex;

fn ca() -> SimCa {
    SimCa::new("Grid-CA", 0xFEED_FACE)
}

fn start_site(name: &str) -> Result<(NestServer, SiteInfo), Box<dyn std::error::Error>> {
    let mut gridmap = GridMap::new();
    gridmap.add("/O=Grid/OU=wisc.edu/CN=Researcher", "researcher");
    let server = NestServer::start(NestConfig::builder(name).gsi(ca(), gridmap).build()?)?;
    server.grant_default_lot("anonymous", 64 << 20, 3600)?;
    let site = SiteInfo {
        name: name.to_owned(),
        chirp: server.chirp_addr.unwrap().to_string(),
        gridftp: server.gridftp_addr.unwrap().to_string(),
        nfs: server.nfs_addr.unwrap().to_string(),
    };
    Ok((server, site))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two sites, as in Figure 2.
    let (madison, madison_site) = start_site("madison")?;
    let (argonne, argonne_site) = start_site("argonne")?;
    println!("sites up: madison (home), argonne (compute)");

    // The researcher's input data is permanently stored at home.
    let cred = ca().issue("/O=Grid/OU=wisc.edu/CN=Researcher");
    let mut home = ChirpClient::connect(&*madison_site.chirp)?;
    home.authenticate(&cred)?;
    home.lot_create(32 << 20, 3600)?;
    let input: Vec<u8> = (0..2_000_000u32).map(|i| (i % 239) as u8).collect();
    home.mkdir("/experiment")?;
    home.put_bytes("/experiment/input.dat", &input)?;
    println!(
        "staged {} bytes of input at madison:/experiment/input.dat",
        input.len()
    );

    // Both sites publish storage ads into the discovery system (step 0:
    // "previously published both its resource and data availability").
    let discovery = Discovery::new();
    for (server, site) in [(&madison, &madison_site), (&argonne, &argonne_site)] {
        let mut ad = server
            .dispatcher()
            .storage_ad(&["chirp", "gridftp", "nfs", "http", "ftp"]);
        site.annotate(&mut ad);
        discovery.publish(&site.name, ad);
    }
    println!("both sites published ClassAds into the discovery system");

    // The job: checksum the input over NFS and leave the result beside it.
    let expected: u64 = input.iter().map(|&b| b as u64).sum();
    let job = JobSpec {
        name: "checksum".into(),
        need_space: 8 << 20,
        lot_duration: 600,
        stage_in: vec![("/experiment/input.dat".into(), "/scratch/input.dat".into())],
        stage_out: vec![("/scratch/sum.txt".into(), "/experiment/sum.txt".into())],
        run: Box::new(move |nfs, root| {
            let (dir, _) = nfs.lookup(root, "scratch").map_err(|e| e.to_string())?;
            let (fh, _) = nfs.lookup(dir, "input.dat").map_err(|e| e.to_string())?;
            let mut data = Vec::new();
            nfs.read_file(fh, &mut data).map_err(|e| e.to_string())?;
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            println!(
                "  [job] read {} bytes over NFS, checksum {}",
                data.len(),
                sum
            );
            nfs.write_file(
                dir,
                "sum.txt",
                &mut std::io::Cursor::new(sum.to_string().into_bytes()),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }),
    };

    // The execution site needs the /scratch directory before staging.
    {
        let mut prep = ChirpClient::connect(&*argonne_site.chirp)?;
        prep.authenticate(&cred)?;
        prep.mkdir("/scratch")?;
    }

    // Encapsulate the scenario in a DAG, as the paper suggests DAGMan
    // would: run-job is one node; verify-output depends on it.
    let manager = ExecutionManager::new(discovery, madison_site.clone(), cred.clone());
    let summary = Mutex::new(None);
    let mut dag = Dag::new();
    dag.job("run-job", {
        let summary = &summary;
        move || {
            let s = manager.run_job(job).map_err(|e| e.to_string())?;
            println!("  [dag] job ran at {:?} under lot {}", s.site, s.lot_id);
            *summary.lock().unwrap() = Some(s);
            Ok(())
        }
    });
    dag.job("verify-output", {
        let chirp_addr = madison_site.chirp.clone();
        let cred = cred.clone();
        move || {
            let mut chirp = ChirpClient::connect(&*chirp_addr).map_err(|e| e.to_string())?;
            chirp.authenticate(&cred).map_err(|e| e.to_string())?;
            let out = chirp
                .get_bytes("/experiment/sum.txt")
                .map_err(|e| e.to_string())?;
            let sum: u64 = String::from_utf8_lossy(&out)
                .parse()
                .map_err(|_| "bad sum")?;
            if sum == expected {
                println!("  [dag] verified output checksum {} at home site", sum);
                Ok(())
            } else {
                Err(format!("checksum mismatch: {} != {}", sum, expected))
            }
        }
    });
    dag.depends("verify-output", "run-job")?;
    let order = dag.run()?;
    println!("DAG completed: {:?}", order);

    let s = summary.into_inner().unwrap().unwrap();
    assert_eq!(s.site, "argonne");
    println!(
        "\nscenario complete: staged {} in / {} out via GridFTP third-party,",
        s.staged_in, s.staged_out
    );
    println!(
        "job executed over NFS at {}, lot {} terminated.",
        s.site, s.lot_id
    );

    madison.shutdown();
    argonne.shutdown();
    Ok(())
}
