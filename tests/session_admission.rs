//! Admission control over the wire: every protocol front-end shares the
//! session layer's bounded pools, and each rejects overload in its own
//! dialect — HTTP `503`, FTP/GridFTP `421`, a Chirp negative status line,
//! a bare close for IBP, and S3's `503` + `SlowDown` error document.
//! Also: the global cap spans protocols, queued connections are served
//! when a worker frees up, silent clients are reaped at the idle
//! deadline, and IBP connections move the same `server.*` instruments as
//! everyone else (they used to bypass them).

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::obs::Obs;
use nest::proto::ibp::{IbpClient, Reliability};
use nest::s3front::S3Front;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Polls the metrics registry until `name` reaches `target` (gauges render
/// their current level as the count). Panics after five seconds.
fn wait_for(obs: &Obs, name: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if obs.snapshot().count(name) >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {name} >= {target} (at {})",
            obs.snapshot().count(name)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Connects and reads until the server closes; returns the reply bytes.
fn connect_and_read_reply(addr: SocketAddr) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    conn.read_to_end(&mut reply).unwrap();
    reply
}

#[test]
fn every_protocol_rejects_in_its_own_dialect() {
    let obs = Obs::new();
    let config = NestConfig::builder("admission-matrix")
        .obs(Arc::clone(&obs))
        .ibp(true)
        .max_conns_per_protocol(2)
        .front(|d| Arc::new(S3Front::new(Arc::clone(d))))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();

    // (proto label, bound address, expected overload reply prefix).
    let matrix: [(&str, SocketAddr, &[u8]); 6] = [
        ("http", server.http_addr.unwrap(), b"HTTP/1.1 503"),
        ("ftp", server.ftp_addr.unwrap(), b"421"),
        ("gridftp", server.gridftp_addr.unwrap(), b"421"),
        ("chirp", server.chirp_addr.unwrap(), b"-"),
        ("ibp", server.ibp_addr.unwrap(), b""), // bare close: EOF
        ("s3", server.front_addr("s3").unwrap(), b"HTTP/1.1 503"),
    ];

    let mut rejected_so_far = 0u64;
    for (proto, addr, want) in matrix {
        // Two silent connections pin both of the protocol's workers.
        let holders: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        wait_for(&obs, &format!("session.{proto}.active"), 2);

        // The third arrival is rejected with the protocol's own reply.
        let reply = connect_and_read_reply(addr);
        assert!(
            reply.starts_with(want),
            "{proto}: expected reply starting with {:?}, got {:?}",
            String::from_utf8_lossy(want),
            String::from_utf8_lossy(&reply)
        );
        if want.is_empty() {
            assert!(reply.is_empty(), "ibp overload must be a bare close");
        }
        if proto == "s3" {
            // S3 throttles with a full error document, not a bare status.
            assert!(
                String::from_utf8_lossy(&reply).contains("<Code>SlowDown</Code>"),
                "s3 overload must carry the SlowDown XML body, got {:?}",
                String::from_utf8_lossy(&reply)
            );
        }
        rejected_so_far += 1;
        wait_for(&obs, "session.rejected", rejected_so_far);
        drop(holders);
        // Wait for the workers to notice the EOFs so the next protocol's
        // holders don't race the global count.
        let gauge = format!("session.{proto}.active");
        let deadline = Instant::now() + Duration::from_secs(5);
        while obs.snapshot().count(&gauge) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    assert_eq!(obs.snapshot().count("session.rejected"), 6);
    server.shutdown();
}

#[test]
fn queued_connection_waits_then_is_served() {
    let obs = Obs::new();
    let config = NestConfig::builder("admission-queue")
        .obs(Arc::clone(&obs))
        .max_conns_per_protocol(1)
        .accept_queue_depth(1)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    let addr = server.http_addr.unwrap();

    // A pins the single HTTP worker.
    let holder = TcpStream::connect(addr).unwrap();
    wait_for(&obs, "session.http.active", 1);

    // B is admitted into the queue; its request sits in the socket buffer.
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .write_all(b"GET /nest/stats HTTP/1.1\r\n\r\n")
        .unwrap();
    wait_for(&obs, "session.queued", 1);

    // C is over cap + queue depth: rejected immediately.
    let reply = connect_and_read_reply(addr);
    assert!(
        reply.starts_with(b"HTTP/1.1 503"),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // A hangs up; the freed worker picks B up from the queue and serves
    // the buffered request. (The connection stays open afterwards, so
    // read the response head rather than waiting for EOF.)
    drop(holder);
    queued
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut head = [0u8; 4096];
    let n = queued.read(&mut head).unwrap();
    let text = String::from_utf8_lossy(&head[..n]);
    assert!(
        text.starts_with("HTTP/1.1 200"),
        "queued conn should be served once a worker frees up, got {text:?}"
    );

    server.shutdown();
}

#[test]
fn global_cap_spans_protocols() {
    let obs = Obs::new();
    let config = NestConfig::builder("admission-global")
        .obs(Arc::clone(&obs))
        .max_conns(2)
        .max_conns_per_protocol(2)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();

    // Two HTTP holders exhaust the *global* budget.
    let holders: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(server.http_addr.unwrap()).unwrap())
        .collect();
    wait_for(&obs, "session.http.active", 2);

    // FTP's own pool is empty, but the appliance-wide cap still rejects —
    // in FTP's dialect.
    let reply = connect_and_read_reply(server.ftp_addr.unwrap());
    assert!(
        reply.starts_with(b"421"),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );
    assert!(obs.snapshot().count("session.rejected") >= 1);

    drop(holders);
    server.shutdown();
}

#[test]
fn silent_clients_are_reaped_and_service_continues() {
    let obs = Obs::new();
    let config = NestConfig::builder("admission-idle")
        .obs(Arc::clone(&obs))
        .idle_timeout(Some(Duration::from_millis(150)))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    let addr = server.http_addr.unwrap();

    // A client that connects and never speaks is closed by the server at
    // the idle deadline (EOF from the client's point of view).
    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(silent.read(&mut buf).unwrap(), 0, "expected server close");
    wait_for(&obs, "session.idle_reaped", 1);

    // Reaping frees the worker: a live client is still served.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /nest/stats HTTP/1.1\r\n\r\n").unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut resp = Vec::new();
    conn.read_to_end(&mut resp).unwrap();
    assert!(
        String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200"),
        "server must keep serving after a reap"
    );

    server.shutdown();
}

#[test]
fn ibp_connections_move_the_shared_server_instruments() {
    let obs = Obs::new();
    let config = NestConfig::builder("ibp-parity")
        .obs(Arc::clone(&obs))
        .ibp(true)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();

    let before = obs.snapshot();
    assert_eq!(before.count("server.conns_total"), 0);

    // One full IBP workload on one connection.
    let mut client = IbpClient::connect(server.ibp_addr.unwrap()).unwrap();
    let caps = client.allocate(1 << 20, 600, Reliability::Stable).unwrap();
    assert_eq!(client.store_bytes(&caps.write, b"depot bytes").unwrap(), 11);
    assert_eq!(client.load(&caps.read, 0, 11).unwrap(), b"depot bytes");
    client.quit().unwrap();

    // The IBP front-end used to run its own acceptor and skip the shared
    // counters; through the session layer it is indistinguishable from
    // the other five protocols.
    wait_for(&obs, "session.accepted", 1);
    wait_for(&obs, "server.conns_total", 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs.snapshot().count("session.ibp.active") > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let snap = obs.snapshot();
    assert_eq!(snap.count("session.ibp.active"), 0);
    assert_eq!(snap.count("server.active_conns"), 0);
    assert_eq!(snap.count("session.active"), 0);

    server.shutdown();
}
