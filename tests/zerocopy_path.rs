//! Byte-equivalence and fault properties of the zero-copy GET path
//! (DESIGN.md §14). The contract under test: for every size, the
//! `sendfile` fast path and the pooled-buffer loop put *exactly* the same
//! bytes on the wire; a throttled socket (short writes) corrupts neither;
//! and a mid-transfer capability withdrawal demotes the flow to the
//! pooled loop without dropping, duplicating, or reordering a byte.

#![cfg(unix)]

use nest::core::dispatcher::{BackendSource, SocketSink};
use nest::obs::Obs;
use nest::storage::{
    AclTable, LocalFsBackend, ReclaimPolicy, StorageBackend, StorageManager, VPath,
};
use nest::transfer::fault::{FaultBudget, FaultingSource, RetryPolicy};
use nest::transfer::flow::{DataSink, FlowMeta};
use nest::transfer::manager::{ModelSelection, SchedPolicy, TransferConfig, TransferManager};
use nest::transfer::ModelKind;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const CHUNK: usize = 64 * 1024;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nest-zc-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pattern(len: u64) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

fn storage_with(dir: &Path, files: &[(String, Vec<u8>)]) -> Arc<StorageManager> {
    let backend = Arc::new(
        LocalFsBackend::new(dir)
            .unwrap()
            .with_handle_cache_capacity(64),
    );
    for (name, body) in files {
        let p = VPath::parse(name).unwrap();
        backend.create(&p).unwrap();
        backend.write_at(&p, 0, body).unwrap();
    }
    Arc::new(
        StorageManager::new(
            backend as Arc<dyn StorageBackend>,
            AclTable::open_by_default(),
            u64::MAX / 4,
            ReclaimPolicy::Lru,
        )
        .with_lots_disabled(),
    )
}

fn engine(zerocopy: bool, obs: &Arc<Obs>) -> TransferManager {
    TransferManager::new(TransferConfig {
        policy: SchedPolicy::Fcfs,
        model: ModelSelection::Fixed(ModelKind::Events),
        chunk_size: CHUNK,
        zerocopy,
        obs: Some(Arc::clone(obs)),
        ..TransferConfig::default()
    })
}

/// Runs one GET over a real TCP connection and returns every byte the
/// client side received (header + body). `drip` throttles the reader to
/// small reads with pauses, filling the sender's socket buffer so the
/// write side sees genuine short writes / partial `sendfile` returns.
fn socket_get(
    tm: &TransferManager,
    obs: &Arc<Obs>,
    storage: &Arc<StorageManager>,
    path: &str,
    len: u64,
    head: &[u8],
    drip: bool,
) -> Vec<u8> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reader = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut out = Vec::new();
        if drip {
            let mut buf = [0u8; 4096];
            loop {
                match conn.read(&mut buf).unwrap() {
                    0 => break,
                    n => out.extend_from_slice(&buf[..n]),
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        } else {
            conn.read_to_end(&mut out).unwrap();
        }
        out
    });
    let stream = TcpStream::connect(addr).unwrap();
    let fd = stream.as_raw_fd();
    let sink = SocketSink::new(stream, head.to_vec())
        .with_raw_fd(fd)
        .with_coalesce_counter(obs.metrics.counter("transfer.zerocopy.writev_coalesced"));
    let src = BackendSource::new(Arc::clone(storage), VPath::parse(path).unwrap(), 0, len);
    let meta = FlowMeta::new(tm.next_flow_id(), "get", Some(len));
    let moved = tm
        .submit(meta, Box::new(src), Box::new(sink))
        .wait()
        .unwrap();
    assert_eq!(moved, len, "flow must move the full range");
    reader.join().unwrap()
}

/// The property the ablation switch promises: `zerocopy(false)` and
/// `zerocopy(true)` are indistinguishable on the wire at every size that
/// straddles a chunk or syscall boundary.
#[test]
fn sendfile_and_pooled_paths_are_byte_identical() {
    let sizes: [u64; 6] = [
        0,
        1,
        CHUNK as u64 - 1,
        CHUNK as u64,
        CHUNK as u64 + 1,
        3 * 1024 * 1024 + 123,
    ];
    let dir = scratch("equiv");
    let files: Vec<(String, Vec<u8>)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| (format!("/f{i}.dat"), pattern(n)))
        .collect();
    let storage = storage_with(&dir, &files);
    let obs_fast = Obs::new();
    let obs_slow = Obs::new();
    let fast = engine(true, &obs_fast);
    let slow = engine(false, &obs_slow);

    for (i, &n) in sizes.iter().enumerate() {
        let path = format!("/f{i}.dat");
        let head = format!("HEAD {n}\r\n\r\n").into_bytes();
        let mut expect = head.clone();
        expect.extend_from_slice(&files[i].1);
        let via_fast = socket_get(&fast, &obs_fast, &storage, &path, n, &head, false);
        let via_slow = socket_get(&slow, &obs_slow, &storage, &path, n, &head, false);
        assert!(via_fast == expect, "zerocopy(true) diverged at size {n}");
        assert!(via_slow == expect, "zerocopy(false) diverged at size {n}");
    }

    // The large transfers genuinely took the kernel path…
    let snap = obs_fast.snapshot();
    assert!(
        snap.count("transfer.zerocopy.sendfile_flows") >= 1,
        "fast path never engaged"
    );
    // …and nothing was demoted: every capability stayed granted.
    assert_eq!(snap.count("transfer.zerocopy.fallbacks"), 0);
    // Header+first-chunk coalescing fired for each non-empty body.
    assert!(snap.count("transfer.zerocopy.writev_coalesced") >= 5);
    // The ablation config never touched the fast path at all.
    let snap = obs_slow.snapshot();
    assert_eq!(snap.count("transfer.zerocopy.sendfile_flows"), 0);
    assert_eq!(snap.count("transfer.zerocopy.fallbacks"), 0);

    fast.shutdown();
    slow.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reader that drains in 4 KiB sips keeps the sender's socket buffer
/// full, so both the pooled `write_all` loop and the `sendfile` loop see
/// short writes mid-body. Nothing may be dropped or reordered.
#[test]
fn throttled_socket_short_writes_corrupt_neither_path() {
    let n: u64 = 3 * 1024 * 1024;
    let dir = scratch("drip");
    let files = vec![("/slow.dat".to_owned(), pattern(n))];
    let storage = storage_with(&dir, &files);
    let head = b"HEAD drip\r\n\r\n".to_vec();
    let mut expect = head.clone();
    expect.extend_from_slice(&files[0].1);

    for zerocopy in [true, false] {
        let obs = Obs::new();
        let tm = engine(zerocopy, &obs);
        let got = socket_get(&tm, &obs, &storage, "/slow.dat", n, &head, true);
        assert!(
            got == expect,
            "zerocopy({zerocopy}) corrupted a throttled stream"
        );
        tm.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A retryable sink with a raw descriptor: writes land in a local file
/// (sendfile to a regular file is legal on Linux), and `reset` truncates
/// so a transient mid-flow fault can replay from byte 0.
struct FileSink {
    file: std::fs::File,
}

impl DataSink for FileSink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        Ok(())
    }

    fn raw_fd(&mut self) -> Option<std::os::unix::io::RawFd> {
        Some(self.file.as_raw_fd())
    }
}

/// Mid-transfer capability withdrawal: the flow engages the fast path,
/// the source then revokes its window and injects one transient read
/// fault. The flow must demote, retry, and deliver the exact bytes — no
/// partial output, no duplicated prefix — while the fallback counter
/// records the demotion.
#[test]
fn mid_transfer_withdrawal_falls_back_without_corruption() {
    let n: u64 = 2 * 1024 * 1024;
    let dir = scratch("fault");
    let files = vec![("/wobbly.dat".to_owned(), pattern(n))];
    let storage = storage_with(&dir, &files);
    let obs = Obs::new();
    let tm = engine(true, &obs);

    let inner = BackendSource::new(
        Arc::clone(&storage),
        VPath::parse("/wobbly.dat").unwrap(),
        0,
        n,
    );
    // Withdraw the window (and arm one transient fault) after 256 KiB.
    let src = FaultingSource::new(
        inner,
        256 * 1024,
        io::ErrorKind::ConnectionReset,
        FaultBudget::Times(1),
    );
    let out_path = dir.join("sunk.dat");
    let sink = FileSink {
        file: std::fs::File::create(&out_path).unwrap(),
    };
    let meta = FlowMeta::new(tm.next_flow_id(), "get", Some(n))
        .with_retry(RetryPolicy::standard().with_seed(0x2c));
    let moved = tm
        .submit(meta, Box::new(src), Box::new(sink))
        .wait()
        .unwrap();
    assert_eq!(moved, n);

    // Exact bytes: reset truncated the engaged-path prefix, the replay
    // rewrote the whole range once.
    let got = std::fs::read(&out_path).unwrap();
    assert!(got == files[0].1, "fallback+retry corrupted the output");

    let snap = obs.snapshot();
    assert!(
        snap.count("transfer.zerocopy.fallbacks") >= 1,
        "withdrawal must be counted as a fallback"
    );
    assert!(snap.count("transfer.retries") >= 1);
    assert_eq!(snap.count("transfer.failures"), 0);

    tm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
