//! Workspace-level integration tests through the `nest` facade crate:
//! behaviours that span several subsystem crates at once.

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::grid::Discovery;
use nest::jbos::{JbosFleet, SharedRoot};
use nest::proto::chirp::ChirpClient;
use nest::proto::ftp::FtpClient;
use nest::proto::gridftp::GridFtpClient;
use nest::proto::gsi::{GridMap, SimCa};
use nest::proto::http::HttpClient;

fn ca() -> SimCa {
    SimCa::new("Facade-CA", 0xACE)
}

fn start(name: &str) -> NestServer {
    let mut gm = GridMap::new();
    gm.add("/O=Grid/CN=User", "user");
    let config = NestConfig::builder(name).gsi(ca(), gm).build().unwrap();
    NestServer::start(config).unwrap()
}

#[test]
fn discovery_matches_live_server_ads() {
    let server = start("adtest");
    let discovery = Discovery::new();
    discovery.publish("adtest", server.dispatcher().storage_ad(&["chirp", "nfs"]));

    let request: nest::classad::ClassAd = r#"[
        Type = "StorageRequest"; NeedSpace = 1024;
        Requirements = other.Type == "Storage" &&
                       member("nfs", other.Protocols) ]"#
        .parse()
        .unwrap();
    let (key, ad) = discovery.best_match(&request).unwrap();
    assert_eq!(key, "adtest");
    assert_eq!(ad.eval("Name"), nest::classad::Value::str("adtest"));

    // A request needing a protocol the server lacks does not match.
    let bad: nest::classad::ClassAd = r#"[
        Type = "StorageRequest"; NeedSpace = 1024;
        Requirements = member("afs", other.Protocols) ]"#
        .parse()
        .unwrap();
    assert!(discovery.best_match(&bad).is_none());
    server.shutdown();
}

#[test]
fn nest_and_jbos_serve_equivalent_protocol_surfaces() {
    // The same client code must work against NeST and against the JBOS
    // baseline (that equivalence is what makes the Figure 3 comparison
    // meaningful).
    let nest_server = start("nest-vs-jbos");
    nest_server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();
    let fleet = JbosFleet::start(SharedRoot::in_memory()).unwrap();

    let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();

    for (label, http_addr, ftp_addr) in [
        (
            "nest",
            nest_server.http_addr.unwrap(),
            nest_server.ftp_addr.unwrap(),
        ),
        ("jbos", fleet.httpd.addr(), fleet.ftpd.addr()),
    ] {
        let mut http = HttpClient::connect(http_addr).unwrap();
        assert_eq!(http.put_bytes("/x.bin", &body).unwrap(), 201, "{}", label);
        assert_eq!(http.get_bytes("/x.bin").unwrap(), body, "{}", label);

        let mut ftp = FtpClient::connect(ftp_addr).unwrap();
        ftp.login("anonymous", "t@").unwrap();
        assert_eq!(ftp.retr_bytes("/x.bin").unwrap(), body, "{}", label);
        ftp.quit().unwrap();
    }

    // The one asymmetry the paper highlights: only NeST has lots.
    let mut nest_chirp = ChirpClient::connect(nest_server.chirp_addr.unwrap()).unwrap();
    nest_chirp
        .authenticate(&ca().issue("/O=Grid/CN=User"))
        .unwrap();
    assert!(nest_chirp.lot_create(1 << 20, 60).is_ok());
    let mut jbos_chirp = ChirpClient::connect(fleet.chirpd.addr()).unwrap();
    assert!(jbos_chirp.lot_create(1 << 20, 60).is_err());

    fleet.shutdown();
    nest_server.shutdown();
}

#[test]
fn gridftp_third_party_moves_between_nest_and_back() {
    // Round trip: A → B → A, contents intact, via two third-party legs.
    let a = start("site-a");
    let b = start("site-b");
    a.grant_default_lot("anonymous", 16 << 20, 3600).unwrap();
    b.grant_default_lot("anonymous", 16 << 20, 3600).unwrap();

    let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 247) as u8).collect();
    let mut stage = FtpClient::connect(a.ftp_addr.unwrap()).unwrap();
    stage.login("anonymous", "x").unwrap();
    stage.stor_bytes("/orig.bin", &payload).unwrap();

    let mut ca_client = GridFtpClient::connect(a.gridftp_addr.unwrap()).unwrap();
    let mut cb_client = GridFtpClient::connect(b.gridftp_addr.unwrap()).unwrap();
    ca_client.ftp().login("anonymous", "x").unwrap();
    cb_client.ftp().login("anonymous", "x").unwrap();

    nest::proto::gridftp::third_party(&mut ca_client, "/orig.bin", &mut cb_client, "/hop.bin")
        .unwrap();
    nest::proto::gridftp::third_party(&mut cb_client, "/hop.bin", &mut ca_client, "/back.bin")
        .unwrap();

    assert_eq!(stage.retr_bytes("/back.bin").unwrap(), payload);
    a.shutdown();
    b.shutdown();
}

#[test]
fn lot_expiry_is_best_effort_across_protocols() {
    // A file written under a lot remains readable after the lot expires
    // (best-effort) and disappears only when a new lot needs the space —
    // observable over any protocol.
    let server = start("expiry");
    // A tiny appliance: 1 MB total.
    let dispatcher = server.dispatcher();
    let _ = dispatcher; // default capacity is large; use the admin path:
    server.grant_default_lot("anonymous", 600 << 10, 1).unwrap(); // 600 KB, 1 s

    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    let body = vec![5u8; 500 << 10];
    assert_eq!(http.put_bytes("/stayput.bin", &body).unwrap(), 201);

    // Wait out the lot's one-second duration.
    std::thread::sleep(std::time::Duration::from_millis(1500));

    // Best-effort: still readable.
    assert_eq!(http.get_bytes("/stayput.bin").unwrap().len(), body.len());

    // New writes are refused (the only lot is expired).
    assert_eq!(http.put_bytes("/new.bin", b"x").unwrap(), 507);
    server.shutdown();
}

#[test]
fn simulation_reproduces_paper_shapes() {
    use nest::simenv::server::{SimModel, SimPolicy};
    use nest::simenv::{ClientSpec, PlatformProfile, SimServer};
    use nest::transfer::ModelKind;

    // Figure 3 shape: cheap protocols ~2x the expensive ones.
    let mut peak = 0.0f64;
    let mut half = 0.0f64;
    for (proto, slot) in [("http", &mut peak), ("gridftp", &mut half)] {
        let clients = ClientSpec::paper_single_protocol(proto);
        let mut s = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Fcfs,
            SimModel::Fixed(ModelKind::Events),
        );
        s.warm_cache(&clients);
        *slot = s.run(&clients, 5.0).bandwidth(proto);
    }
    let ratio = peak / half;
    assert!(ratio > 1.6 && ratio < 2.6, "peak/half ratio {}", ratio);
}
