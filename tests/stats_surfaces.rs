//! The same metrics snapshot must be visible on every monitoring surface:
//! `GET /nest/stats`, the Chirp `stats` command, and the shared [`Obs`]
//! registry handed in through the config builder ("what is this appliance
//! doing, and how fast is it doing it?").

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::obs::{MetricsSnapshot, Obs};
use nest::proto::chirp::ChirpClient;
use nest::proto::http::HttpClient;
use std::collections::BTreeMap;
use std::sync::Arc;

#[test]
fn http_and_chirp_stats_agree_after_workload() {
    let obs = Obs::new();
    let config = NestConfig::builder("stats-e2e")
        .obs(Arc::clone(&obs))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();

    // Move some bytes: one PUT and one GET of 200 000 bytes over HTTP.
    let body: Vec<u8> = (0..200_000u32).map(|i| (i % 233) as u8).collect();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/w.bin", &body).unwrap(), 201);
    assert_eq!(http.get_bytes("/w.bin").unwrap(), body);

    // Surface 1: the HTTP monitoring endpoint.
    let text = String::from_utf8(http.get_bytes("/nest/stats").unwrap()).unwrap();
    let via_http: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&text);

    // Surface 2: the Chirp session-level `stats` command.
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    let lines = chirp.stats().unwrap();
    let via_chirp: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&lines.join("\n"));

    // The transfer layer saw the PUT and the GET (>= 400 000 bytes), and
    // both surfaces report the identical count: stats reads themselves are
    // not transfers, so the counter is stable between the two reads.
    let total = via_http["transfer.bytes_total"];
    assert!(total >= 400_000.0, "transfer.bytes_total = {}", total);
    assert_eq!(total, via_chirp["transfer.bytes_total"]);
    assert_eq!(
        via_http["transfer.class.http.bytes"],
        via_chirp["transfer.class.http.bytes"]
    );

    // Failure-domain instruments are registered eagerly, so a healthy
    // appliance renders them as explicit zeros on every surface.
    for key in [
        "transfer.retries",
        "transfer.aborted",
        "transfer.deadline_exceeded",
        "transfer.cancelled",
    ] {
        assert_eq!(via_http[key], 0.0, "{}", key);
        assert_eq!(via_chirp[key], 0.0, "{}", key);
    }

    // Per-layer highlights on the rendered form.
    assert!(via_http["dispatch.op.put"] >= 1.0);
    assert!(via_http["dispatch.op.get"] >= 1.0);
    assert_eq!(via_http["storage.lot.committed_bytes"], 200_000.0);
    assert_eq!(via_http["storage.lot.count"], 1.0);
    assert!(via_http["transfer.latency_us.count"] >= 2.0);
    assert!(via_http["server.conns_total"] >= 1.0);

    // Surface 3: the registry passed through the builder is the same one
    // the appliance writes to — embedders need no endpoint at all.
    let snap = obs.snapshot();
    assert_eq!(snap.count("transfer.bytes_total") as f64, total);

    server.shutdown();
}

#[test]
fn lock_contention_metrics_surface_on_http_and_chirp() {
    // The lock shim's per-class contention profile must ride the same
    // snapshot as every other metric. Two claims:
    //
    //  1. a real transfer workload touches named locks, so
    //     `lock.transfer.stats.acquires` is nonzero after a PUT/GET;
    //  2. a provably *contended* class shows a nonzero
    //     `lock.<class>.contended` on both HTTP and Chirp.
    //
    // For (2) we manufacture contention on a dedicated test class rather
    // than racing real appliance locks: the class table is process-global,
    // so the provider installed by the dispatcher publishes it all the
    // same — that is exactly the aggregation property being tested.
    let obs = Obs::new();
    let config = NestConfig::builder("stats-locks")
        .obs(Arc::clone(&obs))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();

    // (1) Real workload over HTTP.
    let body: Vec<u8> = (0..100_000u32).map(|i| (i % 199) as u8).collect();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/locks.bin", &body).unwrap(), 201);
    assert_eq!(http.get_bytes("/locks.bin").unwrap(), body);

    // (2) Deterministic contention on a test-owned class. The holder
    // releases only after the shim has *recorded* the blocked attempt
    // (note_contended fires before the blocking wait), so the counter is
    // guaranteed nonzero without sleeping and hoping.
    static CONTEND: parking_lot::Mutex<u32> =
        parking_lot::Mutex::named("test.stats.contend", 990, 0);
    let contended_count = || {
        parking_lot::lockstats::snapshot()
            .into_iter()
            .find(|s| s.name == "test.stats.contend")
            .map(|s| s.contended)
            .unwrap_or(0)
    };
    {
        let guard = CONTEND.lock();
        let blocked = std::thread::spawn(|| {
            let mut g = CONTEND.lock();
            *g += 1;
        });
        while contended_count() == 0 {
            std::thread::yield_now();
        }
        drop(guard);
        blocked.join().unwrap();
    }
    assert!(contended_count() >= 1);

    // Both rendered surfaces carry the lock profile.
    let text = String::from_utf8(http.get_bytes("/nest/stats").unwrap()).unwrap();
    let via_http: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&text);
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    let lines = chirp.stats().unwrap();
    let via_chirp: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&lines.join("\n"));

    for (name, surface) in [("http", &via_http), ("chirp", &via_chirp)] {
        assert!(
            surface["lock.transfer.stats.acquires"] >= 1.0,
            "{name}: transfer.stats lock never acquired during a transfer"
        );
        assert!(
            surface["lock.test.stats.contend.contended"] >= 1.0,
            "{name}: contended acquisition not surfaced"
        );
        // Contended implies waited: wait time is tracked (key present),
        // and the acquire that blocked is also counted.
        assert!(surface["lock.test.stats.contend.acquires"] >= 2.0, "{name}");
        assert!(
            surface.contains_key("lock.test.stats.contend.wait_us"),
            "{name}"
        );
    }

    server.shutdown();
}

#[test]
fn memtier_counters_ride_every_surface() {
    // With the memory tier enabled, `memtier.*` instruments must appear on
    // all three monitoring surfaces — HTTP, Chirp, and the embedder's
    // registry — and the ClassAd must advertise the tier to matchmakers.
    let obs = Obs::new();
    let config = NestConfig::builder("stats-memtier")
        .obs(Arc::clone(&obs))
        .ram_tier_bytes(8 << 20)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();

    // One PUT, three GETs: the repeat accesses promote the object and the
    // last GET is served from RAM (a tier hit). The residency hint may
    // promote on the first GET already, so assert floors, not exact counts.
    let body: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/tiered.bin", &body).unwrap(), 201);
    for _ in 0..3 {
        assert_eq!(http.get_bytes("/tiered.bin").unwrap(), body);
    }

    let text = String::from_utf8(http.get_bytes("/nest/stats").unwrap()).unwrap();
    let via_http: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&text);
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    let lines = chirp.stats().unwrap();
    let via_chirp: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&lines.join("\n"));

    assert!(via_http["memtier.hits"] >= 1.0, "no tier hit surfaced");
    assert!(via_http["memtier.misses"] >= 1.0, "no tier miss surfaced");
    assert_eq!(via_http["memtier.bytes"], 200_000.0);
    assert!(via_http["memtier.promotions"] >= 1.0);
    assert!(
        via_http["memtier.zc_bypassed"] >= 1.0,
        "RAM serve not counted"
    );
    for key in ["memtier.hits", "memtier.misses", "memtier.bytes"] {
        assert_eq!(via_http[key], via_chirp[key], "{} disagrees", key);
    }

    // Surface 3: the embedder's registry.
    let snap = obs.snapshot();
    assert_eq!(snap.count("memtier.hits") as f64, via_http["memtier.hits"]);
    assert_eq!(
        snap.count("memtier.misses") as f64,
        via_http["memtier.misses"]
    );

    // And the matchmaking surface: the storage ad advertises the tier.
    let ad = server.dispatcher().storage_ad(&["http"]);
    match ad.eval("RamTierBytes") {
        nest::classad::Value::Int(n) => assert_eq!(n, 200_000),
        other => panic!("RamTierBytes missing: {:?}", other),
    }
    match ad.eval("RamTierHitPct") {
        nest::classad::Value::Real(p) => assert!((0.0..=100.0).contains(&p), "{}", p),
        other => panic!("RamTierHitPct missing: {:?}", other),
    }

    server.shutdown();
}

#[test]
fn ablated_tier_registers_nothing() {
    // `ram_tier_bytes(0)` is the ablation: not a tier with zero budget but
    // *no tier at all* — no `memtier.*` instrument may appear on any
    // surface, so the ablated appliance is indistinguishable from the
    // pre-tier data path (the Fig. 6 control).
    let obs = Obs::new();
    let config = NestConfig::builder("stats-ablated")
        .obs(Arc::clone(&obs))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();
    let body = vec![7u8; 50_000];
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/plain.bin", &body).unwrap(), 201);
    for _ in 0..3 {
        assert_eq!(http.get_bytes("/plain.bin").unwrap(), body);
    }
    let text = String::from_utf8(http.get_bytes("/nest/stats").unwrap()).unwrap();
    let stats: BTreeMap<String, f64> = MetricsSnapshot::parse_text(&text);
    assert!(
        !stats.keys().any(|k| k.starts_with("memtier.")),
        "ablated appliance leaked tier instruments: {:?}",
        stats
            .keys()
            .filter(|k| k.starts_with("memtier."))
            .collect::<Vec<_>>()
    );
    let ad = server.dispatcher().storage_ad(&["http"]);
    assert!(
        matches!(ad.eval("RamTierBytes"), nest::classad::Value::Undefined),
        "ablated ad advertises a tier"
    );
    server.shutdown();
}

#[test]
fn stats_endpoint_needs_no_lot() {
    // The monitoring endpoint must answer even when nothing else works:
    // no lot has been granted, so a data PUT would be refused.
    let server = NestServer::start(NestConfig::builder("bare").build().unwrap()).unwrap();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/refused.bin", b"x").unwrap(), 507);
    let text = String::from_utf8(http.get_bytes("/nest/stats").unwrap()).unwrap();
    let stats = MetricsSnapshot::parse_text(&text);
    // The refused PUT is visible as a dispatcher error.
    assert!(stats["dispatch.errors"] >= 1.0);
    assert_eq!(stats["transfer.bytes_total"], 0.0);
    server.shutdown();
}
