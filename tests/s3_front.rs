//! End-to-end exercise of the S3 plugin front: a protocol the paper's
//! authors never saw, served through the same dispatcher, lots, and
//! session layer as the six 2002 fronts. Signed PUTs land in the mapped
//! user's lot, ListObjectsV2 rolls up common prefixes, GETs round-trip
//! bytes, and DELETE releases the lot charge — visible through the same
//! storage-manager inspection a Chirp client would use.

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::obs::Obs;
use nest::proto::gsi::{GridMap, SimCa};
use nest::proto::http::HttpMethod;
use nest::proto::s3::S3Client;
use nest::s3front::S3Front;
use nest::storage::lot::LotId;
use nest::storage::Principal;
use std::collections::BTreeMap;
use std::sync::Arc;

const SUBJECT: &str = "/O=Grid/OU=wisc.edu/CN=Alice Researcher";

fn start_server() -> (NestServer, SimCa, u64) {
    let obs = Obs::new();
    let ca = SimCa::new("TestCA", 0x5EED_CAFE);
    let mut gridmap = GridMap::new();
    gridmap.add(SUBJECT, "alice");
    let config = NestConfig::builder("s3-e2e")
        .obs(Arc::clone(&obs))
        .gsi(ca.clone(), gridmap)
        .front(|d| Arc::new(S3Front::new(Arc::clone(d))))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    let lot = server.grant_default_lot("alice", 1 << 20, 3600).unwrap();
    (server, ca, lot)
}

#[test]
fn signed_put_list_get_delete_through_the_lot() {
    let (server, ca, lot) = start_server();
    let addr = server.front_addr("s3").expect("s3 front must be bound");
    let alice = Principal::user("alice");

    let mut client = S3Client::connect(addr)
        .unwrap()
        .with_credential(ca.issue(SUBJECT));

    // Bucket = top-level directory.
    client.create_bucket("data").unwrap();
    assert!(client.list_buckets().unwrap().contains(&"data".to_owned()));

    // Signed PUTs; nested keys materialize their directories.
    client
        .put_object("data", "logs/app.log", b"hello s3")
        .unwrap();
    client
        .put_object("data", "logs/2026/deep.log", b"deep")
        .unwrap();
    client.put_object("data", "readme.txt", b"top").unwrap();

    // The writes are charged to alice's lot — the same accounting every
    // other protocol's writes flow through.
    let storage = server.dispatcher().storage();
    let used_after_put = storage.lot_stat(&alice, LotId(lot)).unwrap().used;
    assert_eq!(used_after_put, (8 + 4 + 3) as u64);

    // ListObjectsV2: prefix narrows, delimiter rolls up.
    let by_prefix = client.list("data", "logs/", Some("/")).unwrap();
    assert_eq!(
        by_prefix
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>(),
        vec!["logs/app.log"]
    );
    assert_eq!(by_prefix.common_prefixes, vec!["logs/2026/".to_owned()]);

    let flat = client.list("data", "", None).unwrap();
    assert_eq!(
        flat.objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>(),
        vec!["logs/2026/deep.log", "logs/app.log", "readme.txt"]
    );
    assert!(flat.common_prefixes.is_empty());

    // GET/HEAD round-trips.
    assert_eq!(
        client.get_object("data", "logs/app.log").unwrap(),
        b"hello s3"
    );
    assert_eq!(client.head_object("data", "readme.txt").unwrap(), 3);

    // DELETE releases the lot charge.
    client.delete_object("data", "logs/app.log").unwrap();
    let used_after_delete = storage.lot_stat(&alice, LotId(lot)).unwrap().used;
    assert_eq!(used_after_delete, used_after_put - 8);

    server.shutdown();
}

#[test]
fn paginated_list_walks_every_key_exactly_once() {
    let (server, ca, _lot) = start_server();
    let addr = server.front_addr("s3").unwrap();
    let mut client = S3Client::connect(addr)
        .unwrap()
        .with_credential(ca.issue(SUBJECT));
    client.create_bucket("pag").unwrap();

    // 2.5× the page size, written in reverse so pagination order is the
    // listing's lexicographic sort, not insertion order.
    const PAGE: usize = 10;
    let total = PAGE * 5 / 2;
    let mut expect: Vec<String> = (0..total).map(|i| format!("key-{i:03}")).collect();
    for key in expect.iter().rev() {
        client.put_object("pag", key, b"x").unwrap();
    }
    expect.sort();

    let mut seen = Vec::new();
    let mut token: Option<String> = None;
    let mut pages = 0;
    loop {
        let page = client
            .list_page("pag", "", None, Some(PAGE), token.as_deref(), None)
            .unwrap();
        assert!(page.listing.objects.len() <= PAGE);
        seen.extend(page.listing.objects.iter().map(|o| o.key.clone()));
        pages += 1;
        if page.is_truncated {
            token = Some(page.next_token.expect("truncated page must carry a token"));
        } else {
            assert!(page.next_token.is_none());
            break;
        }
    }
    assert_eq!(pages, 3, "25 keys at 10/page is three pages");
    // Every key exactly once, in order: no duplicates, none skipped.
    assert_eq!(seen, expect);
    server.shutdown();
}

#[test]
fn common_prefixes_count_against_max_keys() {
    let (server, ca, _lot) = start_server();
    let addr = server.front_addr("s3").unwrap();
    let mut client = S3Client::connect(addr)
        .unwrap()
        .with_credential(ca.issue(SUBJECT));
    client.create_bucket("mix").unwrap();
    client.put_object("mix", "a/1", b"x").unwrap();
    client.put_object("mix", "b/1", b"x").unwrap();
    client.put_object("mix", "c.txt", b"x").unwrap();
    client.put_object("mix", "d.txt", b"x").unwrap();

    // Page of 3 under a delimiter: two rolled-up prefixes plus one key
    // fill the page (prefixes count against max-keys, as in real S3).
    let p1 = client
        .list_page("mix", "", Some("/"), Some(3), None, None)
        .unwrap();
    assert_eq!(p1.listing.common_prefixes, vec!["a/", "b/"]);
    assert_eq!(
        p1.listing
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>(),
        vec!["c.txt"]
    );
    assert!(p1.is_truncated);

    let p2 = client
        .list_page(
            "mix",
            "",
            Some("/"),
            Some(3),
            p1.next_token.as_deref(),
            None,
        )
        .unwrap();
    assert_eq!(
        p2.listing
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>(),
        vec!["d.txt"]
    );
    assert!(p2.listing.common_prefixes.is_empty());
    assert!(!p2.is_truncated);
    server.shutdown();
}

#[test]
fn max_keys_validation_and_zero_page() {
    let (server, ca, _lot) = start_server();
    let addr = server.front_addr("s3").unwrap();
    let mut client = S3Client::connect(addr)
        .unwrap()
        .with_credential(ca.issue(SUBJECT));
    client.create_bucket("v").unwrap();
    client.put_object("v", "a", b"x").unwrap();
    client.put_object("v", "b", b"x").unwrap();

    // Non-numeric and negative max-keys are refused, not silently coerced.
    for bad in ["abc", "-1"] {
        let mut q = BTreeMap::new();
        q.insert("list-type".into(), "2".into());
        q.insert("max-keys".into(), bad.into());
        let resp = client.raw(HttpMethod::Get, "/v", q, b"").unwrap();
        assert_eq!(resp.status, 400, "max-keys={bad}");
        assert_eq!(resp.error_code().as_deref(), Some("InvalidArgument"));
    }

    // A garbage continuation token is likewise InvalidArgument.
    let mut q = BTreeMap::new();
    q.insert("list-type".into(), "2".into());
    q.insert("continuation-token".into(), "not-hex!".into());
    let resp = client.raw(HttpMethod::Get, "/v", q, b"").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(resp.error_code().as_deref(), Some("InvalidArgument"));

    // max-keys=0 is a legal empty page that still reports remaining keys.
    let p = client
        .list_page("v", "", None, Some(0), None, None)
        .unwrap();
    assert!(p.listing.objects.is_empty());
    assert!(p.listing.common_prefixes.is_empty());
    assert!(p.is_truncated, "keys remain beyond the empty page");

    // start-after positions the listing without a continuation token.
    let p = client
        .list_page("v", "", None, None, None, Some("a"))
        .unwrap();
    assert_eq!(
        p.listing
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .collect::<Vec<_>>(),
        vec!["b"]
    );
    assert!(!p.is_truncated);
    server.shutdown();
}

#[test]
fn error_dialect_and_auth_rejection() {
    let (server, ca, _lot) = start_server();
    let addr = server.front_addr("s3").unwrap();

    // A forged signature is refused with S3's AccessDenied document.
    let mut forged_cred = ca.issue(SUBJECT);
    forged_cred.tag ^= 1;
    let mut forged = S3Client::connect(addr)
        .unwrap()
        .with_credential(forged_cred);
    let resp = forged
        .raw(HttpMethod::Get, "/", BTreeMap::new(), b"")
        .unwrap();
    assert_eq!(resp.status, 403);
    assert_eq!(resp.error_code().as_deref(), Some("AccessDenied"));

    // A missing object is NoSuchKey; a missing bucket is NoSuchBucket.
    let mut client = S3Client::connect(addr)
        .unwrap()
        .with_credential(ca.issue(SUBJECT));
    client.create_bucket("b").unwrap();
    let resp = client
        .raw(HttpMethod::Get, "/b/nope", BTreeMap::new(), b"")
        .unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(resp.error_code().as_deref(), Some("NoSuchKey"));

    let mut query = BTreeMap::new();
    query.insert("list-type".into(), "2".into());
    let resp = client
        .raw(HttpMethod::Get, "/missing-bucket", query, b"")
        .unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(resp.error_code().as_deref(), Some("NoSuchBucket"));

    // PUT into a missing bucket is refused up front.
    let err = client.put_object("missing-bucket", "k", b"x").unwrap_err();
    assert!(err.to_string().contains("404"), "got {err}");

    server.shutdown();
}
