//! End-to-end failure semantics through the dispatcher: a failed PUT must
//! leave *nothing* behind — no partial file in the namespace and no
//! residual lot charge — while retried transients recover invisibly and
//! every outcome is visible on the monitoring surfaces.

use nest::core::config::NestConfig;
use nest::core::dispatcher::Dispatcher;
use nest::obs::Obs;
use nest::proto::request::{NestRequest, NestResponse};
use nest::storage::{
    AclTable, LotId, MemBackend, Principal, ReclaimPolicy, StorageManager, VPath, WritePolicy,
};
use nest::transfer::fault::{FaultBudget, FaultingSource, RetryPolicy};
use nest::transfer::flow::PatternSource;
use proptest::prelude::*;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn alice() -> Principal {
    Principal::user("alice")
}

fn dispatcher_with(obs: &Arc<Obs>) -> Dispatcher {
    let config = NestConfig::builder("fault-e2e")
        .obs(Arc::clone(obs))
        .retry(RetryPolicy::standard().with_seed(0xe2e))
        .build()
        .unwrap();
    let d = Dispatcher::new(&config).unwrap();
    // A lot so PUTs are admitted.
    let resp = d.execute_sync(
        &alice(),
        "chirp",
        &NestRequest::LotCreate {
            capacity: 1 << 20,
            duration: 3600,
        },
    );
    assert!(matches!(resp, NestResponse::OkLot(_)), "{:?}", resp);
    d
}

#[test]
fn failed_put_leaves_no_partial_file_and_no_lot_charge() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let size = 200_000u64;
    let vpath = d.admit_put(&who, "chirp", "/doomed", Some(size)).unwrap();
    // Admission charged the lot.
    assert_eq!(d.storage().committed_bytes(), size);
    // The source dies permanently after 64 KiB: some chunks reach disk,
    // then the transfer fails terminally.
    let src = FaultingSource::new(
        PatternSource::new(size),
        64 * 1024,
        io::ErrorKind::UnexpectedEof,
        FaultBudget::Always,
    );
    let err = d
        .transfer_put(&who, "chirp", &vpath, Box::new(src), Some(size))
        .expect_err("fault must surface");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    // Abort-cleanup ran: no partial file in the namespace…
    let stat = d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/doomed".into(),
        },
    );
    assert!(
        matches!(stat, NestResponse::Error(_)),
        "partial file survived: {:?}",
        stat
    );
    // …and no residual lot charge (would otherwise leak until expiry).
    assert_eq!(d.storage().committed_bytes(), 0, "lot charge leaked");
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.aborted") >= 1);
    assert!(snap.count("transfer.failures") >= 1);
    assert_eq!(snap.count("transfer.queue_depth"), 0);
    d.shutdown();
}

#[test]
fn transient_put_fault_retries_to_success() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let size = 150_000u64;
    let vpath = d.admit_put(&who, "chirp", "/bumpy", Some(size)).unwrap();
    // One transient hiccup at 32 KiB; the appliance-default retry policy
    // (stamped by the dispatcher) replays the flow from the start.
    let src = FaultingSource::new(
        PatternSource::new(size),
        32 * 1024,
        io::ErrorKind::ConnectionReset,
        FaultBudget::Times(1),
    );
    let moved = d
        .transfer_put(&who, "chirp", &vpath, Box::new(src), Some(size))
        .unwrap();
    assert_eq!(moved, size);
    // The stored file is complete and correctly sized.
    match d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/bumpy".into(),
        },
    ) {
        NestResponse::OkSize(n) => assert_eq!(n, size),
        other => panic!("{:?}", other),
    }
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.retries") >= 1);
    assert_eq!(snap.count("transfer.failures"), 0);
    d.shutdown();
}

#[test]
fn storage_ad_reports_failure_domain_counters() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let vpath = d.admit_put(&who, "chirp", "/ad", Some(1000)).unwrap();
    let src = FaultingSource::new(
        PatternSource::new(1000),
        0,
        io::ErrorKind::PermissionDenied,
        FaultBudget::Always,
    );
    let _ = d.transfer_put(&who, "chirp", &vpath, Box::new(src), Some(1000));
    let ad = d.storage_ad(&["chirp"]);
    match ad.eval("TransferFailures") {
        nest::classad::Value::Int(n) => assert!(n >= 1, "TransferFailures = {}", n),
        other => panic!("TransferFailures missing: {:?}", other),
    }
    match ad.eval("TransferRetries") {
        nest::classad::Value::Int(n) => assert!(n >= 0),
        other => panic!("TransferRetries missing: {:?}", other),
    }
    // The failed PUT released its charge, so the ad advertises zero
    // committed bytes — matchmakers see honest occupancy.
    match ad.eval("LotBytesCommitted") {
        nest::classad::Value::Int(n) => assert_eq!(n, 0),
        other => panic!("LotBytesCommitted missing: {:?}", other),
    }
    d.shutdown();
}

#[test]
fn transfer_deadline_config_bounds_a_stuck_put() {
    /// A source that never delivers its payload: each read trickles one
    /// byte per millisecond, so only a deadline can end the flow.
    struct Stuck;
    impl nest::transfer::DataSource for Stuck {
        fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_millis(1));
            buf[0] = 1;
            Ok(1)
        }
    }
    let obs = Obs::new();
    let config = NestConfig::builder("deadline-e2e")
        .obs(Arc::clone(&obs))
        .transfer_deadline(Some(Duration::from_millis(50)))
        .build()
        .unwrap();
    let d = Dispatcher::new(&config).unwrap();
    d.execute_sync(
        &alice(),
        "chirp",
        &NestRequest::LotCreate {
            capacity: 1 << 20,
            duration: 3600,
        },
    );
    let who = alice();
    let vpath = d.admit_put(&who, "chirp", "/stuck", None).unwrap();
    let err = d
        .transfer_put(&who, "chirp", &vpath, Box::new(Stuck), None)
        .expect_err("deadline must fire");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.deadline_exceeded") >= 1);
    // Cleanup ran for the stuck PUT as well.
    assert_eq!(d.storage().committed_bytes(), 0);
    d.shutdown();
}

// ---------------------------------------------------------------------------
// Memory-tier failure semantics (DESIGN.md §15): the lot guarantee extends
// into RAM, and a failed PUT releases tier bytes along with the lot charge.

const HOT_FILES: usize = 4;
const CHURN_FILES: usize = 12;
const OBJ: u64 = 8 * 1024;

/// A manager under an injected clock with a 64 KiB memory tier, a
/// guaranteed lot holding exactly `HOT_FILES` promoted residents, and
/// `CHURN_FILES` files whose backing lot has already expired — so every
/// later promotion of them is best-effort.
fn tiered_manager_with_expired_churn(clock: Arc<AtomicU64>) -> StorageManager {
    let c = Arc::clone(&clock);
    let sm = StorageManager::new(
        Arc::new(MemBackend::new()),
        AclTable::open_by_default(),
        1 << 20,
        ReclaimPolicy::ExpiredFirst,
    )
    .with_clock(Arc::new(move || c.load(Ordering::Relaxed)))
    .with_ram_tier(64 * 1024);
    let who = alice();
    clock.store(1000, Ordering::Relaxed);
    // Lot ids charge greedily in creation order: the guaranteed lot is
    // sized to hold exactly the hot files, so churn files land wholly in
    // the short-lived lot.
    sm.lot_create(&who, HOT_FILES as u64 * OBJ, 3600).unwrap();
    sm.lot_create(&who, CHURN_FILES as u64 * OBJ, 60).unwrap();
    for i in 0..HOT_FILES {
        let p = VPath::parse(&format!("/hot{i}")).unwrap();
        sm.begin_put(&who, "chirp", &p, OBJ).unwrap();
        sm.write_chunk(&who, &p, 0, &vec![b'h'; OBJ as usize])
            .unwrap();
    }
    for i in 0..CHURN_FILES {
        let p = VPath::parse(&format!("/churn{i}")).unwrap();
        sm.begin_put(&who, "chirp", &p, OBJ).unwrap();
        sm.write_chunk(&who, &p, 0, &vec![b'c'; OBJ as usize])
            .unwrap();
    }
    // Promote every hot file (second access within the window) while its
    // lot is live: the tier classifies them as guaranteed residents.
    for i in 0..HOT_FILES {
        let p = VPath::parse(&format!("/hot{i}")).unwrap();
        sm.begin_get(&who, "chirp", &p).unwrap();
        sm.begin_get(&who, "chirp", &p).unwrap();
        assert!(sm.tier_object(&p).is_some(), "/hot{i} not promoted");
    }
    assert_eq!(sm.mem_tier().guaranteed_bytes(), HOT_FILES as u64 * OBJ);
    // Past the churn lot's expiry: its files are now best-effort.
    clock.store(2000, Ordering::Relaxed);
    sm
}

/// Deterministic worst case: promoting every churn file (96 KiB of demand
/// against 32 KiB of headroom) must evict only best-effort entries —
/// the guaranteed residents survive with their bytes intact.
#[test]
fn best_effort_churn_never_evicts_guaranteed_residents() {
    let clock = Arc::new(AtomicU64::new(0));
    let sm = tiered_manager_with_expired_churn(Arc::clone(&clock));
    let who = alice();
    for i in 0..CHURN_FILES {
        let p = VPath::parse(&format!("/churn{i}")).unwrap();
        sm.begin_get(&who, "chirp", &p).unwrap();
        sm.begin_get(&who, "chirp", &p).unwrap();
    }
    let stats = sm.tier_stats();
    // Pressure-driven removals are `demotions` (coherence invalidations
    // are `evictions`); the churn must actually have forced some.
    assert!(stats.demotions > 0, "churn never pressured the tier");
    assert!(stats.bytes <= 64 * 1024, "budget breached: {}", stats.bytes);
    assert_eq!(sm.mem_tier().guaranteed_bytes(), HOT_FILES as u64 * OBJ);
    for i in 0..HOT_FILES {
        let p = VPath::parse(&format!("/hot{i}")).unwrap();
        assert!(sm.tier_object(&p).is_some(), "/hot{i} evicted by churn");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: for *any* interleaving of best-effort accesses, the
    /// guaranteed lot's tier bytes never drop below the guarantee and the
    /// budget is never breached — checked after every single access.
    #[test]
    fn guaranteed_tier_bytes_survive_any_churn_order(
        accesses in prop::collection::vec(0usize..CHURN_FILES, 1..200),
    ) {
        let clock = Arc::new(AtomicU64::new(0));
        let sm = tiered_manager_with_expired_churn(Arc::clone(&clock));
        let who = alice();
        for &i in &accesses {
            let p = VPath::parse(&format!("/churn{i}")).unwrap();
            sm.begin_get(&who, "chirp", &p).unwrap();
            prop_assert_eq!(
                sm.mem_tier().guaranteed_bytes(),
                HOT_FILES as u64 * OBJ,
                "guarantee violated after access to /churn{}", i
            );
            prop_assert!(sm.tier_stats().bytes <= 64 * 1024);
        }
        for i in 0..HOT_FILES {
            let p = VPath::parse(&format!("/hot{i}")).unwrap();
            prop_assert!(sm.tier_object(&p).is_some(), "/hot{} evicted", i);
        }
    }
}

/// End-to-end through the dispatcher: a failed PUT into a write-back lot
/// releases the lot charge AND the dirty tier bytes it had absorbed —
/// while an unrelated write-back resident keeps its deferred bytes and
/// still flushes cleanly afterwards.
#[test]
fn write_back_abort_releases_lot_charge_and_tier_bytes() {
    let obs = Obs::new();
    let config = NestConfig::builder("tier-fault-e2e")
        .obs(Arc::clone(&obs))
        .ram_tier_bytes(1 << 20)
        .retry(RetryPolicy::standard().with_seed(0xe2e))
        .build()
        .unwrap();
    let d = Dispatcher::new(&config).unwrap();
    let who = alice();
    let resp = d.execute_sync(
        &who,
        "chirp",
        &NestRequest::LotCreate {
            capacity: 1 << 20,
            duration: 3600,
        },
    );
    let NestResponse::OkLot(id) = resp else {
        panic!("{:?}", resp)
    };
    d.storage()
        .set_lot_write_policy(LotId(id), WritePolicy::WriteBack);

    // A healthy write-back PUT first: its bytes sit dirty in the tier.
    let kept = 10_000u64;
    let vkept = d.admit_put(&who, "chirp", "/kept", Some(kept)).unwrap();
    d.transfer_put(
        &who,
        "chirp",
        &vkept,
        Box::new(PatternSource::new(kept)),
        Some(kept),
    )
    .unwrap();
    assert_eq!(
        d.storage().tier_stats().dirty_bytes,
        kept,
        "write-back did not engage end-to-end"
    );

    // The doomed PUT absorbs 64 KiB into the tier before the source dies.
    let size = 200_000u64;
    let vpath = d
        .admit_put(&who, "chirp", "/doomed-wb", Some(size))
        .unwrap();
    assert_eq!(d.storage().committed_bytes(), kept + size);
    let src = FaultingSource::new(
        PatternSource::new(size),
        64 * 1024,
        io::ErrorKind::UnexpectedEof,
        FaultBudget::Always,
    );
    let err = d
        .transfer_put(&who, "chirp", &vpath, Box::new(src), Some(size))
        .expect_err("fault must surface");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

    // Abort released the lot charge AND every tier byte of the doomed
    // object — dirty or otherwise — while the healthy resident is intact.
    assert_eq!(d.storage().committed_bytes(), kept, "lot charge leaked");
    let stats = d.storage().tier_stats();
    assert_eq!(stats.dirty_bytes, kept, "doomed dirty bytes leaked");
    assert!(
        d.storage().tier_object(&vpath).is_none(),
        "aborted object still tier-resident"
    );
    let stat = d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/doomed-wb".into(),
        },
    );
    assert!(matches!(stat, NestResponse::Error(_)), "{:?}", stat);

    // The survivor drains to the backend on flush, untouched by the abort.
    assert_eq!(d.flush_writeback(), 1);
    assert_eq!(d.storage().tier_stats().dirty_bytes, 0);
    match d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/kept".into(),
        },
    ) {
        NestResponse::OkSize(n) => assert_eq!(n, kept),
        other => panic!("{:?}", other),
    }
    d.shutdown();
}
