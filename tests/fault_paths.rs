//! End-to-end failure semantics through the dispatcher: a failed PUT must
//! leave *nothing* behind — no partial file in the namespace and no
//! residual lot charge — while retried transients recover invisibly and
//! every outcome is visible on the monitoring surfaces.

use nest::core::config::NestConfig;
use nest::core::dispatcher::Dispatcher;
use nest::obs::Obs;
use nest::proto::request::{NestRequest, NestResponse};
use nest::storage::Principal;
use nest::transfer::fault::{FaultBudget, FaultingSource, RetryPolicy};
use nest::transfer::flow::PatternSource;
use std::io;
use std::sync::Arc;
use std::time::Duration;

fn alice() -> Principal {
    Principal::user("alice")
}

fn dispatcher_with(obs: &Arc<Obs>) -> Dispatcher {
    let config = NestConfig::builder("fault-e2e")
        .obs(Arc::clone(obs))
        .retry(RetryPolicy::standard().with_seed(0xe2e))
        .build()
        .unwrap();
    let d = Dispatcher::new(&config).unwrap();
    // A lot so PUTs are admitted.
    let resp = d.execute_sync(
        &alice(),
        "chirp",
        &NestRequest::LotCreate {
            capacity: 1 << 20,
            duration: 3600,
        },
    );
    assert!(matches!(resp, NestResponse::OkLot(_)), "{:?}", resp);
    d
}

#[test]
fn failed_put_leaves_no_partial_file_and_no_lot_charge() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let size = 200_000u64;
    let vpath = d.admit_put(&who, "chirp", "/doomed", Some(size)).unwrap();
    // Admission charged the lot.
    assert_eq!(d.storage().committed_bytes(), size);
    // The source dies permanently after 64 KiB: some chunks reach disk,
    // then the transfer fails terminally.
    let src = FaultingSource::new(
        PatternSource::new(size),
        64 * 1024,
        io::ErrorKind::UnexpectedEof,
        FaultBudget::Always,
    );
    let err = d
        .transfer_put(&who, "chirp", &vpath, Box::new(src), Some(size))
        .expect_err("fault must surface");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    // Abort-cleanup ran: no partial file in the namespace…
    let stat = d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/doomed".into(),
        },
    );
    assert!(
        matches!(stat, NestResponse::Error(_)),
        "partial file survived: {:?}",
        stat
    );
    // …and no residual lot charge (would otherwise leak until expiry).
    assert_eq!(d.storage().committed_bytes(), 0, "lot charge leaked");
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.aborted") >= 1);
    assert!(snap.count("transfer.failures") >= 1);
    assert_eq!(snap.count("transfer.queue_depth"), 0);
    d.shutdown();
}

#[test]
fn transient_put_fault_retries_to_success() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let size = 150_000u64;
    let vpath = d.admit_put(&who, "chirp", "/bumpy", Some(size)).unwrap();
    // One transient hiccup at 32 KiB; the appliance-default retry policy
    // (stamped by the dispatcher) replays the flow from the start.
    let src = FaultingSource::new(
        PatternSource::new(size),
        32 * 1024,
        io::ErrorKind::ConnectionReset,
        FaultBudget::Times(1),
    );
    let moved = d
        .transfer_put(&who, "chirp", &vpath, Box::new(src), Some(size))
        .unwrap();
    assert_eq!(moved, size);
    // The stored file is complete and correctly sized.
    match d.execute_sync(
        &who,
        "chirp",
        &NestRequest::Stat {
            path: "/bumpy".into(),
        },
    ) {
        NestResponse::OkSize(n) => assert_eq!(n, size),
        other => panic!("{:?}", other),
    }
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.retries") >= 1);
    assert_eq!(snap.count("transfer.failures"), 0);
    d.shutdown();
}

#[test]
fn storage_ad_reports_failure_domain_counters() {
    let obs = Obs::new();
    let d = dispatcher_with(&obs);
    let who = alice();
    let vpath = d.admit_put(&who, "chirp", "/ad", Some(1000)).unwrap();
    let src = FaultingSource::new(
        PatternSource::new(1000),
        0,
        io::ErrorKind::PermissionDenied,
        FaultBudget::Always,
    );
    let _ = d.transfer_put(&who, "chirp", &vpath, Box::new(src), Some(1000));
    let ad = d.storage_ad(&["chirp"]);
    match ad.eval("TransferFailures") {
        nest::classad::Value::Int(n) => assert!(n >= 1, "TransferFailures = {}", n),
        other => panic!("TransferFailures missing: {:?}", other),
    }
    match ad.eval("TransferRetries") {
        nest::classad::Value::Int(n) => assert!(n >= 0),
        other => panic!("TransferRetries missing: {:?}", other),
    }
    // The failed PUT released its charge, so the ad advertises zero
    // committed bytes — matchmakers see honest occupancy.
    match ad.eval("LotBytesCommitted") {
        nest::classad::Value::Int(n) => assert_eq!(n, 0),
        other => panic!("LotBytesCommitted missing: {:?}", other),
    }
    d.shutdown();
}

#[test]
fn transfer_deadline_config_bounds_a_stuck_put() {
    /// A source that never delivers its payload: each read trickles one
    /// byte per millisecond, so only a deadline can end the flow.
    struct Stuck;
    impl nest::transfer::DataSource for Stuck {
        fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_millis(1));
            buf[0] = 1;
            Ok(1)
        }
    }
    let obs = Obs::new();
    let config = NestConfig::builder("deadline-e2e")
        .obs(Arc::clone(&obs))
        .transfer_deadline(Some(Duration::from_millis(50)))
        .build()
        .unwrap();
    let d = Dispatcher::new(&config).unwrap();
    d.execute_sync(
        &alice(),
        "chirp",
        &NestRequest::LotCreate {
            capacity: 1 << 20,
            duration: 3600,
        },
    );
    let who = alice();
    let vpath = d.admit_put(&who, "chirp", "/stuck", None).unwrap();
    let err = d
        .transfer_put(&who, "chirp", &vpath, Box::new(Stuck), None)
        .expect_err("deadline must fire");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    let snap = d.metrics_snapshot();
    assert!(snap.count("transfer.deadline_exceeded") >= 1);
    // Cleanup ran for the stuck PUT as well.
    assert_eq!(d.storage().committed_bytes(), 0);
    d.shutdown();
}
