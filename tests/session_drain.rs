//! Graceful drain, as documented on [`NestServer::shutdown`]: a request
//! that is in flight when shutdown begins completes — response delivered,
//! bytes committed — before the call returns, while connections that are
//! merely *open* drain promptly and connections wedged mid-request are
//! hard-closed once the deadline passes.

use nest::core::config::NestConfig;
use nest::core::server::NestServer;
use nest::obs::Obs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn wait_for(obs: &Obs, name: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs.snapshot().count(name) < target {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {name} >= {target}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The doc-contract regression: `shutdown()` promises that in-flight
/// requests finish. The seed implementation detached connection threads
/// and returned immediately, silently dropping half-written state; the
/// session layer's drain waits for the handler, then closes.
#[test]
fn in_flight_put_completes_before_shutdown_returns() {
    let obs = Obs::new();
    let config = NestConfig::builder("drain-inflight")
        .obs(Arc::clone(&obs))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();
    let addr = server.http_addr.unwrap();

    // A deliberately slow client: head + half the body, a pause that the
    // drain overlaps with, then the rest.
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let client = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"PUT /slow.bin HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345")
            .unwrap();
        started_tx.send(()).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        conn.write_all(b"67890").unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut resp = Vec::new();
        conn.read_to_end(&mut resp).unwrap();
        String::from_utf8_lossy(&resp).into_owned()
    });

    // Begin the drain while the handler is blocked mid-body.
    started_rx.recv().unwrap();
    wait_for(&obs, "session.http.active", 1);
    std::thread::sleep(Duration::from_millis(100));
    let t0 = Instant::now();
    server.shutdown_within(Duration::from_secs(5));
    let drain_took = t0.elapsed();

    let resp = client.join().unwrap();
    assert!(
        resp.starts_with("HTTP/1.1 201"),
        "in-flight PUT must complete through a graceful drain, got {resp:?}"
    );
    // The drain genuinely waited for the request (the client slept 400 ms
    // mid-body) but did not run to its 5 s deadline.
    assert!(
        drain_took >= Duration::from_millis(200),
        "drain returned before the in-flight request finished ({drain_took:?})"
    );
    assert!(
        drain_took < Duration::from_secs(4),
        "drain should finish well before the deadline ({drain_took:?})"
    );
    let snap = obs.snapshot();
    assert!(snap.count("dispatch.op.put") >= 1, "the PUT was dispatched");
    assert!(snap.count("session.drained") >= 1);
    assert_eq!(snap.count("session.active"), 0, "no connection leaked");
}

/// Past the drain deadline, a connection wedged mid-request (client went
/// silent halfway through a body) is hard-closed so shutdown still
/// returns — bounded, not hostage to a dead client.
#[test]
fn drain_deadline_hard_closes_wedged_connection() {
    let obs = Obs::new();
    let config = NestConfig::builder("drain-wedged")
        .obs(Arc::clone(&obs))
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();
    let addr = server.http_addr.unwrap();

    // Half a request, then silence: the handler blocks reading the body.
    let mut wedged = TcpStream::connect(addr).unwrap();
    wedged
        .write_all(b"PUT /wedge.bin HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345")
        .unwrap();
    wait_for(&obs, "session.http.active", 1);
    std::thread::sleep(Duration::from_millis(100));

    let t0 = Instant::now();
    server.shutdown_within(Duration::from_millis(300));
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "shutdown must not hang on a wedged connection ({:?})",
        t0.elapsed()
    );
    let snap = obs.snapshot();
    assert!(snap.count("session.hard_closed") >= 1);
    assert_eq!(snap.count("session.active"), 0, "no connection leaked");

    // The client observes the close (EOF or reset, depending on timing).
    wedged
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 64];
    match wedged.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => {
            // A late error response is also an acceptable close path, as
            // long as the connection then ends.
            let _ = n;
        }
    }
}
